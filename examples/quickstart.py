"""Quickstart: register two sources and run an adaptive join.

This example builds a tiny TPC-D-style database, publishes two of its tables
through simulated network sources, and asks Tukwila to answer a join query
posed against the mediated schema.  It prints the chosen plan, the answer
size, and the adaptive-execution statistics.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import DataSource, PlanningStrategy, TPCDGenerator, Tukwila, lan, wide_area


def main() -> None:
    # 1. Generate data and stand up two autonomous "sources": the part catalog
    #    is nearby on the LAN, the part-supplier cross reference is far away.
    database = TPCDGenerator(scale_mb=1.0, seed=7).generate(["part", "partsupp"])
    system = Tukwila()
    system.register_source(DataSource("part", database["part"], lan()))
    system.register_source(DataSource("partsupp", database["partsupp"], wide_area()))

    # 2. Look at the plan the optimizer would produce (without executing).
    sql = "select * from part, partsupp where part.p_partkey = partsupp.ps_partkey"
    planned = system.plan(sql, name="quickstart")
    print("=== Optimizer plan ===")
    print(planned.plan.describe())
    print()

    # 3. Execute with interleaved planning and execution.
    result = system.execute(sql, strategy=PlanningStrategy.MATERIALIZE_REPLAN, name="quickstart")
    print("=== Execution ===")
    print(f"status              : {result.status.value}")
    print(f"answer cardinality  : {result.cardinality}")
    print(f"time to first tuple : {result.time_to_first_tuple_ms:.1f} virtual ms")
    print(f"completion time     : {result.total_time_ms:.1f} virtual ms")
    print(f"re-optimizations    : {result.reoptimizations}")
    print(f"plans executed      : {len(result.plans)}")

    # 4. Peek at the first few answer tuples.
    print()
    print("=== First three answer tuples ===")
    for row in result.answer.rows[:3]:
        print(" ", row.as_dict())


if __name__ == "__main__":
    main()
