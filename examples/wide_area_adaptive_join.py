"""Double pipelined join vs hybrid hash over a wide-area link.

This example reproduces the *flavour* of Figures 3a/3b interactively: it runs
``partsupp ⋈ part`` with both join implementations while the part source sits
behind a slow trans-Atlantic link, and prints the tuples-vs-time series so
you can see the double pipelined join's early results.

Run with::

    python examples/wide_area_adaptive_join.py
"""

from __future__ import annotations

from repro.bench.harness import build_deployment, run_operator_tree
from repro.bench.reporting import ascii_chart, format_table, timeline_series
from repro.network.profiles import lan, wide_area
from repro.plan.physical import JoinImplementation, join, wrapper_scan


def partsupp_part(implementation: JoinImplementation):
    return join(
        wrapper_scan("partsupp"),
        wrapper_scan("part"),
        ["partsupp.ps_partkey"],
        ["part.p_partkey"],
        implementation=implementation,
    )


def main() -> None:
    deployment = build_deployment(2.0, ["part", "partsupp"], seed=7)
    deployment.set_profile("part", wide_area())      # the build side is far away
    deployment.set_profile("partsupp", lan())

    results = {}
    for implementation in (JoinImplementation.DOUBLE_PIPELINED, JoinImplementation.HYBRID_HASH):
        results[implementation.value] = run_operator_tree(
            partsupp_part(implementation),
            deployment.catalog,
            result_name=f"wide_area_{implementation.value}",
        )

    print("partsupp x part with the part catalog behind a slow wide-area link\n")
    print(
        format_table(
            ["join", "tuples", "first tuple (ms)", "completion (ms)"],
            [
                [
                    name,
                    run.cardinality,
                    round(run.time_to_first_tuple_ms or 0.0, 1),
                    round(run.completion_time_ms, 1),
                ]
                for name, run in results.items()
            ],
        )
    )

    print("\ntuples-vs-time series:")
    for name, run in results.items():
        print(f"  {name}")
        for point in timeline_series(run.timeline, points=6):
            print(f"    {point.tuples:>7} tuples by {point.time_ms:9.1f} ms")

    print("\ntuples (x) vs time (y), in the orientation of the paper's Figure 3:")
    chart_series = {
        name: [(float(p.tuples), p.time_ms) for p in timeline_series(run.timeline, points=30)]
        for name, run in results.items()
    }
    print(ascii_chart(chart_series))


if __name__ == "__main__":
    main()
