"""Dynamic collectors over overlapping bibliography sources.

The paper motivates the dynamic collector with bibliographic databases that
mirror each other (Section 4.1).  This example registers a primary citation
source, a full mirror on a slow trans-Atlantic link, and a partial mirror,
then runs the same query twice:

1. with all sources healthy — the collector answers from the primary alone;
2. with the primary unreachable — the collector falls back to the mirror and
   still returns the complete result.

Run with::

    python examples/bibliographic_mirrors.py
"""

from __future__ import annotations

from repro import (
    DataSource,
    EngineConfig,
    Relation,
    Schema,
    SourceDescription,
    Tukwila,
    dead,
    lan,
    make_mirror,
    wide_area,
)
from repro.storage.tuples import Row


def build_citations(count: int = 500) -> Relation:
    schema = Schema.of("key:int", "title:str", "year:int")
    rows = [
        Row(schema, (i, f"Adaptive Query Processing, Part {i}", 1990 + i % 10))
        for i in range(count)
    ]
    return Relation("citation", schema, rows)


def build_system(primary_profile) -> Tukwila:
    citations = build_citations()
    reviews_schema = Schema.of("key:int", "stars:int")
    reviews = Relation(
        "review", reviews_schema, (Row(reviews_schema, (i, i % 5 + 1)) for i in range(500))
    )

    system = Tukwila(engine_config=EngineConfig(default_timeout_ms=1_000.0))
    primary = DataSource("dblp", citations, primary_profile)
    system.register_source(primary, SourceDescription("dblp", "citation"))
    system.register_source(
        make_mirror(primary, "dblp-mirror-eu", wide_area()),
        SourceDescription("dblp-mirror-eu", "citation"),
    )
    system.register_source(
        make_mirror(primary, "dblp-partial", lan(), coverage=0.6, seed=3),
        SourceDescription("dblp-partial", "citation", complete=False, coverage=0.6),
    )
    system.declare_mirrors("dblp", "dblp-mirror-eu")
    system.set_overlap("dblp", "dblp-partial", 0.6)
    system.register_source(DataSource("reviews", reviews, lan()),
                           SourceDescription("reviews", "review"))
    return system


QUERY = "select * from citation, review where citation.key = review.key"


def run_scenario(label: str, primary_profile) -> None:
    system = build_system(primary_profile)
    result = system.execute(QUERY, name=f"bib_{label}")
    collectors = [
        op for plan in result.plans for op in plan.collectors()
    ]
    print(f"--- {label} ---")
    print(f"status           : {result.status.value}")
    print(f"answer tuples    : {result.cardinality}")
    print(f"completion (ms)  : {result.total_time_ms:.1f}")
    print(f"collectors in plan: {len(collectors)}")
    opened = {
        name: source.stats.connections_opened
        for name, source in (
            (n, system.catalog.source(n)) for n in system.catalog.source_names
        )
    }
    print(f"connections opened: {opened}")
    print()


def main() -> None:
    print("Union over overlapping bibliography sources via the dynamic collector\n")
    run_scenario("healthy primary", lan())
    run_scenario("dead primary (mirror takes over)", dead())


if __name__ == "__main__":
    main()
