"""Interleaved planning and execution with bad statistics.

This example shows the optimizer recovering from wrong selectivity estimates:
a four-table TPC-D join is planned with correct base-table cardinalities but
default join selectivities (no histograms), executed fragment by fragment,
and re-optimized whenever a materialized result is far from its estimate.
It prints every plan the optimizer produced along the way and compares the
three Figure-5 strategies on the same query.

Run with::

    python examples/interleaved_replanning.py
"""

from __future__ import annotations

from repro.bench.harness import build_deployment
from repro.bench.reporting import format_table
from repro.core.interleaving import InterleavedExecutionDriver
from repro.datagen.workload import TPCDJoinGraph
from repro.engine.context import EngineConfig
from repro.optimizer.optimizer import Optimizer, OptimizerConfig, PlanningStrategy
from repro.query.reformulation import Reformulator
from repro.storage.memory import MB

TABLES = ["region", "nation", "supplier", "customer", "orders"]


def run_strategy(deployment, strategy: PlanningStrategy, verbose: bool = False):
    graph = TPCDJoinGraph()
    query = graph.query_for(
        frozenset({"nation", "supplier", "customer", "orders"}),
        name=f"demo_{strategy.value}",
    )
    optimizer = Optimizer(deployment.catalog, OptimizerConfig(memory_pool_bytes=2 * MB))
    driver = InterleavedExecutionDriver(
        deployment.catalog,
        optimizer,
        engine_config=EngineConfig(disk_page_read_ms=2.0, disk_page_write_ms=2.5),
    )
    reformulated = Reformulator(deployment.catalog).reformulate(query)
    result = driver.run(reformulated, strategy=strategy)
    if verbose:
        for index, plan in enumerate(result.plans, start=1):
            print(f"--- plan {index} ({'initial' if index == 1 else 'after re-optimization'}) ---")
            print(plan.describe())
            print()
    return result


def main() -> None:
    deployment = build_deployment(2.0, TABLES, seed=7)

    print("=== Plans produced while interleaving planning and execution ===\n")
    replan_result = run_strategy(deployment, PlanningStrategy.MATERIALIZE_REPLAN, verbose=True)

    rows = []
    results = {PlanningStrategy.MATERIALIZE_REPLAN: replan_result}
    for strategy in (PlanningStrategy.MATERIALIZE, PlanningStrategy.PIPELINE):
        results[strategy] = run_strategy(deployment, strategy)
    for strategy, result in results.items():
        rows.append(
            [
                strategy.value,
                result.cardinality,
                result.reoptimizations,
                round(result.total_time_ms, 1),
            ]
        )
    print("=== Strategy comparison on the same query ===")
    print(format_table(["strategy", "tuples", "replans", "completion (virtual ms)"], rows))


if __name__ == "__main__":
    main()
