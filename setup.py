"""Setuptools shim.

The canonical metadata lives in ``pyproject.toml``; this file exists so that
``pip install -e .`` also works on environments whose setuptools lacks PEP 660
editable-install support (it falls back to the legacy develop path).
"""

from setuptools import setup

setup()
