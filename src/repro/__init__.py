"""Tukwila reproduction: an adaptive query execution system for data integration.

This package reproduces the system described in Ives, Florescu, Friedman,
Levy and Weld, *An Adaptive Query Execution System for Data Integration*
(SIGMOD 1999).  The public API is exposed here; see ``README.md`` for a
quickstart and ``DESIGN.md`` for the system inventory.

Typical usage::

    from repro import Tukwila, DataSource, TPCDGenerator, lan

    db = TPCDGenerator(scale_mb=1.0).generate(["part", "partsupp"])
    system = Tukwila()
    system.register_source(DataSource("db.part", db["part"], lan()))
    system.register_source(DataSource("db.partsupp", db["partsupp"], lan()))
    result = system.execute(
        "select * from part, partsupp where part.p_partkey = partsupp.ps_partkey"
    )
    print(result.cardinality, result.total_time_ms)
"""

from repro.catalog import (
    DataSourceCatalog,
    OverlapCatalog,
    SourceDescription,
    SourceStatistics,
)
from repro.core import (
    InterleavedExecutionDriver,
    QueryResult,
    Tukwila,
    contact_all_policy,
    primary_with_fallback_policy,
    race_policy,
)
from repro.datagen import TPCDGenerator, TPCDJoinGraph
from repro.engine import (
    EngineConfig,
    ExecutionContext,
    ExecutionStatus,
    QueryExecutor,
    TupleTimeline,
)
from repro.errors import TukwilaError
from repro.network import (
    DataSource,
    NetworkProfile,
    SimClock,
    Wrapper,
    bursty,
    dead,
    lan,
    make_mirror,
    slow_start,
    wide_area,
)
from repro.optimizer import (
    Optimizer,
    OptimizerConfig,
    PlanningStrategy,
    ReoptimizationMode,
)
from repro.plan import JoinImplementation, OverflowMethod, QueryPlan
from repro.query import ConjunctiveQuery, JoinPredicate, MediatedSchema, parse_query
from repro.storage import MB, Relation, Row, Schema

__version__ = "1.0.0"

__all__ = [
    "ConjunctiveQuery",
    "DataSource",
    "DataSourceCatalog",
    "EngineConfig",
    "ExecutionContext",
    "ExecutionStatus",
    "InterleavedExecutionDriver",
    "JoinImplementation",
    "JoinPredicate",
    "MB",
    "MediatedSchema",
    "NetworkProfile",
    "Optimizer",
    "OptimizerConfig",
    "OverflowMethod",
    "OverlapCatalog",
    "PlanningStrategy",
    "QueryExecutor",
    "QueryPlan",
    "QueryResult",
    "Relation",
    "ReoptimizationMode",
    "Row",
    "Schema",
    "SimClock",
    "SourceDescription",
    "SourceStatistics",
    "TPCDGenerator",
    "TPCDJoinGraph",
    "Tukwila",
    "TukwilaError",
    "TupleTimeline",
    "Wrapper",
    "bursty",
    "contact_all_policy",
    "dead",
    "lan",
    "make_mirror",
    "parse_query",
    "primary_with_fallback_policy",
    "race_policy",
    "slow_start",
    "wide_area",
    "__version__",
]
