"""Command-line entry point: ``python -m repro.analysis [paths...]``.

Lints the given files/directories (default: the ``repro`` package itself)
with every registered rule and prints findings as ``path:line rule-id
message``, one per line, sorted.  Exit status: 0 when clean, 1 when any
finding (or unparsable file) was reported, 2 on usage errors.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.analysis.linter import run_lint
from repro.analysis.rules import ALL_RULES, rule_by_id


def _default_target() -> Path:
    return Path(__file__).resolve().parents[1]  # the repro package directory


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="AST lint pass enforcing the engine's invariants "
        "(clock, memory, encoding, exception discipline).",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help="files or directories to lint (default: the installed repro package)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print every registered rule id and its invariant, then exit",
    )
    parser.add_argument(
        "--select",
        metavar="RULE-ID[,RULE-ID...]",
        help="run only the named rules (comma separated)",
    )
    parser.add_argument(
        "--quiet",
        action="store_true",
        help="suppress the summary line; print findings only",
    )
    options = parser.parse_args(argv)

    if options.list_rules:
        for rule in ALL_RULES:
            print(f"{rule.rule_id}: {rule.summary}")
        return 0

    rules = ALL_RULES
    if options.select:
        try:
            rules = tuple(
                rule_by_id(rule_id.strip())
                for rule_id in options.select.split(",")
                if rule_id.strip()
            )
        except KeyError as exc:
            print(f"error: {exc.args[0]}", file=sys.stderr)
            return 2
        if not rules:
            print("error: --select named no rules", file=sys.stderr)
            return 2

    paths = options.paths or [_default_target()]
    missing = [path for path in paths if not path.exists()]
    if missing:
        for path in missing:
            print(f"error: no such path: {path}", file=sys.stderr)
        return 2

    report = run_lint(paths, rules=rules)
    for finding in sorted(report.findings):
        print(finding.render())
    for path, message in report.parse_errors:
        print(f"{path}:0 parse-error {message}")
    if not options.quiet:
        summary = (
            f"{len(report.findings)} finding(s), "
            f"{report.suppressed} suppressed, "
            f"{report.files_checked} file(s) checked"
        )
        print(summary, file=sys.stderr)
    return 0 if report.clean else 1


if __name__ == "__main__":
    raise SystemExit(main())
