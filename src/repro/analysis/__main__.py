"""Command-line entry point: ``python -m repro.analysis [paths...]``.

Lints the given files/directories (default: the ``repro`` package itself)
with every registered rule and prints findings as ``path:line rule-id
message``, one per line, sorted.  ``--format json`` emits a
machine-readable report; ``--format github`` emits workflow-annotation
lines so CI findings annotate the PR diff.  ``--output FILE`` writes the
JSON report to a file regardless of the display format (the CI artifact).
Exit status: 0 when clean, 1 when any finding (or unparsable file) was
reported, 2 on usage errors.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.analysis.linter import LintReport, run_lint
from repro.analysis.rules import ALL_RULES, rule_by_id


def _default_target() -> Path:
    return Path(__file__).resolve().parents[1]  # the repro package directory


def report_document(report: LintReport) -> dict:
    """The JSON document for ``--format json`` and ``--output``."""
    return {
        "findings": [
            {
                "path": finding.path,
                "line": finding.line,
                "rule": finding.rule_id,
                "message": finding.message,
            }
            for finding in sorted(report.findings)
        ],
        "parse_errors": [
            {"path": path, "message": message} for path, message in report.parse_errors
        ],
        "summary": {
            "findings": len(report.findings),
            "suppressed": report.suppressed,
            "files_checked": report.files_checked,
            "clean": report.clean,
        },
    }


def _parse_rules(spec: str) -> tuple:
    return tuple(
        rule_by_id(rule_id.strip()) for rule_id in spec.split(",") if rule_id.strip()
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Flow-aware lint pass enforcing the engine's invariants "
        "(clock taint, lease lifecycle, scheduler effects, encoding, "
        "exception discipline).",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help="files or directories to lint (default: the installed repro package)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print every registered rule id and its invariant, then exit",
    )
    parser.add_argument(
        "--select",
        metavar="RULE-ID[,RULE-ID...]",
        help="run only the named rules (comma separated)",
    )
    parser.add_argument(
        "--ignore",
        metavar="RULE-ID[,RULE-ID...]",
        help="run every rule except the named ones (the relaxed-ruleset knob; "
        "composes with --select)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "github"),
        default="text",
        help="findings as plain text (default), one JSON document, or GitHub "
        "workflow ::error annotations",
    )
    parser.add_argument(
        "--output",
        metavar="FILE",
        type=Path,
        help="also write the JSON report to FILE (independent of --format)",
    )
    parser.add_argument(
        "--quiet",
        action="store_true",
        help="suppress the summary line; print findings only",
    )
    options = parser.parse_args(argv)

    if options.list_rules:
        for rule in ALL_RULES:
            print(f"{rule.rule_id}: {rule.summary}")
        return 0

    rules = ALL_RULES
    if options.select:
        try:
            rules = _parse_rules(options.select)
        except KeyError as exc:
            print(f"error: {exc.args[0]}", file=sys.stderr)
            return 2
        if not rules:
            print("error: --select named no rules", file=sys.stderr)
            return 2
    if options.ignore:
        try:
            ignored = {rule.rule_id for rule in _parse_rules(options.ignore)}
        except KeyError as exc:
            print(f"error: {exc.args[0]}", file=sys.stderr)
            return 2
        rules = tuple(rule for rule in rules if rule.rule_id not in ignored)
        if not rules:
            print("error: --ignore removed every rule", file=sys.stderr)
            return 2

    paths = options.paths or [_default_target()]
    missing = [path for path in paths if not path.exists()]
    if missing:
        for path in missing:
            print(f"error: no such path: {path}", file=sys.stderr)
        return 2

    report = run_lint(paths, rules=rules)
    document = report_document(report)
    if options.output is not None:
        options.output.write_text(json.dumps(document, indent=2) + "\n", encoding="utf-8")

    if options.format == "json":
        print(json.dumps(document, indent=2))
    elif options.format == "github":
        for finding in sorted(report.findings):
            print(
                f"::error file={finding.path},line={finding.line},"
                f"title={finding.rule_id}::{finding.message}"
            )
        for path, message in report.parse_errors:
            print(f"::error file={path},line=1,title=parse-error::{message}")
    else:
        for finding in sorted(report.findings):
            print(finding.render())
        for path, message in report.parse_errors:
            print(f"{path}:0 parse-error {message}")
    if not options.quiet and options.format != "json":
        summary = (
            f"{len(report.findings)} finding(s), "
            f"{report.suppressed} suppressed, "
            f"{report.files_checked} file(s) checked"
        )
        print(summary, file=sys.stderr)
    return 0 if report.clean else 1


if __name__ == "__main__":
    raise SystemExit(main())
