"""Rule ``hot-path-row``: hot-path modules must not box rows.

PR 3's columnar hash tables hold ``no Row objects are constructed on the
insert/probe hot paths`` as a *runtime* assertion (the
``counting_row_constructions`` counter in ``tests/test_hash_table.py``).
This rule is its static twin over the whole storage layer: inside the
hot-path modules (typed columns, batches, the bucketed hash table, the spill
files), constructing a :class:`Row` (``Row(...)`` / ``Row.make``) or
materializing ``.rows()`` is only legal at the declared row-boundary
methods, each of which carries a ``# repro: allow[hot-path-row]`` pragma
naming why the boxing is the point (tuple-path compatibility accessors, the
row-spill baseline view).

Modules opt in by declaring ``# repro: module-role[hot-path]`` — there is
no hardcoded module list, so a new columnar module joins the invariant's
scope by carrying the role marker, not by editing this rule.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.linter import ModuleSource, Rule

class HotPathRowRule(Rule):
    rule_id = "hot-path-row"
    summary = (
        "modules declaring `# repro: module-role[hot-path]` must not construct "
        "Row objects (Row()/Row.make) or materialize .rows() outside "
        "pragma-declared boundaries"
    )

    def check(self, module: ModuleSource) -> Iterator[tuple[int, str]]:
        if not module.has_role("hot-path"):
            return
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                func = node.func
                if isinstance(func, ast.Name) and func.id == "Row":
                    yield (
                        node.lineno,
                        "constructs a Row object on a hot-path module; keep data "
                        "columnar (gathers/takes) or move the boxing to a "
                        "declared boundary",
                    )
                elif isinstance(func, ast.Attribute) and func.attr == "rows":
                    yield (
                        node.lineno,
                        "materializes .rows() on a hot-path module; rows()/row_at "
                        "boxing belongs at declared tuple-path boundaries only",
                    )
            elif isinstance(node, ast.Attribute) and node.attr == "make":
                if isinstance(node.value, ast.Name) and node.value.id == "Row":
                    yield (
                        node.lineno,
                        "references Row.make on a hot-path module; keep data "
                        "columnar or move the boxing to a declared boundary",
                    )
