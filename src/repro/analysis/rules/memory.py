"""Rules ``memory-pairing`` and ``budget-mutation``: reserve/release discipline.

The server-wide invariant ``broker.used_bytes == sum(resident_bytes)`` only
holds if every byte an operator reserves against a :class:`MemoryBudget` is
eventually released by the same owner, and if nobody edits the usage
counters behind the accounting protocol's back.

``memory-pairing`` is a static pairing analysis over class bodies: a class
that calls ``reserve``/``try_reserve``/``force_reserve`` on some receiver
must also call ``release`` (or ``close``) on that receiver somewhere in the
class, and a class that takes a pool ``grant`` must hold a matching
``revoke``/``release_lease`` path.  Reachability is approximated by
presence — the runtime spill-parity tests assert the dynamic half of the
invariant; this rule catches the PR that forgets the release path entirely.

``budget-mutation`` forbids direct writes to the usage counters
(``used_bytes``/``_used``/``_granted``, ``stats.reserved``) and to budget
limits (``limit_bytes``) outside the owning modules — all other code must go
through ``reserve``/``release``/``resize``/``revoke_to`` so the pool and
broker totals stay propagated.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.linter import ModuleSource, Rule

ACQUIRE_METHODS = frozenset({"reserve", "try_reserve", "force_reserve"})
RELEASE_METHODS = frozenset({"release", "close"})
GRANT_METHODS = frozenset({"grant"})
GRANT_RELEASE_METHODS = frozenset({"revoke", "release_lease", "close"})

#: Modules that implement the accounting protocol itself.  Their classes
#: delegate between the acquire/release primitives they define (for example
#: ``MemoryBudget.reserve`` calling ``self.try_reserve``), which the pairing
#: heuristic would misread as client code.
MEMORY_AUTHORITY_SUFFIXES = (
    "repro/storage/memory.py",
    "repro/server/broker.py",
)

#: Usage-counter attribute names nobody may assign to outside the owners.
USAGE_COUNTER_ATTRS = frozenset({"used_bytes", "_used", "_granted"})


def _receiver_tail(func: ast.expr) -> str | None:
    """Trailing identifier of a method call's receiver (``self.budget`` -> ``budget``)."""
    if not isinstance(func, ast.Attribute):
        return None
    value = func.value
    if isinstance(value, ast.Name):
        return value.id
    if isinstance(value, ast.Attribute):
        return value.attr
    return None


class MemoryPairingRule(Rule):
    rule_id = "memory-pairing"
    summary = (
        "a class reserving budget bytes (reserve/try_reserve/force_reserve) or "
        "taking a pool grant must hold a matching release/revoke in the same class"
    )

    def check(self, module: ModuleSource) -> Iterator[tuple[int, str]]:
        if module.matches(*MEMORY_AUTHORITY_SUFFIXES) or module.has_role("memory-authority"):
            return
        classes = [n for n in ast.walk(module.tree) if isinstance(n, ast.ClassDef)]
        class_nodes = {id(c): set(map(id, ast.walk(c))) for c in classes}
        # Code outside any class pairs at module scope.
        in_class: set[int] = set().union(*class_nodes.values()) if class_nodes else set()
        module_calls = [
            n
            for n in ast.walk(module.tree)
            if isinstance(n, ast.Call) and id(n) not in in_class
        ]
        scopes: list[tuple[str, list[ast.Call]]] = [
            (c.name, [n for n in ast.walk(c) if isinstance(n, ast.Call)]) for c in classes
        ]
        if module_calls:
            scopes.append(("<module>", module_calls))
        for scope_name, calls in scopes:
            yield from self._check_scope(scope_name, calls)

    def _check_scope(
        self, scope_name: str, calls: list[ast.Call]
    ) -> Iterator[tuple[int, str]]:
        acquires: dict[str, tuple[int, str]] = {}
        grants: list[tuple[int, str]] = []
        release_tails: set[str] = set()
        has_grant_release = False
        for call in calls:
            func = call.func
            if not isinstance(func, ast.Attribute):
                continue
            tail = _receiver_tail(func)
            if tail is None:
                continue
            method = func.attr
            if method in ACQUIRE_METHODS:
                acquires.setdefault(tail, (call.lineno, method))
            elif method in RELEASE_METHODS:
                release_tails.add(tail)
            if method in GRANT_METHODS and tail.endswith("pool"):
                grants.append((call.lineno, f"{tail}.{method}"))
            elif method in GRANT_RELEASE_METHODS:
                has_grant_release = True
        for tail, (lineno, method) in sorted(acquires.items(), key=lambda kv: kv[1][0]):
            if tail in release_tails:
                continue
            yield (
                lineno,
                f"{scope_name} calls {tail}.{method}() but never releases on "
                f"{tail!r}; pair every reservation with a release (or revoke "
                "the grant) so broker.used == sum(resident_bytes) holds",
            )
        if grants and not has_grant_release:
            lineno, label = grants[0]
            yield (
                lineno,
                f"{scope_name} takes a budget via {label}() but never revokes "
                "or releases the lease; grants must be returned to the pool",
            )


class BudgetMutationRule(Rule):
    rule_id = "budget-mutation"
    summary = (
        "usage counters (used_bytes/_used/_granted, stats.reserved) and budget "
        "limits may only be assigned inside storage/memory.py and server/broker.py"
    )

    def check(self, module: ModuleSource) -> Iterator[tuple[int, str]]:
        if module.matches(*MEMORY_AUTHORITY_SUFFIXES) or module.has_role("memory-authority"):
            return
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = node.targets if isinstance(node, ast.Assign) else [node.target]
                for target in targets:
                    message = self._mutation_message(target)
                    if message is not None:
                        yield (node.lineno, message)

    @staticmethod
    def _mutation_message(target: ast.expr) -> str | None:
        if not isinstance(target, ast.Attribute):
            return None
        attr = target.attr
        if attr in USAGE_COUNTER_ATTRS:
            return (
                f"assigns to usage counter .{attr}; go through "
                "reserve()/release() so pool and broker totals stay propagated"
            )
        if attr == "reserved" and isinstance(target.value, ast.Attribute):
            if target.value.attr == "stats":
                return (
                    "assigns to .stats.reserved directly; use "
                    "MemoryStats.reserve()/release()"
                )
        if attr == "limit_bytes":
            receiver = target.value
            tail = receiver.id if isinstance(receiver, ast.Name) else (
                receiver.attr if isinstance(receiver, ast.Attribute) else ""
            )
            if "budget" in tail or tail in ("pool", "broker"):
                return (
                    f"assigns to {tail}.limit_bytes directly; use resize() or "
                    "revoke_to() so broker leases stay renegotiated"
                )
        return None
