"""Rule ``budget-mutation``: nobody edits usage counters behind the protocol.

The server-wide invariant ``broker.used_bytes == sum(resident_bytes)`` only
holds if nobody edits the usage counters behind the accounting protocol's
back: direct writes to ``used_bytes``/``_used``/``_granted``,
``stats.reserved``, and budget ``limit_bytes`` are forbidden outside the
owning modules — all other code must go through
``reserve``/``release``/``resize``/``revoke_to`` so the pool and broker
totals stay propagated.

(The release-pairing half of the discipline lives in the path-sensitive
``lease-lifecycle`` rule, :mod:`repro.analysis.rules.leases`, which
replaced the class-granularity ``memory-pairing`` heuristic.)
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.linter import ModuleSource, Rule

#: Modules that implement the accounting protocol itself.  Their classes
#: delegate between the acquire/release primitives they define (for example
#: ``MemoryBudget.reserve`` calling ``self.try_reserve``), which pairing
#: heuristics would misread as client code.
MEMORY_AUTHORITY_SUFFIXES = (
    "repro/storage/memory.py",
    "repro/server/broker.py",
)

#: Usage-counter attribute names nobody may assign to outside the owners.
USAGE_COUNTER_ATTRS = frozenset({"used_bytes", "_used", "_granted"})


def _receiver_tail(func: ast.expr) -> str | None:
    """Trailing identifier of a method call's receiver (``self.budget`` -> ``budget``)."""
    if not isinstance(func, ast.Attribute):
        return None
    value = func.value
    if isinstance(value, ast.Name):
        return value.id
    if isinstance(value, ast.Attribute):
        return value.attr
    return None


class BudgetMutationRule(Rule):
    rule_id = "budget-mutation"
    summary = (
        "usage counters (used_bytes/_used/_granted, stats.reserved) and budget "
        "limits may only be assigned inside storage/memory.py and server/broker.py"
    )

    def check(self, module: ModuleSource) -> Iterator[tuple[int, str]]:
        if module.matches(*MEMORY_AUTHORITY_SUFFIXES) or module.has_role("memory-authority"):
            return
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = node.targets if isinstance(node, ast.Assign) else [node.target]
                for target in targets:
                    message = self._mutation_message(target)
                    if message is not None:
                        yield (node.lineno, message)

    @staticmethod
    def _mutation_message(target: ast.expr) -> str | None:
        if not isinstance(target, ast.Attribute):
            return None
        attr = target.attr
        if attr in USAGE_COUNTER_ATTRS:
            return (
                f"assigns to usage counter .{attr}; go through "
                "reserve()/release() so pool and broker totals stay propagated"
            )
        if attr == "reserved" and isinstance(target.value, ast.Attribute):
            if target.value.attr == "stats":
                return (
                    "assigns to .stats.reserved directly; use "
                    "MemoryStats.reserve()/release()"
                )
        if attr == "limit_bytes":
            receiver = target.value
            tail = receiver.id if isinstance(receiver, ast.Name) else (
                receiver.attr if isinstance(receiver, ast.Attribute) else ""
            )
            if "budget" in tail or tail in ("pool", "broker"):
                return (
                    f"assigns to {tail}.limit_bytes directly; use resize() or "
                    "revoke_to() so broker leases stay renegotiated"
                )
        return None
