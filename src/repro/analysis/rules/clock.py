"""Rule ``wall-clock``: all time flows through the virtual clocks.

The engine's determinism (result parity across drive modes, byte-exact
virtual-time accounting, the server's conservative discrete-event schedule)
depends on *no* engine code reading the machine clock.  Real time may only be
observed by the clock authorities themselves (``network/simclock.py``,
``server/clock.py`` — which today never touch it either, but own the
abstraction) and by benchmark harness code, whose whole point is measuring
wall seconds.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.linter import ModuleSource, Rule

#: ``time.<attr>`` calls/imports that read or depend on the machine clock.
WALL_CLOCK_TIME_NAMES = frozenset(
    {
        "time",
        "time_ns",
        "monotonic",
        "monotonic_ns",
        "perf_counter",
        "perf_counter_ns",
        "process_time",
        "process_time_ns",
        "sleep",
    }
)

#: ``datetime``/``date`` constructors that capture "now".
DATETIME_NOW_NAMES = frozenset({"now", "utcnow", "today"})

#: Modules that own the clock abstraction and may observe real time.
CLOCK_AUTHORITY_SUFFIXES = (
    "repro/network/simclock.py",
    "repro/server/clock.py",
)

#: Directory names whose code measures real wall seconds by design.
BENCH_DIRECTORIES = ("bench", "benchmarks")


class WallClockRule(Rule):
    rule_id = "wall-clock"
    summary = (
        "engine code must not read the machine clock (time.time/perf_counter/"
        "datetime.now); only the clock authorities and bench harnesses may"
    )

    def check(self, module: ModuleSource) -> Iterator[tuple[int, str]]:
        if module.matches(*CLOCK_AUTHORITY_SUFFIXES) or module.has_role("clock-authority"):
            return
        if module.in_directory(*BENCH_DIRECTORIES):
            return
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ImportFrom) and node.module == "time":
                for alias in node.names:
                    if alias.name in WALL_CLOCK_TIME_NAMES:
                        yield (
                            node.lineno,
                            f"imports wall-clock function time.{alias.name}; "
                            "use the context's SimClock/ServerClock instead",
                        )
            elif isinstance(node, ast.Call):
                label = _wall_clock_call(node.func)
                if label is not None:
                    yield (
                        node.lineno,
                        f"calls wall-clock function {label}; "
                        "use the context's SimClock/ServerClock instead",
                    )


def _wall_clock_call(func: ast.expr) -> str | None:
    """Label a call target that reads the machine clock, or ``None``."""
    if not isinstance(func, ast.Attribute):
        return None
    value = func.value
    if isinstance(value, ast.Name):
        if value.id == "time" and func.attr in WALL_CLOCK_TIME_NAMES:
            return f"time.{func.attr}"
        if value.id in ("datetime", "date") and func.attr in DATETIME_NOW_NAMES:
            return f"{value.id}.{func.attr}"
    elif isinstance(value, ast.Attribute):
        # datetime.datetime.now(...) / datetime.date.today(...)
        if value.attr in ("datetime", "date") and func.attr in DATETIME_NOW_NAMES:
            return f"{value.attr}.{func.attr}"
    return None
