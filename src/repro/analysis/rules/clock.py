"""Rule ``clock-taint``: no wall-clock/RNG value flows into engine state.

The engine's determinism (result parity across drive modes, byte-exact
virtual-time accounting, the server's conservative discrete-event
schedule) depends on *no* engine code depending on the machine clock or
an unseeded RNG.  The PR-6 ``wall-clock`` rule flagged the calls
syntactically; this rule subsumes it with a forward taint analysis over
the project call graph: a value produced by ``time.*``, ``random.*``
module functions, ``os.urandom``, or argless ``datetime.now``-family
constructors must not *flow* — through assignments, returns, or call
arguments, across function boundaries — into engine state (attribute or
subscript stores, event constructor arguments).

A tainted value that reaches state is reported at the sink with the
source's provenance; a source call whose value flows nowhere is still
reported at the call (reading the machine clock at all is the hazard),
which preserves the old rule's coverage of bare ``time.sleep()``-style
calls.  Seeded ``random.Random(seed)`` instances are deliberately *not*
sources — deterministic replay is exactly what they are for.

Real time may only be observed by the clock authorities
(``network/simclock.py``, ``server/clock.py``) and benchmark harness
code, whose whole point is measuring wall seconds.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.linter import ModuleSource, ProjectRule

#: ``time.<attr>`` calls that read or depend on the machine clock.
WALL_CLOCK_TIME_NAMES = frozenset(
    {
        "time",
        "time_ns",
        "monotonic",
        "monotonic_ns",
        "perf_counter",
        "perf_counter_ns",
        "process_time",
        "process_time_ns",
        "sleep",
    }
)

#: ``datetime``/``date`` constructors that capture "now".
DATETIME_NOW_NAMES = frozenset({"now", "utcnow", "today"})

#: ``random`` module-level functions are unseeded (module-global state);
#: ``random.Random(seed)`` instances are fine and excluded by name.
RANDOM_EXEMPT_NAMES = frozenset({"Random", "SystemRandom", "seed"})

#: Modules that own the clock abstraction and may observe real time.
CLOCK_AUTHORITY_SUFFIXES = (
    "repro/network/simclock.py",
    "repro/server/clock.py",
)

#: Directory names whose code measures real wall seconds by design.
BENCH_DIRECTORIES = ("bench", "benchmarks")


def classify_wall_clock_call(func: ast.expr) -> str | None:
    """Label a call target that reads the machine clock/RNG, or ``None``."""
    if not isinstance(func, ast.Attribute):
        return None
    value = func.value
    if isinstance(value, ast.Name):
        if value.id == "time" and func.attr in WALL_CLOCK_TIME_NAMES:
            return f"time.{func.attr}"
        if value.id == "random" and func.attr not in RANDOM_EXEMPT_NAMES:
            return f"random.{func.attr}"
        if value.id == "os" and func.attr == "urandom":
            return "os.urandom"
        if value.id in ("datetime", "date") and func.attr in DATETIME_NOW_NAMES:
            return f"{value.id}.{func.attr}"
    elif isinstance(value, ast.Attribute):
        # datetime.datetime.now(...) / datetime.date.today(...)
        if value.attr in ("datetime", "date") and func.attr in DATETIME_NOW_NAMES:
            return f"{value.attr}.{func.attr}"
    return None


def _imported_source_label(name: str, imports: dict[str, str]) -> str | None:
    """``from time import monotonic`` makes a bare ``monotonic()`` a source."""
    target = imports.get(name)
    if target is None or ":" not in target:
        return None
    mod, attr = target.split(":", 1)
    if mod == "time" and attr in WALL_CLOCK_TIME_NAMES:
        return f"time.{attr}"
    if mod == "random" and attr not in RANDOM_EXEMPT_NAMES:
        return f"random.{attr}"
    if mod == "os" and attr == "urandom":
        return "os.urandom"
    return None


def _event_sink_label(func: ast.expr) -> str | None:
    """Event payload sinks: ``emit_event(...)`` and ``*Event(...)`` constructors."""
    name = None
    if isinstance(func, ast.Name):
        name = func.id
    elif isinstance(func, ast.Attribute):
        name = func.attr
    if name is None:
        return None
    if name == "emit_event":
        return "emit_event payload"
    if name.endswith("Event") and name[:1].isupper():
        return f"{name} payload"
    return None


class ClockTaintRule(ProjectRule):
    rule_id = "clock-taint"
    summary = (
        "no value derived from the machine clock or unseeded RNG (time.*, "
        "random.*, os.urandom, datetime.now) may flow into engine state; "
        "virtual time comes from the context's SimClock/ServerClock"
    )

    @staticmethod
    def _exempt(module: ModuleSource) -> bool:
        return (
            module.matches(*CLOCK_AUTHORITY_SUFFIXES)
            or module.has_role("clock-authority")
            or module.in_directory(*BENCH_DIRECTORIES)
        )

    def check_project(self, project) -> Iterator[tuple[ModuleSource, int, str]]:
        from repro.analysis.dataflow.taint import TaintAnalysis

        graph = project.graph
        exempt_paths = {
            module.posix for module in project.modules if self._exempt(module)
        }

        def classify_source(call: ast.Call, info) -> str | None:
            if info.path in exempt_paths:
                return None
            label = classify_wall_clock_call(call.func)
            if label is not None:
                return label
            if isinstance(call.func, ast.Name):
                facts = graph.modules.get(info.module)
                if facts is not None:
                    return _imported_source_label(call.func.id, facts.imports)
            return None

        result = TaintAnalysis(graph, classify_source, _event_sink_label).run()

        consumed: set[tuple[str, int]] = set()
        findings: list[tuple[str, int, str]] = []
        for (path, line, desc), origins in sorted(
            result.sinks.items(), key=lambda item: (item[0][0], item[0][1], item[0][2])
        ):
            sources = sorted((o[1], o[2], o[3]) for o in origins)
            for src_path, src_line, _label in sources:
                consumed.add((src_path, src_line))
            provenance = ", ".join(
                f"{label} at {src_path}:{src_line}"
                for src_path, src_line, label in sources[:3]
            )
            findings.append(
                (
                    path,
                    line,
                    f"engine state tainted by wall-clock/RNG value ({desc}; "
                    f"from {provenance}); derive times from the context's "
                    "SimClock/ServerClock instead",
                )
            )
        for (path, line), label in sorted(result.occurrences.items()):
            if (path, line) in consumed:
                continue
            findings.append(
                (
                    path,
                    line,
                    f"calls wall-clock/RNG source {label}; use the context's "
                    "SimClock/ServerClock (or a seeded random.Random) instead",
                )
            )
        for path, line, message in findings:
            module = project.module_for(path)
            if module is not None:
                yield (module, line, message)
