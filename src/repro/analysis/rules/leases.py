"""Rule ``lease-lifecycle``: every acquisition reaches a release on all paths.

The server-wide invariant ``broker.used_bytes == sum(resident_bytes)``
only holds if every byte reserved against a :class:`MemoryBudget` — and
every lease granted by a pool or broker — is returned by the same owner
*on every path*, including the path taken when a call in between raises.
The PR-6 ``memory-pairing`` rule checked presence at class granularity;
this rule is path-sensitive over the function CFG and reports *which*
path leaks ("leaks on the except-path at line N").

Three cooperating checks:

1. **Local handles** — an acquisition captured in a local name
   (``budget = pool.grant(...)``, ``broker.lease(budget, n)``,
   ``budget.reserve(n)`` on a local) must, on every CFG path out of the
   function (normal, return, and exception edges), either reach a
   matching release (``release``/``close``/``revoke``/``release_lease``
   on or with the handle) or escape into longer-lived ownership (stored
   to an attribute/subscript, returned).  ``with`` acquisitions count as
   auto-released.

2. **Skippable lease returns** — in a function that *returns* a lease
   (``pool.revoke(...)``/``broker.release_lease(...)``) without locally
   acquiring one (the close/cleanup shape), a statement that can raise
   before the return reaches it must not let the exception bypass it:
   the return belongs in a ``finally``.

   The per-lane variant (2b): a teardown that returns *several* leases —
   one per exchange lane, in sequence or in a loop — must survive any one
   return call raising: the remaining lanes' grants still have to be
   released on the exception edge, or the lanes that were not yet revoked
   leak their budgets.

3. **Attribute-held pairing** — acquisitions held on ``self`` keep the
   old class-granularity presence check: a class that reserves on some
   receiver must release on that receiver somewhere.

The memory-authority modules (``storage/memory.py``, ``server/broker.py``)
implement the protocol itself and are exempt from check 3 (their
primitives delegate to each other), but checks 1 and 2 still apply to
them — the broker's own bookkeeping must not leak either.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.dataflow.cfg import (
    CFG,
    EXCEPT,
    STMT,
    WITH_EXIT,
    build_cfg,
    header_exprs,
    may_raise,
)
from repro.analysis.linter import ModuleSource, Rule
from repro.analysis.rules.memory import MEMORY_AUTHORITY_SUFFIXES, _receiver_tail

ACQUIRE_METHODS = frozenset({"reserve", "try_reserve", "force_reserve"})
RELEASE_METHODS = frozenset({"release", "close", "revoke", "release_lease", "revoke_to"})
GRANT_METHODS = frozenset({"grant"})
LEASE_METHODS = frozenset({"lease"})

#: Calls that return a lease to its pool/broker (check 2's protected set).
LEASE_RETURN_METHODS = frozenset({"revoke", "release_lease"})
_LEASE_RETURN_RECEIVERS = ("pool", "broker")


def _is_pool_receiver(tail: str | None) -> bool:
    return tail is not None and tail.endswith("pool")


def _is_broker_receiver(tail: str | None) -> bool:
    return tail is not None and "broker" in tail


def _is_lease_return_receiver(tail: str | None) -> bool:
    if tail is None:
        return False
    lowered = tail.lower()
    return any(fragment in lowered for fragment in _LEASE_RETURN_RECEIVERS)


class _Acquire:
    """One local-handle acquisition found in a function body."""

    __slots__ = ("node_index", "handle", "label", "lineno")

    def __init__(self, node_index: int, handle: str, label: str, lineno: int):
        self.node_index = node_index
        self.handle = handle
        self.label = label
        self.lineno = lineno


def _names_in(expr: ast.expr) -> set[str]:
    return {n.id for n in ast.walk(expr) if isinstance(n, ast.Name)}


def _stmt_calls(stmt) -> Iterator[ast.Call]:
    """Calls executed by the statement *itself* (compound bodies excluded).

    CFG nodes for ``try``/``finally``/handler placeholders carry the whole
    compound statement; walking it blindly would attribute body calls to
    the placeholder node.
    """
    for expr in header_exprs(stmt):
        for sub in ast.walk(expr):
            if isinstance(sub, ast.Call):
                yield sub


def _stmt_releases(stmt, handle: str) -> bool:
    """Does executing ``stmt`` release/return the handle's bytes?"""
    for node in _stmt_calls(stmt):
        if not isinstance(node.func, ast.Attribute):
            continue
        if node.func.attr not in RELEASE_METHODS:
            continue
        receiver = node.func.value
        if isinstance(receiver, ast.Name) and receiver.id == handle:
            return True  # budget.release(...) / budget.close()
        for arg in node.args:
            if isinstance(arg, ast.Name) and arg.id == handle:
                return True  # broker.release_lease(budget)
    return False


#: Methods that retain their argument in a longer-lived container — the
#: idiomatic per-lane setup loop (``budgets.append(pool.grant(...))`` or
#: ``handles.append(budget)``) transfers ownership to whoever owns the
#: container, same as an attribute store.
_ESCAPE_SINK_METHODS = frozenset({"append", "add", "insert", "register", "setdefault"})


def _stmt_escapes(stmt: ast.stmt, handle: str) -> bool:
    """Does ``stmt`` hand the handle to longer-lived ownership?"""
    if isinstance(stmt, ast.Return):
        return stmt.value is not None and handle in _names_in(stmt.value)
    if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call):
        call = stmt.value
        if isinstance(call.func, ast.Attribute) and call.func.attr in _ESCAPE_SINK_METHODS:
            return any(
                isinstance(arg, ast.Name) and arg.id == handle for arg in call.args
            )
    if isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
        value = stmt.value
        if value is None or handle not in _names_in(value):
            return False
        targets = stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
        for target in targets:
            if isinstance(target, (ast.Attribute, ast.Subscript)):
                return True
            # Rebinding the local ends tracking (treated as a transfer).
            if isinstance(target, ast.Name) and target.id != handle:
                return True
    return False


def _find_acquires(cfg: CFG) -> list[_Acquire]:
    """Grant/lease acquisitions captured into a function-local handle.

    ``reserve``-family calls are deliberately not tracked here: their
    receiver is usually a borrowed handle (a parameter, or an alias of
    ``self.budget``) whose release legitimately lives elsewhere — those
    stay under the class-granularity pairing of check 3.
    """
    acquires: list[_Acquire] = []
    for node in cfg.statement_nodes():
        stmt = node.stmt
        for call in _stmt_calls(stmt):
            if not isinstance(call.func, ast.Attribute):
                continue
            method = call.func.attr
            tail = _receiver_tail(call.func)
            handle = None
            label = None
            if method in GRANT_METHODS and _is_pool_receiver(tail):
                if (
                    isinstance(stmt, ast.Assign)
                    and len(stmt.targets) == 1
                    and isinstance(stmt.targets[0], ast.Name)
                    and stmt.value is call
                ):
                    handle = stmt.targets[0].id
                    label = f"{tail}.{method}"
            elif method in LEASE_METHODS and _is_broker_receiver(tail):
                if call.args and isinstance(call.args[0], ast.Name):
                    handle = call.args[0].id
                    label = f"{tail}.{method}"
            if handle is not None:
                acquires.append(_Acquire(node.index, handle, label, call.lineno))
    return acquires


def _leak_path(cfg: CFG, acquire: _Acquire) -> tuple[str, int] | None:
    """A path from the acquisition to an exit with no release/escape.

    Returns ``(path kind, last line)`` for the first leaking path found,
    or ``None`` when every path releases.  The acquiring statement itself
    is assumed to have succeeded (its own exception edge does not leak —
    nothing was acquired).
    """
    start = cfg.nodes[acquire.node_index]
    # If the acquisition happens in a `with handle:`-style header the
    # context manager releases it.
    if isinstance(start.stmt, (ast.With, ast.AsyncWith)):
        return None
    # The acquiring statement's own exception edge does not leak: when
    # the grant/lease call itself raises, nothing was acquired.
    worklist = [
        (succ, kind, start.line)
        for succ, kind in cfg.successors(start.index)
        if kind != EXCEPT
    ]
    seen: set[int] = set()
    while worklist:
        index, kind, from_line = worklist.pop()
        if index in seen:
            continue
        seen.add(index)
        node = cfg.nodes[index]
        if node.index == cfg.raise_exit:
            return ("except", from_line)
        if node.index == cfg.exit:
            return ("normal" if kind != EXCEPT else "except", from_line)
        if node.kind in (STMT, WITH_EXIT) and node.stmt is not None:
            if _stmt_releases(node.stmt, acquire.handle):
                continue  # this path is safe
            if _stmt_escapes(node.stmt, acquire.handle):
                continue
        line = node.line if node.kind == STMT else from_line
        for succ, succ_kind in cfg.successors(index):
            worklist.append((succ, succ_kind, line))
    return None


def _lease_return_nodes(cfg: CFG) -> list[tuple[int, int, str]]:
    """(node index, line, label) of lease-return calls in this function."""
    out: list[tuple[int, int, str]] = []
    for node in cfg.statement_nodes():
        for call in _stmt_calls(node.stmt):
            if not isinstance(call.func, ast.Attribute):
                continue
            tail = _receiver_tail(call.func)
            if call.func.attr in LEASE_RETURN_METHODS and _is_lease_return_receiver(tail):
                out.append((node.index, call.lineno, f"{tail}.{call.func.attr}"))
    return out


def _reaches(cfg: CFG, start: int, goals: set[int], avoid: set[int]) -> bool:
    worklist = [start]
    seen: set[int] = set()
    while worklist:
        index = worklist.pop()
        if index in seen or index in avoid:
            continue
        seen.add(index)
        if index in goals:
            return True
        for succ, _kind in cfg.successors(index):
            worklist.append(succ)
    return False


def _skippable_return(cfg: CFG) -> tuple[int, str, int] | None:
    """Check 2: a raise before the lease return that bypasses it.

    Returns ``(return line, label, raising line)`` or ``None``.
    """
    returns = _lease_return_nodes(cfg)
    if not returns:
        return None
    return_indexes = {index for index, _line, _label in returns}
    exits = {cfg.exit, cfg.raise_exit}
    for node in cfg.statement_nodes():
        if node.index in return_indexes or node.stmt is None:
            continue
        if not may_raise(node.stmt):
            continue
        # The raising statement must sit before the lease return on some
        # normal path (otherwise the lease was already returned)...
        if not _reaches(cfg, node.index, return_indexes, avoid=set()):
            continue
        # ...and its exception edge must be able to leave the function
        # without passing any lease return.
        for succ, kind in cfg.successors(node.index):
            if kind != EXCEPT:
                continue
            if succ in exits or _reaches(cfg, succ, exits, avoid=return_indexes):
                index, line, label = min(returns, key=lambda r: r[1])
                return (line, label, node.line)
    return None


def _reaches_after(cfg: CFG, start: int, goals: set[int], avoid: set[int]) -> bool:
    """Like :func:`_reaches`, but from ``start``'s *normal* successors only
    (so a node can be its own goal — the loop-teardown case)."""
    worklist = [succ for succ, kind in cfg.successors(start) if kind != EXCEPT]
    seen: set[int] = set()
    while worklist:
        index = worklist.pop()
        if index in seen or index in avoid:
            continue
        seen.add(index)
        if index in goals:
            return True
        for succ, _kind in cfg.successors(index):
            worklist.append(succ)
    return False


def _skippable_sibling_return(cfg: CFG) -> tuple[int, str] | None:
    """Check 2b: one lane's lease return raising must not skip another's.

    Multi-lane teardown returns one grant per lane, sequentially or in a
    loop.  A lease-return call is itself a raiser (check 2 deliberately
    exempts it — *its* lease is being returned either way); but when more
    returns are still pending after it on the normal path, its exception
    edge must not exit the function without passing them.  Returns the
    ``(line, label)`` of the return whose failure skips the rest.
    """
    returns = _lease_return_nodes(cfg)
    if not returns:
        return None
    return_indexes = {index for index, _line, _label in returns}
    exits = {cfg.exit, cfg.raise_exit}
    for index, line, label in returns:
        node = cfg.nodes[index]
        if node.stmt is None or not may_raise(node.stmt):
            continue
        # More lease returns run after this one on the normal path (another
        # call site, or this same site on the next loop iteration)...
        if not _reaches_after(cfg, index, return_indexes, avoid=set()):
            continue
        # ...and this call's exception edge can leave the function without
        # passing any lease return at all.
        for succ, kind in cfg.successors(index):
            if kind != EXCEPT:
                continue
            if succ in exits or _reaches(cfg, succ, exits, avoid=return_indexes):
                return (line, label)
    return None


class LeaseLifecycleRule(Rule):
    rule_id = "lease-lifecycle"
    summary = (
        "every budget reservation / pool grant must reach a matching release "
        "on all CFG paths out of the acquiring scope, including exception "
        "edges; lease returns in cleanup code must be finally-protected"
    )

    def check(self, module: ModuleSource) -> Iterator[tuple[int, str]]:
        authority = module.matches(*MEMORY_AUTHORITY_SUFFIXES) or module.has_role(
            "memory-authority"
        )
        for fn in ast.walk(module.tree):
            if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            cfg = build_cfg(fn)
            acquires = _find_acquires(cfg)
            for acquire in acquires:
                leak = _leak_path(cfg, acquire)
                if leak is not None:
                    kind, line = leak
                    where = (
                        f"leaks on the except-path: an exception at line {line} "
                        "exits the scope before any release"
                        if kind == "except"
                        else f"leaks on the path leaving the scope at line {line}"
                    )
                    yield (
                        acquire.lineno,
                        f"{fn.name} acquires via {acquire.label}() into "
                        f"{acquire.handle!r} but {where}; release on every "
                        "path (try/finally) so broker.used == "
                        "sum(resident_bytes) holds",
                    )
            if not acquires:
                skippable = _skippable_return(cfg)
                if skippable is not None:
                    line, label, raising = skippable
                    yield (
                        line,
                        f"{fn.name}'s lease return {label}() can be skipped "
                        f"when line {raising} raises; move it into a finally "
                        "block so revocation cleanup cannot leak the lease",
                    )
                sibling = _skippable_sibling_return(cfg)
                if sibling is not None:
                    line, label = sibling
                    yield (
                        line,
                        f"{fn.name} returns several leases (per-lane teardown "
                        f"shape); if {label}() at line {line} raises, the "
                        "remaining lanes' grants are never released — protect "
                        "the rest with try/finally so every lane's budget is "
                        "returned on every exit path",
                    )
        if not authority:
            yield from self._class_pairing(module)

    # -- check 3: borrowed/attribute-held handles, class-granularity presence ------

    def _class_pairing(self, module: ModuleSource) -> Iterator[tuple[int, str]]:
        for cls in ast.walk(module.tree):
            if not isinstance(cls, ast.ClassDef):
                continue
            acquires: dict[str, tuple[int, str]] = {}
            grants: list[tuple[int, str]] = []
            release_tails: set[str] = set()
            has_grant_release = False
            for call in ast.walk(cls):
                if not isinstance(call, ast.Call) or not isinstance(
                    call.func, ast.Attribute
                ):
                    continue
                tail = _receiver_tail(call.func)
                if tail is None:
                    continue
                method = call.func.attr
                if method in ACQUIRE_METHODS:
                    acquires.setdefault(tail, (call.lineno, method))
                elif method in RELEASE_METHODS:
                    release_tails.add(tail)
                if method in GRANT_METHODS and _is_pool_receiver(tail):
                    grants.append((call.lineno, f"{tail}.{method}"))
                elif method in LEASE_RETURN_METHODS or method == "close":
                    has_grant_release = True
            for tail, (lineno, method) in sorted(
                acquires.items(), key=lambda kv: kv[1][0]
            ):
                if tail in release_tails:
                    continue
                yield (
                    lineno,
                    f"{cls.name} reserves via {tail}.{method}() but never "
                    f"releases on {tail!r} anywhere in the class; pair every "
                    "reservation with a release path",
                )
            if grants and not has_grant_release:
                lineno, label = grants[0]
                yield (
                    lineno,
                    f"{cls.name} takes a budget via {label}() but never revokes "
                    "or releases the lease; grants must be returned to the pool",
                )
