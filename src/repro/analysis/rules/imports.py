"""Rule ``conftest-import``: never import from a module named ``conftest``.

A top-level module named ``conftest`` is ambiguous between ``tests/`` and
``benchmarks/`` and once broke pytest collection entirely (see ROADMAP
"Running tests & benchmarks").  Shared helpers live in ``tests/helpers.py``
and ``benchmarks/bench_support.py``; importing ``conftest`` by name is always
a latent collection bug.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.linter import ModuleSource, Rule


class ConftestImportRule(Rule):
    rule_id = "conftest-import"
    summary = (
        "never `from conftest import ...` — the top-level name is ambiguous "
        "between tests/ and benchmarks/; use helpers.py / bench_support.py"
    )

    def check(self, module: ModuleSource) -> Iterator[tuple[int, str]]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ImportFrom):
                if node.module == "conftest" or (
                    node.module and node.module.startswith("conftest.")
                ):
                    yield (
                        node.lineno,
                        "imports from conftest; move shared helpers to "
                        "tests/helpers.py or benchmarks/bench_support.py",
                    )
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "conftest" or alias.name.startswith("conftest."):
                        yield (
                            node.lineno,
                            "imports conftest as a module; move shared helpers to "
                            "tests/helpers.py or benchmarks/bench_support.py",
                        )
