"""Rule ``wire-safe``: no live engine state in inter-process payloads.

The process exchange backend ships batches and sync reports between the
parent and lane workers.  What crosses the pipe must be *data*: pre-encoded
wire tuples, counter dictionaries, plain values.  Live engine objects — a
``SimClock`` (its identity anchors virtual-time accounting), a
``MemoryPool``/``MemoryBudget`` (broker leases are parent-side state), an
open file or connection (unpicklable, or worse: silently duplicated) — must
never be pickled into a payload.  Shipping one either crashes at pickle
time deep in ``multiprocessing`` or, for the picklable ones, forks the
authoritative state into two diverging copies.

The rule is syntactic, by receiver-name convention like ``budget-mutation``:
any argument expression of a payload-bearing call (``send_msg(conn, ...)``,
``<x>.send(...)``, ``<x>.send_bytes(...)``, ``<x>.post_msg(...)``) that
mentions a name conventionally bound to live state (``clock``, ``pool``,
``budget``, ``disk``, ``conn``, ``file``, ``context``, ...) is flagged.
Compliant code derives a plain payload first (``sync = {...}``) and ships
the derived name.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.linter import ModuleSource, Rule

#: Names conventionally bound to live engine state that must not be shipped.
UNSAFE_STATE_NAMES = frozenset(
    {
        "clock",
        "pool",
        "memory_pool",
        "budget",
        "budgets",
        "disk",
        "wrapper",
        "conn",
        "connection",
        "file",
        "sock",
        "socket",
        "context",
    }
)

#: Method names whose arguments become inter-process payloads.
SEND_METHOD_NAMES = frozenset({"send", "send_bytes", "post_msg"})


def _payload_args(node: ast.Call) -> list[ast.expr]:
    func = node.func
    if isinstance(func, ast.Name) and func.id == "send_msg":
        # send_msg(conn, payload): the connection argument is plumbing.
        return list(node.args[1:])
    if isinstance(func, ast.Attribute) and func.attr in SEND_METHOD_NAMES:
        return list(node.args)
    return []


def _unsafe_mention(payload: ast.expr) -> str | None:
    """First live-state name mentioned anywhere inside ``payload``."""
    for node in ast.walk(payload):
        if isinstance(node, ast.Name):
            candidate = node.id
        elif isinstance(node, ast.Attribute):
            candidate = node.attr
        else:
            continue
        if candidate.lstrip("_") in UNSAFE_STATE_NAMES:
            return candidate
    return None


class WireSafetyRule(Rule):
    rule_id = "wire-safe"
    summary = (
        "inter-process payloads (send_msg/.send/.send_bytes/.post_msg args) "
        "must not mention live engine state (clocks, pools, budgets, disks, "
        "open files/connections); derive a plain payload and ship that"
    )

    def check(self, module: ModuleSource) -> Iterator[tuple[int, str]]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            for payload in _payload_args(node):
                mention = _unsafe_mention(payload)
                if mention is not None:
                    yield (
                        node.lineno,
                        f"payload mentions live state name {mention!r}; shipping "
                        "it across a process boundary forks authoritative engine "
                        "state (or fails to pickle) — build a plain data payload "
                        "first and send that",
                    )
