"""Rule ``step-effect``: scheduler probes must be effect-free.

The discrete-event scheduler decides *when* to run a fragment by probing
``peek_arrival()`` and by building ``StepEvent("wait", …)`` records from
wait hints.  Probes run outside the fragment's own virtual-time slice:
if probing mutates a clock, a budget, a cache, or opens a source
connection, the timeline silently diverges between drive modes — the
static race-detector analog for the deterministic DES scheduler, and
the property the planned exchange operators will lean on.

The rule finds every *entry* (any definition of a probe-root name —
``peek_arrival``, or the prefetcher's ``prefetch_decision`` hook, which the
server consults on every scheduling quantum — plus every function whose
result feeds a ``StepEvent("wait", …)`` construction, resolved through
local def-use chains), walks the project call graph
from those entries — pruned by the bottom-up effect summaries, so clean
subtrees cost nothing — and reports each *direct* effect reachable from
a probe, at the effect's own line, with the call chain that reaches it.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.linter import ModuleSource, ProjectRule


def _call_name(func: ast.expr) -> str | None:
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


#: Function names whose definitions are scheduler probes: called outside any
#: session's virtual-time slice, so everything they reach must be effect-free.
PROBE_ROOT_NAMES = frozenset({"peek_arrival", "prefetch_decision"})

#: Builtins treated as pass-throughs when collecting feeders: the names
#: *inside* ``min(hint, deadline)`` still feed the event.
_PASS_THROUGH_CALLS = frozenset({"min", "max", "abs", "round", "sum", "float", "int"})


def _collect_feeders(
    expr: ast.expr, names: set[str], calls: dict[int, ast.Call]
) -> None:
    """Split an expression into feeding *calls* and feeding bare *names*.

    A call's result feeds the event; its arguments do not (what the
    callee does with them is the callee's summary's business).  Without
    this distinction, ``wait_until = self._wait_hint(root)`` would drag
    the entire construction of ``root`` — the whole operator tree — into
    the probe closure.
    """
    if isinstance(expr, ast.Call):
        name = _call_name(expr.func)
        if name in _PASS_THROUGH_CALLS:
            for arg in expr.args:
                _collect_feeders(arg, names, calls)
        else:
            calls[id(expr)] = expr
        return
    if isinstance(expr, ast.Name):
        names.add(expr.id)
        return
    for child in ast.iter_child_nodes(expr):
        if isinstance(child, ast.expr):
            _collect_feeders(child, names, calls)


def _wait_event_feeders(info, graph) -> list[str]:
    """Qualnames of project functions feeding ``StepEvent("wait", …)`` here."""
    from repro.analysis.dataflow.taint import _site_for

    fn = info.node
    feeder_names: set[str] = set()
    feeder_calls: dict[int, ast.Call] = {}
    found_wait = False
    for node in ast.walk(fn):
        if not isinstance(node, ast.Call) or _call_name(node.func) != "StepEvent":
            continue
        if not node.args:
            continue
        first = node.args[0]
        if not (isinstance(first, ast.Constant) and first.value == "wait"):
            continue
        found_wait = True
        payload = list(node.args[1:]) + [kw.value for kw in node.keywords]
        for expr in payload:
            _collect_feeders(expr, feeder_names, feeder_calls)
    if not found_wait:
        return []
    # Local def-use: assignments whose target feeds the event pull their
    # right-hand calls (and directly-copied names) in, to a fixpoint.
    changed = True
    while changed:
        changed = False
        for stmt in ast.walk(fn):
            if not isinstance(stmt, ast.Assign):
                continue
            if not any(
                isinstance(t, ast.Name) and t.id in feeder_names for t in stmt.targets
            ):
                continue
            before_names = len(feeder_names)
            before_calls = len(feeder_calls)
            _collect_feeders(stmt.value, feeder_names, feeder_calls)
            if len(feeder_names) != before_names or len(feeder_calls) != before_calls:
                changed = True
    targets: list[str] = []
    for call in feeder_calls.values():
        site = _site_for(call)
        if site is not None:
            targets.extend(graph.resolve(info, site))
    return targets


class StepEffectRule(ProjectRule):
    rule_id = "step-effect"
    summary = (
        "functions reachable from peek_arrival/prefetch_decision probes and "
        "StepEvent('wait') construction must be effect-free: no clock "
        "consume_*/advance, no budget mutation, no cache fills, no source "
        "connection opens"
    )

    def check_project(self, project) -> Iterator[tuple[ModuleSource, int, str]]:
        graph = project.graph
        summaries = project.effect_summaries
        direct = project.direct_effects

        entries: dict[str, str] = {}  # qualname -> entry description
        for qualname, info in graph.functions.items():
            if info.name in PROBE_ROOT_NAMES:
                entries.setdefault(qualname, f"probe {qualname}")
        for qualname, info in graph.functions.items():
            for target in _wait_event_feeders(info, graph):
                entries.setdefault(
                    target, f'StepEvent("wait") built in {qualname}'
                )

        reported: dict[tuple[str, int], tuple[ModuleSource, int, str]] = {}
        for entry in sorted(entries):
            if not summaries.get(entry):
                continue  # effect-free subtree: nothing to walk
            chains: dict[str, list[str]] = {entry: [entry]}
            worklist = [entry]
            while worklist:
                current = worklist.pop(0)
                chain = chains[current]
                for effect in direct.get(current, ()):
                    key = (effect.path, effect.line)
                    if key in reported:
                        continue
                    module = project.module_for(effect.path)
                    if module is None:
                        continue
                    info = graph.functions[current]
                    via = " -> ".join(q.rsplit(".", 1)[-1] for q in chain)
                    reported[key] = (
                        module,
                        effect.line,
                        f"{effect.kind} effect `{effect.detail}` in {info.name} "
                        f"is reachable from scheduler {entries[entry]} "
                        f"(via {via}); probes must not mutate engine state",
                    )
                for callee, _site in graph.callees(current):
                    if callee in chains or not summaries.get(callee):
                        continue
                    chains[callee] = chain + [callee]
                    worklist.append(callee)
        for _key, (module, line, message) in sorted(
            reported.items(), key=lambda item: item[0]
        ):
            yield (module, line, message)
