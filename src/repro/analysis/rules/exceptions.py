"""Rules ``bare-except`` and ``swallowed-except``: no silent failure paths.

Operators surface source failures as engine events *and* exceptions so rules
can react and the executor can stop a fragment deterministically; a handler
that silently eats a broad exception class breaks both channels at once (a
timeout that should trigger rescheduling just disappears).  ``bare-except``
flags every ``except:`` — it also catches ``KeyboardInterrupt`` and
``SystemExit``, which nothing in this engine should.  ``swallowed-except``
flags broad handlers (``except Exception``/``BaseException``/bare) whose
body is nothing but ``pass``/``continue``/``...`` — narrow handlers that
deliberately fall through (parser fallbacks, typed-column degradation) stay
legal.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.linter import ModuleSource, Rule

BROAD_EXCEPTION_NAMES = frozenset({"Exception", "BaseException"})


def _is_broad(handler: ast.ExceptHandler) -> bool:
    node = handler.type
    if node is None:
        return True
    if isinstance(node, ast.Name):
        return node.id in BROAD_EXCEPTION_NAMES
    if isinstance(node, ast.Tuple):
        return any(
            isinstance(elt, ast.Name) and elt.id in BROAD_EXCEPTION_NAMES
            for elt in node.elts
        )
    return False


def _swallows(handler: ast.ExceptHandler) -> bool:
    """True when the handler body does nothing at all with the error."""
    for statement in handler.body:
        if isinstance(statement, (ast.Pass, ast.Continue)):
            continue
        if isinstance(statement, ast.Expr) and isinstance(statement.value, ast.Constant):
            continue  # docstring or `...`
        return False
    return True


class BareExceptRule(Rule):
    rule_id = "bare-except"
    summary = (
        "no `except:` — it swallows KeyboardInterrupt/SystemExit; name the "
        "exception classes the handler can actually recover from"
    )

    def check(self, module: ModuleSource) -> Iterator[tuple[int, str]]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ExceptHandler) and node.type is None:
                yield (
                    node.lineno,
                    "bare except: catches everything including KeyboardInterrupt; "
                    "name the recoverable exception classes",
                )


class SwallowedExceptRule(Rule):
    rule_id = "swallowed-except"
    summary = (
        "a broad handler (except Exception/BaseException) must not silently "
        "pass; record, re-raise, or surface the failure as an engine event"
    )

    def check(self, module: ModuleSource) -> Iterator[tuple[int, str]]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                continue  # already reported by bare-except
            if _is_broad(node) and _swallows(node):
                yield (
                    node.lineno,
                    "broad exception handler silently discards the error; "
                    "record it, re-raise, or emit an engine event so rules "
                    "and the executor can react",
                )
