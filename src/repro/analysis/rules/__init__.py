"""The project's lint rules, in one registry.

Every rule here guards an invariant the ROADMAP's "Static analysis &
invariants" section documents; add new rules as one module per concern and
register the instance in :data:`ALL_RULES`.
"""

from __future__ import annotations

from repro.analysis.linter import Rule
from repro.analysis.rules.clock import ClockTaintRule
from repro.analysis.rules.exceptions import BareExceptRule, SwallowedExceptRule
from repro.analysis.rules.imports import ConftestImportRule
from repro.analysis.rules.leases import LeaseLifecycleRule
from repro.analysis.rules.memory import BudgetMutationRule
from repro.analysis.rules.rows import HotPathRowRule
from repro.analysis.rules.scheduler import StepEffectRule
from repro.analysis.rules.wire import WireSafetyRule

#: Every registered rule, in reporting order.  ``clock-taint`` subsumed the
#: syntactic ``wall-clock`` rule and ``lease-lifecycle`` replaced the
#: class-granularity ``memory-pairing`` heuristic in PR 7.
ALL_RULES: tuple[Rule, ...] = (
    ClockTaintRule(),
    LeaseLifecycleRule(),
    StepEffectRule(),
    BudgetMutationRule(),
    HotPathRowRule(),
    ConftestImportRule(),
    BareExceptRule(),
    SwallowedExceptRule(),
    WireSafetyRule(),
)


def rule_by_id(rule_id: str) -> Rule:
    """Look up a registered rule by its id."""
    for rule in ALL_RULES:
        if rule.rule_id == rule_id:
            return rule
    known = ", ".join(rule.rule_id for rule in ALL_RULES)
    raise KeyError(f"unknown rule {rule_id!r}; known rules: {known}")


__all__ = ["ALL_RULES", "rule_by_id"]
