"""Project-wide function index and name-resolved call graph.

Python's dynamism rules out a sound points-to analysis inside a linter,
so the graph is resolved by *name* over the project's actual import
structure, erring toward over-approximation:

- ``name(...)`` resolves through the module's imports (``from x import f``),
  then module-level and enclosing-scope definitions, then project classes
  (a constructor call targets ``__init__``);
- ``self.m(...)`` / ``cls.m(...)`` resolves to the enclosing class's method
  if it has one, otherwise to *every* project method named ``m`` (a
  subclass may provide it);
- ``alias.f(...)`` where ``alias`` is an imported module resolves to that
  module's top-level ``f``;
- any other ``recv.m(...)`` resolves to every project function named ``m``.

Over-approximation is the right failure mode for the rules built on top:
``step-effect`` must never miss a side effect reachable from a probe, and
a spurious edge at worst produces a finding a pragma can silence.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field


@dataclass
class FunctionInfo:
    """One function or method definition in the project."""

    qualname: str  # "repro.engine.executor.QueryExecutor._wait_hint"
    module: str  # dotted module name
    name: str  # simple name
    cls: str | None  # enclosing class name, if a method
    node: ast.FunctionDef | ast.AsyncFunctionDef
    path: str  # posix path of the defining module
    lineno: int = 0
    is_generator: bool = False

    def __post_init__(self) -> None:
        self.lineno = self.node.lineno


@dataclass
class CallSite:
    """One call expression inside a function, with its resolution inputs."""

    kind: str  # "name" | "self-attr" | "attr"
    name: str  # called simple name / attribute
    receiver: str | None  # receiver expression tail ("pool", "clock", module alias)
    lineno: int
    node: ast.Call


def module_name_for(posix_path: str) -> str:
    """Dotted module name from a src-relative posix path.

    ``src/repro/engine/executor.py`` → ``repro.engine.executor``; paths
    outside a ``src`` root fall back to the path with separators swapped,
    which keeps fixture modules distinct from project modules.
    """
    parts = posix_path.split("/")
    if "src" in parts:
        parts = parts[parts.index("src") + 1 :]
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def _receiver_tail(expr: ast.expr) -> str | None:
    if isinstance(expr, ast.Name):
        return expr.id
    if isinstance(expr, ast.Attribute):
        return expr.attr
    return None


def _is_generator(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    nested: set[int] = set()
    for node in ast.walk(fn):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            if node is fn:
                continue
            for sub in ast.walk(node):
                nested.add(id(sub))
    for node in ast.walk(fn):
        if id(node) not in nested and isinstance(node, (ast.Yield, ast.YieldFrom)):
            return True
    return False


@dataclass
class ModuleFacts:
    """Per-module inputs to the call graph: defs, imports, classes."""

    module: str
    path: str
    functions: dict[str, FunctionInfo] = field(default_factory=dict)  # by qualname
    imports: dict[str, str] = field(default_factory=dict)  # alias -> target
    classes: dict[str, list[str]] = field(default_factory=dict)  # class -> method qualnames


def collect_module_facts(tree: ast.Module, posix_path: str) -> ModuleFacts:
    module = module_name_for(posix_path)
    facts = ModuleFacts(module=module, path=posix_path)

    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                facts.imports[alias.asname or alias.name.split(".")[0]] = alias.name
        elif isinstance(node, ast.ImportFrom):
            if node.module is None or node.level:
                continue  # relative imports are not used in this tree
            for alias in node.names:
                facts.imports[alias.asname or alias.name] = f"{node.module}:{alias.name}"

    def visit_body(body, prefix: str, cls: str | None) -> None:
        for node in body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{prefix}.{node.name}"
                info = FunctionInfo(
                    qualname=qualname,
                    module=module,
                    name=node.name,
                    cls=cls,
                    node=node,
                    path=posix_path,
                    is_generator=_is_generator(node),
                )
                facts.functions[qualname] = info
                if cls is not None:
                    facts.classes.setdefault(cls, []).append(qualname)
                # Nested definitions keep their enclosing function in the
                # qualname but are *not* methods of the class.
                visit_body(node.body, qualname, None)
            elif isinstance(node, ast.ClassDef):
                facts.classes.setdefault(node.name, [])
                visit_body(node.body, f"{prefix}.{node.name}", node.name)
            elif isinstance(node, (ast.If, ast.Try)):
                visit_body(node.body, prefix, cls)

    visit_body(tree.body, module, None)
    return facts


def collect_call_sites(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> list[CallSite]:
    """Every call expression in ``fn``'s own body (not nested defs)."""
    sites: list[CallSite] = []
    nested: set[int] = set()
    for node in ast.walk(fn):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) and node is not fn:
            for sub in ast.walk(node):
                nested.add(id(sub))
    for node in ast.walk(fn):
        if id(node) in nested or not isinstance(node, ast.Call):
            continue
        func = node.func
        if isinstance(func, ast.Name):
            sites.append(CallSite("name", func.id, None, node.lineno, node))
        elif isinstance(func, ast.Attribute):
            value = func.value
            if isinstance(value, ast.Name) and value.id in ("self", "cls"):
                sites.append(CallSite("self-attr", func.attr, value.id, node.lineno, node))
            else:
                sites.append(
                    CallSite("attr", func.attr, _receiver_tail(value), node.lineno, node)
                )
    return sites


class CallGraph:
    """Name-resolved call graph over a set of project modules."""

    def __init__(self, module_facts: list[ModuleFacts]):
        self.modules = {facts.module: facts for facts in module_facts}
        self.functions: dict[str, FunctionInfo] = {}
        self.by_name: dict[str, list[str]] = {}
        self.methods_by_name: dict[str, list[str]] = {}
        self.class_methods: dict[tuple[str, str], str] = {}
        self.module_level: dict[tuple[str, str], str] = {}
        for facts in module_facts:
            for qualname, info in facts.functions.items():
                self.functions[qualname] = info
                self.by_name.setdefault(info.name, []).append(qualname)
                if info.cls is not None:
                    self.methods_by_name.setdefault(info.name, []).append(qualname)
                    self.class_methods[(info.cls, info.name)] = qualname
                elif qualname == f"{facts.module}.{info.name}":
                    self.module_level[(facts.module, info.name)] = qualname
        self._edges: dict[str, list[tuple[str, CallSite]]] = {}

    # -- resolution --------------------------------------------------------------

    def resolve(self, caller: FunctionInfo, site: CallSite) -> list[str]:
        """Project functions a call site may target (empty: external call)."""
        if site.kind == "name":
            return self._resolve_name(caller, site.name)
        if site.kind == "self-attr":
            if caller.cls is not None:
                own = self.class_methods.get((caller.cls, site.name))
                if own is not None:
                    return [own]
            return list(self.methods_by_name.get(site.name, ()))
        # attr call: imported-module attribute, else any project def by name.
        facts = self.modules.get(caller.module)
        if facts is not None and site.receiver in facts.imports:
            target = facts.imports[site.receiver]
            if ":" not in target:
                qual = self.module_level.get((target, site.name))
                return [qual] if qual is not None else []
        return list(self.by_name.get(site.name, ()))

    def _resolve_name(self, caller: FunctionInfo, name: str) -> list[str]:
        facts = self.modules.get(caller.module)
        if facts is not None:
            imported = facts.imports.get(name)
            if imported is not None and ":" in imported:
                mod, attr = imported.split(":", 1)
                qual = self.module_level.get((mod, attr))
                if qual is not None:
                    return [qual]
                # Imported class: a constructor call targets __init__.
                target_facts = self.modules.get(mod)
                if target_facts is not None and attr in target_facts.classes:
                    init = self.class_methods.get((attr, "__init__"))
                    return [init] if init is not None else []
                return []
            # Nested function of the caller, then module scope, then a
            # same-module class constructor.
            nested = f"{caller.qualname}.{name}"
            if nested in self.functions:
                return [nested]
            qual = self.module_level.get((caller.module, name))
            if qual is not None:
                return [qual]
            if name in facts.classes:
                init = self.class_methods.get((name, "__init__"))
                return [init] if init is not None else []
        return []

    # -- edges -------------------------------------------------------------------

    def callees(self, qualname: str) -> list[tuple[str, CallSite]]:
        """Resolved ``(callee_qualname, site)`` pairs for one function."""
        cached = self._edges.get(qualname)
        if cached is not None:
            return cached
        info = self.functions[qualname]
        edges: list[tuple[str, CallSite]] = []
        for site in collect_call_sites(info.node):
            for target in self.resolve(info, site):
                edges.append((target, site))
        self._edges[qualname] = edges
        return edges
