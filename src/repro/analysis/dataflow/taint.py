"""Forward taint propagation over CFGs with call-graph summaries.

The engine is generic: a rule supplies ``classify_source`` (is this call
a taint source, and what label does it carry?) and optionally
``classify_call_sink`` (is this call itself a sink for tainted
arguments?).  The engine then runs a forward, flow-sensitive dataflow on
each function's CFG and propagates three kinds of facts *across*
functions via bottom-up summaries:

- ``returns_srcs``: source origins a function can return;
- ``param_returns``: parameter positions that flow to the return value;
- ``param_sinks``: parameter positions that flow into engine state inside
  the callee (attribute/subscript stores), with the sink's location.

Sinks are attribute stores, subscript stores, and rule-designated calls.
A tainted value reaching a sink is reported *at the sink* with the
source's provenance; a source whose value never reaches a sink is
reported at the source call itself (the call alone is already a
determinism hazard).  Either way each source occurrence yields exactly
one class of finding, so ``# repro: allow[...]`` pragmas have one obvious
line to land on.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Callable

from repro.analysis.dataflow.callgraph import CallGraph, CallSite, FunctionInfo
from repro.analysis.dataflow.cfg import STMT, build_cfg

#: Origin tuples: ("src", path, line, label) | ("param", index)
Origin = tuple

_MAX_PASSES = 8


@dataclass
class FnTaint:
    """Interprocedural taint summary of one function."""

    returns_srcs: set[Origin] = field(default_factory=set)
    param_returns: set[int] = field(default_factory=set)
    param_sinks: dict[int, set[tuple[str, int, str]]] = field(default_factory=dict)

    def snapshot(self) -> tuple:
        return (
            frozenset(self.returns_srcs),
            frozenset(self.param_returns),
            frozenset((k, frozenset(v)) for k, v in self.param_sinks.items()),
        )


@dataclass
class TaintResult:
    #: (path, line) -> label, for every source call in a tracked module.
    occurrences: dict[tuple[str, int], str]
    #: (path, line, sink description) -> set of "src" origins reaching it.
    sinks: dict[tuple[str, int, str], set[Origin]]


def _param_names(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> list[str]:
    args = fn.args
    return [a.arg for a in args.posonlyargs + args.args]


class TaintAnalysis:
    def __init__(
        self,
        graph: CallGraph,
        classify_source: Callable[[ast.Call, FunctionInfo], str | None],
        classify_call_sink: Callable[[ast.Call], str | None] | None = None,
    ) -> None:
        self.graph = graph
        self.classify_source = classify_source
        self.classify_call_sink = classify_call_sink
        self.summaries: dict[str, FnTaint] = {
            name: FnTaint() for name in graph.functions
        }
        self.occurrences: dict[tuple[str, int], str] = {}
        self.sinks: dict[tuple[str, int, str], set[Origin]] = {}

    # -- public ------------------------------------------------------------------

    def run(self) -> TaintResult:
        functions = list(self.graph.functions.values())
        for _ in range(_MAX_PASSES):
            changed = False
            for info in functions:
                before = self.summaries[info.qualname].snapshot()
                self._analyze_function(info)
                if self.summaries[info.qualname].snapshot() != before:
                    changed = True
            if not changed:
                break
        return TaintResult(self.occurrences, self.sinks)

    # -- per-function dataflow -----------------------------------------------------

    def _analyze_function(self, info: FunctionInfo) -> None:
        cfg = build_cfg(info.node, info.qualname)
        params = _param_names(info.node)
        entry_env = {name: {("param", index)} for index, name in enumerate(params)}
        in_states: dict[int, dict[str, set[Origin]]] = {cfg.entry: entry_env}
        worklist = [cfg.entry]
        seen = {cfg.entry}
        visits: dict[int, int] = {}
        while worklist:
            index = worklist.pop()
            visits[index] = visits.get(index, 0) + 1
            if visits[index] > 50:  # safety valve on pathological graphs
                continue
            env = {name: set(origins) for name, origins in in_states[index].items()}
            node = cfg.nodes[index]
            if node.kind == STMT and node.stmt is not None:
                self._transfer(node.stmt, env, info)
            for succ, _kind in cfg.successors(index):
                changed = self._merge(in_states.setdefault(succ, {}), env)
                # A node must be visited at least once even when the merged
                # state is empty (zero-param functions start with no facts).
                if (changed or succ not in seen) and succ not in worklist:
                    seen.add(succ)
                    worklist.append(succ)

    @staticmethod
    def _merge(target: dict[str, set[Origin]], source: dict[str, set[Origin]]) -> bool:
        changed = False
        for name, origins in source.items():
            have = target.get(name)
            if have is None:
                target[name] = set(origins)
                changed = True
            elif not origins <= have:
                have |= origins
                changed = True
        return changed

    # -- transfer ----------------------------------------------------------------

    def _transfer(self, stmt: ast.stmt, env: dict[str, set[Origin]], info) -> None:
        summary = self.summaries[info.qualname]
        if isinstance(stmt, ast.Assign):
            origins = self._eval(stmt.value, env, info)
            for target in stmt.targets:
                self._assign(target, origins, env, info)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            origins = self._eval(stmt.value, env, info)
            self._assign(stmt.target, origins, env, info)
        elif isinstance(stmt, ast.AugAssign):
            origins = self._eval(stmt.value, env, info)
            if isinstance(stmt.target, ast.Name):
                origins = origins | env.get(stmt.target.id, set())
            self._assign(stmt.target, origins, env, info)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                for origin in self._eval(stmt.value, env, info):
                    if origin[0] == "src":
                        summary.returns_srcs.add(origin)
                    else:
                        summary.param_returns.add(origin[1])
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            origins = self._eval(stmt.iter, env, info)
            self._assign(stmt.target, origins, env, info, weak=True)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                origins = self._eval(item.context_expr, env, info)
                if item.optional_vars is not None:
                    self._assign(item.optional_vars, origins, env, info)
        else:
            # Evaluate header expressions for their side conditions (source
            # occurrences, call sinks): Expr, If, While, Raise, Assert, ...
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self._eval(child, env, info)

    def _assign(
        self,
        target: ast.expr,
        origins: set[Origin],
        env: dict[str, set[Origin]],
        info,
        weak: bool = False,
    ) -> None:
        if isinstance(target, ast.Name):
            if weak:
                env[target.id] = env.get(target.id, set()) | origins
            else:
                env[target.id] = set(origins)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._assign(element, origins, env, info, weak=weak)
        elif isinstance(target, ast.Starred):
            self._assign(target.value, origins, env, info, weak=weak)
        elif isinstance(target, ast.Attribute):
            desc = f"attribute store to .{target.attr}"
            self._record_sink(origins, info.path, target.lineno, desc, info)
        elif isinstance(target, ast.Subscript):
            self._record_sink(origins, info.path, target.lineno, "subscript store", info)

    def _record_sink(
        self, origins: set[Origin], path: str, line: int, desc: str, info
    ) -> None:
        if not origins:
            return
        srcs = {o for o in origins if o[0] == "src"}
        if srcs:
            self.sinks.setdefault((path, line, desc), set()).update(srcs)
        summary = self.summaries[info.qualname]
        for origin in origins:
            if origin[0] == "param":
                summary.param_sinks.setdefault(origin[1], set()).add((path, line, desc))

    # -- expression evaluation -----------------------------------------------------

    def _eval(self, expr: ast.expr, env: dict[str, set[Origin]], info) -> set[Origin]:
        if isinstance(expr, ast.Name):
            return set(env.get(expr.id, ()))
        if isinstance(expr, ast.Constant):
            return set()
        if isinstance(expr, ast.Call):
            return self._eval_call(expr, env, info)
        if isinstance(expr, ast.Lambda):
            return set()
        if isinstance(expr, (ast.Yield, ast.YieldFrom, ast.Await)):
            return self._eval(expr.value, env, info) if expr.value is not None else set()
        origins: set[Origin] = set()
        for child in ast.iter_child_nodes(expr):
            if isinstance(child, ast.expr):
                origins |= self._eval(child, env, info)
            elif isinstance(child, ast.comprehension):
                origins |= self._eval(child.iter, env, info)
        return origins

    def _eval_call(self, call: ast.Call, env: dict[str, set[Origin]], info) -> set[Origin]:
        label = self.classify_source(call, info)
        if label is not None:
            self.occurrences[(info.path, call.lineno)] = label
            return {("src", info.path, call.lineno, label)}

        arg_origins = [self._eval(arg, env, info) for arg in call.args]
        kw_origins = {
            kw.arg: self._eval(kw.value, env, info)
            for kw in call.keywords
            if kw.arg is not None
        }
        star_origins: set[Origin] = set()
        for kw in call.keywords:
            if kw.arg is None:
                star_origins |= self._eval(kw.value, env, info)

        receiver_origins: set[Origin] = set()
        if isinstance(call.func, ast.Attribute):
            receiver_origins = self._eval(call.func.value, env, info)

        if self.classify_call_sink is not None:
            desc = self.classify_call_sink(call)
            if desc is not None:
                combined: set[Origin] = set()
                for origins in arg_origins:
                    combined |= origins
                for origins in kw_origins.values():
                    combined |= origins
                self._record_sink(combined | star_origins, info.path, call.lineno, desc, info)

        site = _site_for(call)
        targets = self.graph.resolve(info, site) if site is not None else []
        if not targets:
            # External/builtin call: conservatively, tainted inputs taint
            # the result (min(), float(), method calls on tainted values).
            result: set[Origin] = set(receiver_origins)
            for origins in arg_origins:
                result |= origins
            for origins in kw_origins.values():
                result |= origins
            return result | star_origins

        result = set()
        for target in targets:
            callee = self.graph.functions[target]
            callee_summary = self.summaries[target]
            binding = self._bind_args(
                site, callee, arg_origins, kw_origins, receiver_origins
            )
            result |= callee_summary.returns_srcs
            for index in callee_summary.param_returns:
                result |= binding.get(index, set())
            # Snapshot: when caller == callee (self-recursion) recording a
            # sink mutates the dict being iterated.
            for index, sink_locs in list(callee_summary.param_sinks.items()):
                passed = binding.get(index, set())
                if not passed:
                    continue
                for path, line, desc in list(sink_locs):
                    self._record_sink(passed, path, line, desc, info)
        return result

    @staticmethod
    def _bind_args(
        site: CallSite,
        callee: FunctionInfo,
        arg_origins: list[set[Origin]],
        kw_origins: dict[str, set[Origin]],
        receiver_origins: set[Origin],
    ) -> dict[int, set[Origin]]:
        """Map call-site argument origins onto callee parameter indexes."""
        params = _param_names(callee.node)
        binding: dict[int, set[Origin]] = {}
        offset = 0
        if callee.cls is not None and site.kind in ("self-attr", "attr"):
            offset = 1
            if receiver_origins:
                binding[0] = set(receiver_origins)
        for position, origins in enumerate(arg_origins):
            index = position + offset
            if index < len(params) and origins:
                binding.setdefault(index, set()).update(origins)
        for name, origins in kw_origins.items():
            if origins and name in params:
                binding.setdefault(params.index(name), set()).update(origins)
        return binding


def _site_for(call: ast.Call) -> CallSite | None:
    func = call.func
    if isinstance(func, ast.Name):
        return CallSite("name", func.id, None, call.lineno, call)
    if isinstance(func, ast.Attribute):
        value = func.value
        if isinstance(value, ast.Name) and value.id in ("self", "cls"):
            return CallSite("self-attr", func.attr, value.id, call.lineno, call)
        receiver = value.id if isinstance(value, ast.Name) else (
            value.attr if isinstance(value, ast.Attribute) else None
        )
        return CallSite("attr", func.attr, receiver, call.lineno, call)
    return None
