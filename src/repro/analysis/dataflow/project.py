"""The whole-project view shared by flow-aware rules.

:class:`AnalysisProject` owns the expensive artifacts — module facts,
the call graph, direct effects, propagated effect summaries — and builds
each lazily on first use, so a ``--select`` run of purely syntactic rules
never pays for the call graph.

Direct effects are cached per module, keyed by a content hash: a re-run
over an unchanged module loads its effect facts from the cache instead
of re-walking its AST.  Only the *local* facts are cached; summary
propagation is recomputed every run because it depends on every other
module in the project.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from typing import Iterable

from repro.analysis.dataflow.callgraph import (
    CallGraph,
    collect_module_facts,
)
from repro.analysis.dataflow.effects import (
    Effect,
    direct_effects,
    propagate_summaries,
)

#: Override the effect-fact cache location (CI points this at a workspace
#: path it persists between steps); empty string disables the cache.
CACHE_ENV = "REPRO_ANALYSIS_CACHE"

_CACHE_VERSION = 1


def _cache_path() -> str | None:
    override = os.environ.get(CACHE_ENV)
    if override is not None:
        return override or None
    return os.path.join(tempfile.gettempdir(), "repro-analysis-effects.json")


def _load_cache(path: str | None) -> dict:
    if path is None:
        return {}
    try:
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    except (OSError, ValueError):
        return {}
    if not isinstance(data, dict) or data.get("version") != _CACHE_VERSION:
        return {}
    modules = data.get("modules")
    return modules if isinstance(modules, dict) else {}


def _store_cache(path: str | None, modules: dict) -> None:
    if path is None:
        return
    try:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump({"version": _CACHE_VERSION, "modules": modules}, handle)
    except OSError:
        pass  # the cache is an optimization; never fail the lint run for it


class AnalysisProject:
    """Lazily-built project-wide analysis state over parsed modules.

    ``modules`` are :class:`~repro.analysis.linter.ModuleSource` objects
    (anything with ``posix``/``text``/``tree`` works, which keeps this
    package import-independent from the lint framework).
    """

    def __init__(self, modules: Iterable) -> None:
        self.modules = [m for m in modules if getattr(m, "tree", None) is not None]
        self.by_path = {module.posix: module for module in self.modules}
        self._graph: CallGraph | None = None
        self._direct: dict[str, list[Effect]] | None = None
        self._summaries: dict[str, frozenset[Effect]] | None = None

    def module_for(self, posix_path: str):
        return self.by_path.get(posix_path)

    @property
    def graph(self) -> CallGraph:
        if self._graph is None:
            facts = [
                collect_module_facts(module.tree, module.posix)
                for module in self.modules
            ]
            self._graph = CallGraph(facts)
        return self._graph

    @property
    def direct_effects(self) -> dict[str, list[Effect]]:
        """Direct (non-transitive) effects per function qualname."""
        if self._direct is None:
            self._direct = self._collect_direct_effects()
        return self._direct

    @property
    def effect_summaries(self) -> dict[str, frozenset[Effect]]:
        """Transitive effect summaries per function qualname."""
        if self._summaries is None:
            self._summaries = propagate_summaries(self.graph, self.direct_effects)
        return self._summaries

    # -- direct-effect cache -------------------------------------------------------

    def _collect_direct_effects(self) -> dict[str, list[Effect]]:
        cache_path = _cache_path()
        cache = _load_cache(cache_path)
        graph = self.graph
        by_module: dict[str, list[str]] = {}
        for qualname, info in graph.functions.items():
            by_module.setdefault(info.path, []).append(qualname)

        direct: dict[str, list[Effect]] = {}
        dirty = False
        for module in self.modules:
            digest = hashlib.sha256(module.text.encode("utf-8")).hexdigest()
            entry = cache.get(module.posix)
            qualnames = by_module.get(module.posix, [])
            if (
                isinstance(entry, dict)
                and entry.get("hash") == digest
                and isinstance(entry.get("effects"), dict)
                and set(entry["effects"]) == set(qualnames)
            ):
                try:
                    for qualname in qualnames:
                        direct[qualname] = [
                            Effect(kind, detail, module.posix, int(line))
                            for kind, detail, line in entry["effects"][qualname]
                        ]
                    continue
                except (TypeError, ValueError):
                    pass  # malformed entry: fall through and recompute
            fresh: dict[str, list[Effect]] = {}
            for qualname in qualnames:
                info = graph.functions[qualname]
                fresh[qualname] = direct_effects(info.node, module.posix)
            direct.update(fresh)
            cache[module.posix] = {
                "hash": digest,
                "effects": {
                    qualname: [[e.kind, e.detail, e.line] for e in effects]
                    for qualname, effects in fresh.items()
                },
            }
            dirty = True
        if dirty:
            _store_cache(cache_path, cache)
        return direct
