"""Statement-level control-flow graphs for one function body.

The flow-aware rules (``lease-lifecycle`` in particular) need to reason
about *paths*: does every path out of a function — including the path
taken when a call raises mid-way — pass through a matching release?  The
CFG built here is deliberately small and conservative:

- one node per simple statement (compound statements contribute a *header*
  node plus nodes for their bodies);
- ``normal`` edges for sequential flow, branch arms, and loop back-edges;
- ``except`` edges from every statement that can raise (any statement
  containing a call, plus explicit ``raise``/``assert``) to the innermost
  enclosing handler — or, with no handler, to the synthetic
  :attr:`CFG.raise_exit` node;
- ``finally`` bodies are wired so that both the normal continuation and
  the exceptional exits pass through them, matching the guarantee the
  runtime provides;
- ``with`` blocks get a synthetic *exit* node on every way out of the
  body, modelling the guaranteed ``__exit__`` call.

The graph over-approximates feasible paths (a linter must never miss a
path, and may report a spurious one that a pragma can silence).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

#: Calls assumed not to raise for path-sensitivity purposes.  Without this
#: list every ``dict.get`` or ``list.append`` would spawn an exceptional
#: edge and drown the lease rule in infeasible leak paths.  The names are
#: matched against the called attribute (or plain name) only.
NONRAISING_CALLS = frozenset(
    {
        "append",
        "extend",
        "add",
        "discard",
        "clear",
        "get",
        "pop",
        "popitem",
        "setdefault",
        "items",
        "keys",
        "values",
        "update",
        "len",
        "isinstance",
        "issubclass",
        "hasattr",
        "getattr",
        "id",
        "repr",
        "str",
        "format",
        "min",
        "max",
        "abs",
        "sum",
        "bool",
        "float",
        "int",
        "range",
        "enumerate",
        "zip",
        "list",
        "tuple",
        "dict",
        "set",
        "frozenset",
        "sorted",
        "reversed",
        "join",
        "startswith",
        "endswith",
    }
)

ENTRY = "entry"
EXIT = "exit"
RAISE_EXIT = "raise-exit"
STMT = "stmt"
WITH_EXIT = "with-exit"

NORMAL = "normal"
EXCEPT = "except"
FINALLY = "finally"


@dataclass
class Node:
    """One CFG node; ``stmt`` is None for the synthetic entry/exit nodes."""

    index: int
    kind: str
    stmt: ast.stmt | None = None

    @property
    def line(self) -> int:
        return self.stmt.lineno if self.stmt is not None else 0


@dataclass
class CFG:
    """Control-flow graph of one function body."""

    name: str
    nodes: list[Node] = field(default_factory=list)
    succ: dict[int, list[tuple[int, str]]] = field(default_factory=dict)

    entry: int = 0
    exit: int = 1
    raise_exit: int = 2

    def add_node(self, kind: str, stmt: ast.stmt | None = None) -> int:
        node = Node(len(self.nodes), kind, stmt)
        self.nodes.append(node)
        self.succ[node.index] = []
        return node.index

    def add_edge(self, src: int, dst: int, kind: str = NORMAL) -> None:
        edges = self.succ[src]
        if (dst, kind) not in edges:
            edges.append((dst, kind))

    def successors(self, index: int) -> list[tuple[int, str]]:
        return self.succ[index]

    def statement_nodes(self) -> list[Node]:
        return [node for node in self.nodes if node.kind == STMT]


def _call_may_raise(call: ast.Call) -> bool:
    func = call.func
    if isinstance(func, ast.Attribute):
        return func.attr not in NONRAISING_CALLS
    if isinstance(func, ast.Name):
        return func.id not in NONRAISING_CALLS
    return True


def may_raise(stmt: ast.stmt) -> bool:
    """Conservatively: does executing ``stmt``'s own code possibly raise?

    Only the statement's *header* expressions are inspected for compound
    statements — their bodies get nodes of their own.
    """
    if isinstance(stmt, (ast.Raise, ast.Assert)):
        return True
    for expr in header_exprs(stmt):
        for sub in ast.walk(expr):
            if isinstance(sub, ast.Call) and _call_may_raise(sub):
                return True
    return False


def header_exprs(stmt: ast.stmt) -> list[ast.expr]:
    """The expressions evaluated by the statement itself (not nested bodies)."""
    if isinstance(stmt, (ast.If, ast.While)):
        return [stmt.test]
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        return [stmt.iter]
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        return [item.context_expr for item in stmt.items]
    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
        return []
    out: list[ast.expr] = []
    for child in ast.iter_child_nodes(stmt):
        if isinstance(child, ast.expr):
            out.append(child)
    return out


class _Frame:
    """One enclosing try/with context during construction."""

    __slots__ = ("handler_entries", "finally_node", "kind")

    def __init__(self, handler_entries, finally_node, kind):
        self.handler_entries = handler_entries  # list[int] — first node of each handler
        self.finally_node = finally_node  # synthetic node id or None
        self.kind = kind  # "try" | "with"


class _Builder:
    def __init__(self, fn: ast.FunctionDef | ast.AsyncFunctionDef, name: str):
        self.cfg = CFG(name)
        self.cfg.entry = self.cfg.add_node(ENTRY)
        self.cfg.exit = self.cfg.add_node(EXIT)
        self.cfg.raise_exit = self.cfg.add_node(RAISE_EXIT)
        self.frames: list[_Frame] = []
        self.loop_stack: list[tuple[list[int], list[int]]] = []  # (break-out, continue-back)
        self.fn = fn

    # -- exceptional targets -----------------------------------------------------

    def _exceptional_targets(self, depth: int | None = None) -> list[tuple[int, str]]:
        """Where control can go when a statement raises, for the innermost frame.

        With handlers: each handler's entry.  A ``finally`` also receives
        the exception (and re-raises past it — modelled when the finally
        body is wired).  With no frame at all: the raise-exit node.
        """
        frames = self.frames if depth is None else self.frames[:depth]
        for frame in reversed(frames):
            targets: list[tuple[int, str]] = []
            for handler in frame.handler_entries:
                targets.append((handler, EXCEPT))
            if frame.finally_node is not None:
                targets.append((frame.finally_node, EXCEPT))
            if targets:
                return targets
        return [(self.cfg.raise_exit, EXCEPT)]

    def _wire_raise(self, node: int) -> None:
        for target, kind in self._exceptional_targets():
            self.cfg.add_edge(node, target, kind)

    # -- construction ------------------------------------------------------------

    def build(self) -> CFG:
        preds = self.block(self.fn.body, [(self.cfg.entry, NORMAL)])
        for node, kind in preds:
            self.cfg.add_edge(node, self.cfg.exit, kind)
        return self.cfg

    def block(
        self, stmts: list[ast.stmt], preds: list[tuple[int, str]]
    ) -> list[tuple[int, str]]:
        """Wire ``stmts`` sequentially; returns the open ends."""
        for stmt in stmts:
            preds = self.statement(stmt, preds)
            if not preds:
                break  # unreachable code after return/raise/break
        return preds

    def _link(self, preds: list[tuple[int, str]], node: int) -> None:
        for pred, kind in preds:
            self.cfg.add_edge(pred, node, kind)

    def statement(
        self, stmt: ast.stmt, preds: list[tuple[int, str]]
    ) -> list[tuple[int, str]]:
        cfg = self.cfg
        if isinstance(stmt, ast.If):
            node = cfg.add_node(STMT, stmt)
            self._link(preds, node)
            if may_raise(stmt):
                self._wire_raise(node)
            out = self.block(stmt.body, [(node, NORMAL)])
            if stmt.orelse:
                out += self.block(stmt.orelse, [(node, NORMAL)])
            else:
                out.append((node, NORMAL))
            return out

        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            node = cfg.add_node(STMT, stmt)
            self._link(preds, node)
            if may_raise(stmt):
                self._wire_raise(node)
            breaks: list[int] = []
            continues: list[int] = []
            self.loop_stack.append((breaks, continues))
            body_out = self.block(stmt.body, [(node, NORMAL)])
            self.loop_stack.pop()
            for pred, kind in body_out:
                cfg.add_edge(pred, node, kind)  # back-edge
            for cont in continues:
                cfg.add_edge(cont, node, NORMAL)
            out = [(node, NORMAL)]  # loop test false / iterator exhausted
            if stmt.orelse:
                out = self.block(stmt.orelse, out)
            for brk in breaks:
                out.append((brk, NORMAL))
            return out

        if isinstance(stmt, ast.Try):
            return self._try(stmt, preds)

        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self._with(stmt, preds)

        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            # A nested def/class is just a binding at this level.
            node = cfg.add_node(STMT, stmt)
            self._link(preds, node)
            return [(node, NORMAL)]

        # Simple statement.
        node = cfg.add_node(STMT, stmt)
        self._link(preds, node)
        if isinstance(stmt, ast.Return):
            if may_raise(stmt):
                self._wire_raise(node)
            self._wire_through_finally(node, cfg.exit, NORMAL)
            return []
        if isinstance(stmt, ast.Raise):
            self._wire_raise(node)
            return []
        if isinstance(stmt, ast.Break):
            if self.loop_stack:
                self.loop_stack[-1][0].append(node)
                return []
            return [(node, NORMAL)]
        if isinstance(stmt, ast.Continue):
            if self.loop_stack:
                self.loop_stack[-1][1].append(node)
                return []
            return [(node, NORMAL)]
        if may_raise(stmt):
            self._wire_raise(node)
        return [(node, NORMAL)]

    def _wire_through_finally(self, node: int, final_target: int, kind: str) -> None:
        """Route ``return`` through any enclosing finally bodies."""
        for frame in reversed(self.frames):
            if frame.finally_node is not None:
                self.cfg.add_edge(node, frame.finally_node, FINALLY)
                return
        self.cfg.add_edge(node, final_target, kind)

    def _try(self, stmt: ast.Try, preds: list[tuple[int, str]]) -> list[tuple[int, str]]:
        cfg = self.cfg
        # Build handler entry placeholders first so body statements can
        # target them.  Each handler's first real node links from a
        # synthetic header node carrying the handler's line.
        handler_entries: list[int] = []
        for handler in stmt.handlers:
            entry = cfg.add_node(STMT, handler)
            handler_entries.append(entry)
        finally_node = cfg.add_node(STMT, stmt) if stmt.finalbody else None

        frame = _Frame(handler_entries, finally_node, "try")
        self.frames.append(frame)
        body_out = self.block(stmt.body, preds)
        if stmt.orelse:
            body_out = self.block(stmt.orelse, body_out)
        self.frames.pop()

        out: list[tuple[int, str]] = []
        # Handlers run outside the protection of this try (an exception
        # raised inside a handler propagates outward), but inside the
        # finally if present.
        if finally_node is not None:
            self.frames.append(_Frame([], finally_node, "try"))
        for handler, entry in zip(stmt.handlers, handler_entries):
            handler_out = self.block(handler.body, [(entry, NORMAL)])
            out += handler_out
        if finally_node is not None:
            self.frames.pop()

        if finally_node is not None:
            # Everything funnels through the finally body: normal
            # completion, handler completion, and exceptional exits (the
            # EXCEPT edges added while the frame was active).
            for pred, kind in body_out + out:
                cfg.add_edge(pred, finally_node, kind)
            final_out = self.block(stmt.finalbody, [(finally_node, NORMAL)])
            result: list[tuple[int, str]] = []
            for pred, kind in final_out:
                # The finally may complete normally (fall through) or
                # re-raise a pending exception / propagate a pending
                # return — both exits are modelled.
                result.append((pred, NORMAL))
                for target, tkind in self._exceptional_targets():
                    cfg.add_edge(pred, target, tkind)
                self._propagate_return(pred)
            return result
        return body_out + out

    def _propagate_return(self, node: int) -> None:
        """A finally tail may be completing a ``return`` — wire it to exit."""
        for frame in reversed(self.frames):
            if frame.finally_node is not None:
                self.cfg.add_edge(node, frame.finally_node, FINALLY)
                return
        self.cfg.add_edge(node, self.cfg.exit, NORMAL)

    def _with(
        self, stmt: ast.With | ast.AsyncWith, preds: list[tuple[int, str]]
    ) -> list[tuple[int, str]]:
        cfg = self.cfg
        header = cfg.add_node(STMT, stmt)
        self._link(preds, header)
        if may_raise(stmt):
            self._wire_raise(header)
        # __exit__ runs on every way out of the body.
        exit_node = cfg.add_node(WITH_EXIT, stmt)
        self.frames.append(_Frame([], exit_node, "with"))
        body_out = self.block(stmt.body, [(header, NORMAL)])
        self.frames.pop()
        for pred, kind in body_out:
            cfg.add_edge(pred, exit_node, kind)
        # After __exit__: normal continuation, or re-raise of a pending
        # exception / completion of a pending return.
        for target, tkind in self._exceptional_targets():
            cfg.add_edge(exit_node, target, tkind)
        self._propagate_return(exit_node)
        return [(exit_node, NORMAL)]


def build_cfg(fn: ast.FunctionDef | ast.AsyncFunctionDef, name: str | None = None) -> CFG:
    """Build the control-flow graph of one function definition."""
    return _Builder(fn, name or fn.name).build()
