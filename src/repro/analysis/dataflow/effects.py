"""Side-effect extraction and bottom-up effect summaries.

Each function gets a set of *direct* effects — syntactic evidence that
executing it mutates engine state the deterministic scheduler cares
about — and a *summary* that unions the direct effects of everything
reachable from it over the call graph.  The ``step-effect`` rule then
checks that probe functions (``peek_arrival`` and everything feeding a
``StepEvent("wait", …)``) have empty summaries.

Direct effects are cheap, purely local facts, which makes them the unit
of caching: :mod:`repro.analysis.dataflow.project` persists them
per-module keyed by content hash, so re-runs only re-extract effects for
modules whose text changed.  Summary propagation is always recomputed —
it depends on the whole call graph, and a stale cross-module summary is
exactly the kind of unsoundness a checker must not have.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from repro.analysis.dataflow.callgraph import CallGraph

#: Virtual-clock mutators: unambiguous regardless of receiver spelling.
CLOCK_MUTATORS = frozenset(
    {
        "advance_to",
        "consume_cpu",
        "consume_io",
        "consume_cpu_overlapped",
        "consume_io_overlapped",
    }
)

#: Clock mutators only when called on something that looks like a clock
#: (``charge``/``reset`` are common names on unrelated objects).
CLOCK_MUTATORS_ON_CLOCK = frozenset({"charge", "reset"})

#: Budget/lease mutators: unambiguous method names.
BUDGET_MUTATORS = frozenset(
    {
        "try_reserve",
        "force_reserve",
        "revoke_to",
        "release_lease",
        "resize_lease",
        "note_reserve",
        "note_release",
        "_note_reserve",
        "_note_release",
    }
)

#: Budget mutators only on budget-ish receivers (``release`` alone is the
#: name of half the cleanup methods in any codebase).
BUDGET_MUTATORS_ON_BUDGET = frozenset({"reserve", "release", "grant", "lease", "revoke"})

_BUDGET_RECEIVERS = ("budget", "pool", "broker")
_CACHE_RECEIVERS = ("cache", "feed")
_SOURCE_RECEIVERS = ("source", "wrapper", "connection")
_CLOCK_RECEIVERS = ("clock",)


@dataclass(frozen=True)
class Effect:
    """One direct side effect: ``kind`` is clock/budget/cache/source."""

    kind: str
    detail: str
    path: str
    line: int

    def render(self) -> str:
        return f"{self.kind} effect `{self.detail}` at {self.path}:{self.line}"


def _receiver_mentions(receiver: str | None, fragments: tuple[str, ...]) -> bool:
    if receiver is None:
        return False
    lowered = receiver.lower()
    return any(fragment in lowered for fragment in fragments)


def classify_effect_call(name: str, receiver: str | None) -> tuple[str, str] | None:
    """(kind, detail) when an attribute call ``receiver.name(...)`` is an effect."""
    if name in CLOCK_MUTATORS:
        return ("clock", name)
    if name in CLOCK_MUTATORS_ON_CLOCK and _receiver_mentions(receiver, _CLOCK_RECEIVERS):
        return ("clock", name)
    if name in BUDGET_MUTATORS:
        return ("budget", name)
    if name in BUDGET_MUTATORS_ON_BUDGET and _receiver_mentions(
        receiver, _BUDGET_RECEIVERS
    ):
        return ("budget", name)
    if name == "fill" and _receiver_mentions(receiver, _CACHE_RECEIVERS):
        return ("cache", name)
    if name == "open" and _receiver_mentions(receiver, _SOURCE_RECEIVERS):
        return ("source", name)
    return None


def direct_effects(fn: ast.FunctionDef | ast.AsyncFunctionDef, path: str) -> list[Effect]:
    """Direct effects of one function body (nested defs excluded)."""
    nested: set[int] = set()
    for node in ast.walk(fn):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) and node is not fn:
            for sub in ast.walk(node):
                nested.add(id(sub))
    effects: list[Effect] = []
    seen: set[tuple[str, str, int]] = set()
    for node in ast.walk(fn):
        if id(node) in nested or not isinstance(node, ast.Call):
            continue
        func = node.func
        if not isinstance(func, ast.Attribute):
            continue
        value = func.value
        if isinstance(value, ast.Attribute):
            receiver = value.attr
        elif isinstance(value, ast.Name):
            receiver = value.id
        else:
            receiver = None
        classified = classify_effect_call(func.attr, receiver)
        if classified is None:
            continue
        kind, detail = classified
        key = (kind, detail, node.lineno)
        if key not in seen:
            seen.add(key)
            effects.append(Effect(kind, detail, path, node.lineno))
    return effects


def propagate_summaries(
    graph: CallGraph, direct: dict[str, list[Effect]]
) -> dict[str, frozenset[Effect]]:
    """Bottom-up transitive effect summaries over the call graph.

    Iterative fixpoint (the graph has cycles through recursion and
    name-based over-approximation); monotone, so it terminates.
    """
    summaries: dict[str, set[Effect]] = {
        name: set(direct.get(name, ())) for name in graph.functions
    }
    changed = True
    while changed:
        changed = False
        for name in graph.functions:
            current = summaries[name]
            before = len(current)
            for callee, _site in graph.callees(name):
                current |= summaries.get(callee, set())
            if len(current) != before:
                changed = True
    return {name: frozenset(effects) for name, effects in summaries.items()}
