"""Shared dataflow core for the flow-aware lint rules.

- :mod:`repro.analysis.dataflow.cfg` — per-function control-flow graphs
  with exception, ``finally``, and ``with`` edges;
- :mod:`repro.analysis.dataflow.callgraph` — project-wide function index
  and name-resolved call graph over the import structure;
- :mod:`repro.analysis.dataflow.effects` — direct side-effect extraction
  and bottom-up transitive summaries;
- :mod:`repro.analysis.dataflow.taint` — forward taint propagation with
  interprocedural summaries;
- :mod:`repro.analysis.dataflow.project` — the lazily-built, cached
  whole-project view rules consume.
"""

from repro.analysis.dataflow.callgraph import (
    CallGraph,
    CallSite,
    FunctionInfo,
    collect_call_sites,
    collect_module_facts,
    module_name_for,
)
from repro.analysis.dataflow.cfg import CFG, Node, build_cfg
from repro.analysis.dataflow.effects import (
    Effect,
    classify_effect_call,
    direct_effects,
    propagate_summaries,
)
from repro.analysis.dataflow.project import AnalysisProject
from repro.analysis.dataflow.taint import TaintAnalysis, TaintResult

__all__ = [
    "AnalysisProject",
    "CFG",
    "CallGraph",
    "CallSite",
    "Effect",
    "FunctionInfo",
    "Node",
    "TaintAnalysis",
    "TaintResult",
    "build_cfg",
    "classify_effect_call",
    "collect_call_sites",
    "collect_module_facts",
    "direct_effects",
    "module_name_for",
    "propagate_summaries",
]
