"""The AST lint framework: sources, pragmas, rules, and the lint driver.

Each rule is a named invariant check over one parsed module
(:class:`ModuleSource`).  Rules yield ``(line, message)`` pairs; the driver
turns them into :class:`Finding` records unless a pragma on the offending
line (or the line directly above it) allows the rule:

.. code-block:: python

    budget.reserve(nbytes)  # repro: allow[memory-pairing] released by the pool owner

A module can also declare a *role* that changes how rules classify it —
``# repro: module-role[hot-path]`` marks a file as hot-path code even though
its path is not one of the known hot-path modules (used by the rule fixtures,
and available to future modules that join an invariant's scope).
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Sequence

#: ``# repro: allow[rule-id, ...]`` — suppress findings on this or the next line.
PRAGMA_RE = re.compile(r"#\s*repro:\s*allow\[([A-Za-z0-9_,\-\* ]+)\]")

#: ``# repro: module-role[role, ...]`` — declare the module's invariant scope.
ROLE_RE = re.compile(r"#\s*repro:\s*module-role\[([A-Za-z0-9_,\- ]+)\]")


@dataclass(frozen=True, order=True)
class Finding:
    """One reported violation: ``path:line rule-id message``."""

    path: str
    line: int
    rule_id: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line} {self.rule_id} {self.message}"


class ModuleSource:
    """One parsed module plus its pragma and role annotations."""

    def __init__(self, path: Path | str, text: str | None = None) -> None:
        self.path = Path(path)
        #: POSIX form used for suffix classification (hot-path, clock authority).
        self.posix = self.path.as_posix()
        if text is None:
            text = self.path.read_text(encoding="utf-8")
        self.text = text
        self.lines = text.splitlines()
        self.tree = ast.parse(text, filename=str(self.path))
        self._allow: dict[int, set[str]] = {}
        self.roles: set[str] = set()
        for lineno, line in enumerate(self.lines, start=1):
            match = PRAGMA_RE.search(line)
            if match:
                self._allow[lineno] = {
                    part.strip() for part in match.group(1).split(",") if part.strip()
                }
            match = ROLE_RE.search(line)
            if match:
                self.roles.update(
                    part.strip() for part in match.group(1).split(",") if part.strip()
                )

    def has_role(self, role: str) -> bool:
        return role in self.roles

    def matches(self, *suffixes: str) -> bool:
        """True when the module path ends with any of ``suffixes``."""
        return any(self.posix.endswith(suffix) for suffix in suffixes)

    def in_directory(self, *fragments: str) -> bool:
        """True when any path component equals one of ``fragments``."""
        return any(fragment in self.path.parts for fragment in fragments)

    def allowed(self, rule_id: str, line: int) -> bool:
        """Whether a pragma on ``line`` or the line above allows ``rule_id``."""
        for candidate in (line, line - 1):
            ids = self._allow.get(candidate)
            if ids is not None and (rule_id in ids or "*" in ids):
                return True
        return False


class Rule:
    """Base class for lint rules.

    Subclasses set :attr:`rule_id` (the name used in findings and pragmas)
    and :attr:`summary` (the invariant the rule guards, shown by
    ``--list-rules``), and implement :meth:`check` to yield
    ``(line, message)`` pairs for one module.
    """

    rule_id: str = ""
    summary: str = ""

    def check(self, module: ModuleSource) -> Iterator[tuple[int, str]]:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Rule {self.rule_id}>"


class ProjectRule(Rule):
    """Base class for flow-aware rules that need the whole project.

    Instead of :meth:`check` (which project rules leave empty), subclasses
    implement :meth:`check_project` against an
    :class:`~repro.analysis.dataflow.project.AnalysisProject` — the shared
    call graph / effect summary / taint view over *every* module in the
    run — and yield ``(module, line, message)`` triples.  Findings still
    flow through the same pragma machinery: an ``# repro: allow[rule-id]``
    on (or above) the reported line suppresses the finding.
    """

    def check(self, module: ModuleSource) -> Iterator[tuple[int, str]]:
        return iter(())

    def check_project(self, project) -> Iterator[tuple[ModuleSource, int, str]]:
        raise NotImplementedError


@dataclass
class LintReport:
    """Outcome of one lint run over a set of files."""

    findings: list[Finding] = field(default_factory=list)
    suppressed: int = 0
    files_checked: int = 0
    #: Files that could not be parsed, as (path, error message).
    parse_errors: list[tuple[str, str]] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.findings and not self.parse_errors


def iter_python_files(paths: Sequence[Path | str]) -> Iterator[Path]:
    """Yield the Python files under ``paths`` (files or directories), sorted."""
    for entry in paths:
        path = Path(entry)
        if path.is_dir():
            yield from sorted(
                p
                for p in path.rglob("*.py")
                if "__pycache__" not in p.parts and not p.name.startswith(".")
            )
        else:
            yield path


def lint_module(module: ModuleSource, rules: Iterable[Rule]) -> tuple[list[Finding], int]:
    """Run ``rules`` over one module; returns (findings, suppressed count)."""
    findings: list[Finding] = []
    suppressed = 0
    for rule in rules:
        for line, message in rule.check(module):
            if module.allowed(rule.rule_id, line):
                suppressed += 1
                continue
            findings.append(Finding(str(module.path), line, rule.rule_id, message))
    return findings, suppressed


def run_lint(
    paths: Sequence[Path | str],
    rules: Iterable[Rule] | None = None,
) -> LintReport:
    """Lint every Python file under ``paths`` with ``rules`` (default: all)."""
    if rules is None:
        from repro.analysis.rules import ALL_RULES

        rules = ALL_RULES
    rules = list(rules)
    local_rules = [rule for rule in rules if not isinstance(rule, ProjectRule)]
    project_rules = [rule for rule in rules if isinstance(rule, ProjectRule)]
    report = LintReport()
    modules: list[ModuleSource] = []
    for path in iter_python_files(paths):
        try:
            module = ModuleSource(path)
        except (SyntaxError, UnicodeDecodeError) as exc:
            report.parse_errors.append((str(path), str(exc)))
            continue
        report.files_checked += 1
        modules.append(module)
        findings, suppressed = lint_module(module, local_rules)
        report.findings.extend(findings)
        report.suppressed += suppressed
    if project_rules and modules:
        # Imported lazily so syntactic-only runs never load the dataflow core.
        from repro.analysis.dataflow.project import AnalysisProject

        project = AnalysisProject(modules)
        for rule in project_rules:
            for module, line, message in rule.check_project(project):
                if module.allowed(rule.rule_id, line):
                    report.suppressed += 1
                    continue
                report.findings.append(
                    Finding(str(module.path), line, rule.rule_id, message)
                )
    report.findings.sort()
    return report
