"""Static plan validation: check an operator tree before executing it.

Plan well-formedness is decidable before execution — a dependent join's
bindings either are or are not produced by its left input, a union's inputs
either are or are not schema-compatible — so the engine checks it *before*
instantiating runtime operators (``EngineConfig(validate_plans=True)``, the
default) instead of failing mid-stream with a partially executed plan.

Checked invariants, per node:

* **Schema compatibility** — union/collector/choose children must be
  compatible (same arity and attribute types); project attributes and join
  keys must resolve in their input schemas; a join output must not carry
  duplicate attribute names.
* **Binding availability** — a dependent join's bind keys (``left_keys``)
  must be produced by its left input, and its ``right_keys`` by the bound
  source's exported schema (the Logic-of-Information-Flows executability
  condition: a bind-and-fetch plan is executable iff every binding is
  available at the point it is consumed).
* **Encoding consistency** — under the engine's default column encoding a
  string attribute travels as dictionary codes; joining it against a
  non-string key of the other input would compare codes with plain values.
  A join key pair where exactly one side is dict-encodable is rejected
  unless the spec declares a translation (``params["key_translation"]``).
* **Memory floors** (plan level) — a bounded join allotment below the
  optimizer/broker floor (:data:`MIN_JOIN_ALLOTMENT_BYTES`) can never be
  granted and is rejected at admission rather than at the first overflow.

Schemas are resolved from the catalog (wrapper scans, dependent joins) and
the local store / earlier fragments' results (table scans).  A node whose
schema cannot be known statically (for example a table scan of a relation
that will only exist at runtime) simply stops schema propagation — checks
above it that need the schema are skipped, never guessed.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine.context import EXCHANGE_BACKENDS
from repro.errors import PlanValidationError, SchemaError
from repro.optimizer.memory_alloc import MIN_JOIN_ALLOTMENT_BYTES
from repro.plan.physical import OperatorSpec, OperatorType
from repro.storage.schema import Attribute, Schema

#: Attribute types that dictionary-encode under ``EngineConfig(encoded_columns=True)``.
DICT_ENCODED_TYPES = frozenset({"str"})


@dataclass(frozen=True, order=True)
class PlanCheckFinding:
    """One static plan violation, anchored at an operator."""

    operator_id: str
    code: str
    message: str

    def render(self) -> str:
        return f"{self.operator_id}: [{self.code}] {self.message}"


class PlanValidator:
    """Schema-propagating validator over one physical operator tree.

    Parameters
    ----------
    catalog:
        Resolves wrapper-scan and dependent-join source schemas.
    encoded:
        Whether the engine runs with encoded (dictionary) columns; gates the
        encoding-consistency check on join keys.
    local_store:
        Optional runtime store for resolving table-scan schemas (the builder
        passes the context's store, so fragments built after their inputs
        materialized validate against real schemas).
    known_relations:
        Statically known relation schemas by name — earlier fragments'
        results when validating a full plan.
    enforce_floor:
        Check bounded join allotments against the broker floor.  On for plan
        admission (allotments come from the optimizer/broker negotiation and
        must be grantable); off for hand-built trees, where tiny allotments
        are how tests and benchmarks force the overflow paths.
    """

    def __init__(
        self,
        catalog,
        *,
        encoded: bool = True,
        local_store=None,
        known_relations: dict[str, Schema] | None = None,
        enforce_floor: bool = False,
    ) -> None:
        self.catalog = catalog
        self.encoded = encoded
        self.local_store = local_store
        self.known_relations = dict(known_relations or {})
        self.enforce_floor = enforce_floor
        self.findings: list[PlanCheckFinding] = []
        self._schemas: dict[str, Schema | None] = {}

    # -- public API --------------------------------------------------------------------

    def validate_tree(self, spec: OperatorSpec) -> list[PlanCheckFinding]:
        """Check ``spec`` and all descendants; returns the findings."""
        self._visit(spec)
        return self.findings

    def schema_of(self, spec: OperatorSpec) -> Schema | None:
        """The computed output schema of a validated node (``None`` = unknown)."""
        return self._schemas.get(spec.operator_id)

    # -- traversal ---------------------------------------------------------------------

    def _visit(self, spec: OperatorSpec) -> Schema | None:
        child_schemas = [self._visit(child) for child in spec.children]
        schema = self._check_node(spec, child_schemas)
        self._schemas[spec.operator_id] = schema
        return schema

    def _report(self, spec: OperatorSpec, code: str, message: str) -> None:
        self.findings.append(PlanCheckFinding(spec.operator_id, code, message))

    # -- per-operator checks -----------------------------------------------------------

    def _check_node(
        self, spec: OperatorSpec, child_schemas: list[Schema | None]
    ) -> Schema | None:
        operator_type = spec.operator_type
        if operator_type == OperatorType.WRAPPER_SCAN:
            return self._source_schema(spec.params.get("source"))
        if operator_type == OperatorType.TABLE_SCAN:
            return self._relation_schema(spec.params.get("relation"))
        if operator_type == OperatorType.SELECT:
            # Predicates over absent attributes are *legal* (the runtime
            # compiles them as never-satisfiable, mirroring the tuple path),
            # so selection is schema-transparent here.
            return child_schemas[0] if child_schemas else None
        if operator_type == OperatorType.PROJECT:
            return self._check_project(spec, child_schemas[0])
        if operator_type in (
            OperatorType.UNION,
            OperatorType.COLLECTOR,
            OperatorType.CHOOSE,
        ):
            return self._check_union_like(spec, child_schemas)
        if operator_type == OperatorType.JOIN:
            return self._check_join(spec, child_schemas)
        if operator_type == OperatorType.DEPENDENT_JOIN:
            return self._check_dependent_join(spec, child_schemas)
        if operator_type == OperatorType.MATERIALIZE:
            return child_schemas[0] if child_schemas else None
        if operator_type == OperatorType.EXCHANGE:
            return self._check_exchange(spec, child_schemas)
        return None  # unknown operator kinds are the builder's problem

    def _check_project(
        self, spec: OperatorSpec, child_schema: Schema | None
    ) -> Schema | None:
        attributes = spec.params.get("attributes")
        if child_schema is None or not isinstance(attributes, (list, tuple)):
            return None
        missing = [
            name for name in attributes if self._resolve(child_schema, name) is None
        ]
        if missing:
            self._report(
                spec,
                "schema-mismatch",
                f"projected attribute(s) {missing} not produced by its input "
                f"(schema {list(child_schema.names)})",
            )
            return None
        return child_schema.project(list(attributes))

    def _check_union_like(
        self, spec: OperatorSpec, child_schemas: list[Schema | None]
    ) -> Schema | None:
        known = [s for s in child_schemas if s is not None]
        if not known:
            return None
        first = known[0]
        for position, schema in enumerate(child_schemas):
            if schema is None or schema is first:
                continue
            if not first.compatible_with(schema):
                self._report(
                    spec,
                    "schema-mismatch",
                    f"{spec.operator_type.value} input #{position} is not "
                    f"compatible with input #0: {list(schema.names)} vs "
                    f"{list(first.names)} (arity and attribute types must match)",
                )
        if len(known) != len(child_schemas):
            return None  # an unknown child could widen the schema at runtime
        return first

    def _check_exchange(
        self, spec: OperatorSpec, child_schemas: list[Schema | None]
    ) -> Schema | None:
        """An exchange must be able to route: its partition key must be
        produced by its input, and it needs at least one lane."""
        lanes = spec.params.get("lanes")
        if lanes is not None and (
            isinstance(lanes, bool) or not isinstance(lanes, int) or lanes < 1
        ):
            self._report(
                spec,
                "bad-lane-count",
                f"exchange lane count must be a positive integer, got {lanes!r}",
            )
        backend = spec.params.get("backend")
        if backend is not None and backend not in EXCHANGE_BACKENDS:
            known = ", ".join(EXCHANGE_BACKENDS)
            self._report(
                spec,
                "bad-lane-count",
                f"exchange backend must be one of {known}; got {backend!r}",
            )
        child_schema = child_schemas[0] if child_schemas else None
        keys = spec.params.get("partition_keys")
        if child_schema is not None and isinstance(keys, (list, tuple)):
            for key in keys:
                if self._resolve(child_schema, key) is None:
                    self._report(
                        spec,
                        "unbound-key",
                        f"partition key {key!r} is not produced by the exchange "
                        f"input (schema {list(child_schema.names)}); rows could "
                        f"not be routed by it",
                    )
        # Hash partition + arrival-ordered merge preserves the input schema.
        return child_schema

    def _check_join(
        self, spec: OperatorSpec, child_schemas: list[Schema | None]
    ) -> Schema | None:
        left_schema, right_schema = (child_schemas + [None, None])[:2]
        left_keys = spec.params.get("left_keys")
        right_keys = spec.params.get("right_keys")
        self._check_keys(
            spec, left_schema, left_keys, side="left", right_schema=right_schema,
            right_keys=right_keys,
        )
        if self.enforce_floor and spec.memory_limit_bytes is not None:
            if spec.memory_limit_bytes < MIN_JOIN_ALLOTMENT_BYTES:
                self._report(
                    spec,
                    "sub-floor-allotment",
                    f"join allotment of {spec.memory_limit_bytes} bytes is below "
                    f"the broker floor ({MIN_JOIN_ALLOTMENT_BYTES} bytes); the "
                    "broker never revokes below the floor, so this allotment "
                    "could never be granted",
                )
        return self._join_output(spec, left_schema, right_schema)

    def _check_dependent_join(
        self, spec: OperatorSpec, child_schemas: list[Schema | None]
    ) -> Schema | None:
        left_schema = child_schemas[0] if child_schemas else None
        right_schema = self._source_schema(spec.params.get("source"))
        left_keys = spec.params.get("left_keys")
        right_keys = spec.params.get("right_keys")
        self._check_keys(
            spec, left_schema, left_keys, side="bind", right_schema=right_schema,
            right_keys=right_keys,
        )
        return self._join_output(spec, left_schema, right_schema)

    # -- shared join helpers -----------------------------------------------------------

    def _check_keys(
        self,
        spec: OperatorSpec,
        left_schema: Schema | None,
        left_keys,
        *,
        side: str,
        right_schema: Schema | None,
        right_keys,
    ) -> None:
        if not isinstance(left_keys, (list, tuple)) or not isinstance(
            right_keys, (list, tuple)
        ):
            return  # missing params: the builder reports those precisely
        if len(left_keys) != len(right_keys):
            return  # arity mismatch raises in the operator constructors
        dependent = side == "bind"
        for left_key, right_key in zip(left_keys, right_keys):
            left_attr = self._resolve(left_schema, left_key)
            right_attr = self._resolve(right_schema, right_key)
            if left_schema is not None and left_attr is None:
                what = "bind key" if dependent else "join key"
                self._report(
                    spec,
                    "unbound-key",
                    f"{what} {left_key!r} is not produced by the left input "
                    f"(schema {list(left_schema.names)}); the binding would "
                    "never be available at execution time",
                )
            if right_schema is not None and right_attr is None:
                where = "the bound source" if dependent else "the right input"
                self._report(
                    spec,
                    "unbound-key",
                    f"join key {right_key!r} is not produced by {where} "
                    f"(schema {list(right_schema.names)})",
                )
            if left_attr is not None and right_attr is not None:
                self._check_key_encoding(spec, left_attr, right_attr)

    def _check_key_encoding(
        self, spec: OperatorSpec, left_attr: Attribute, right_attr: Attribute
    ) -> None:
        if not self.encoded:
            return
        left_dict = left_attr.type_name in DICT_ENCODED_TYPES
        right_dict = right_attr.type_name in DICT_ENCODED_TYPES
        if left_dict == right_dict:
            return
        if spec.params.get("key_translation"):
            return  # a declared translation decodes at the boundary
        encoded_side, plain_side = (
            (left_attr, right_attr) if left_dict else (right_attr, left_attr)
        )
        self._report(
            spec,
            "encoding-mismatch",
            f"join key {encoded_side.name!r} is dictionary-encoded "
            f"({encoded_side.type_name}) but {plain_side.name!r} is plain "
            f"{plain_side.type_name}; codes would be compared against raw "
            "values — declare params['key_translation'] or align the types",
        )

    def _join_output(
        self, spec: OperatorSpec, left: Schema | None, right: Schema | None
    ) -> Schema | None:
        if left is None or right is None:
            return None
        try:
            return left.join(right)
        except SchemaError:
            duplicates = sorted(set(left.names) & set(right.names))
            self._report(
                spec,
                "schema-mismatch",
                f"join output would carry duplicate attribute names "
                f"{duplicates}; qualify or rename one input",
            )
            return None

    # -- schema resolution -------------------------------------------------------------

    def _source_schema(self, source_name) -> Schema | None:
        if not isinstance(source_name, str) or source_name not in self.catalog:
            # Unknown sources stay the catalog's CatalogError at build time —
            # statically we just stop schema propagation.
            return None
        return self.catalog.source(source_name).exported_schema

    def _relation_schema(self, relation_name) -> Schema | None:
        if not isinstance(relation_name, str):
            return None
        if relation_name in self.known_relations:
            return self.known_relations[relation_name]
        if self.local_store is not None:
            try:
                return self.local_store.get(relation_name).schema
            except Exception:  # noqa: BLE001 - absent relation: schema unknown
                return None
        return None

    @staticmethod
    def _resolve(schema: Schema | None, name) -> Attribute | None:
        if schema is None or not isinstance(name, str):
            return None
        try:
            return schema.attribute(name)
        except SchemaError:
            return None


# -- module-level entry points ------------------------------------------------------------


def validate_tree(
    spec: OperatorSpec,
    catalog,
    *,
    encoded: bool = True,
    local_store=None,
    known_relations: dict[str, Schema] | None = None,
    enforce_floor: bool = False,
) -> list[PlanCheckFinding]:
    """Validate one operator tree; returns all findings (empty = clean)."""
    validator = PlanValidator(
        catalog,
        encoded=encoded,
        local_store=local_store,
        known_relations=known_relations,
        enforce_floor=enforce_floor,
    )
    return validator.validate_tree(spec)


def validate_plan(
    plan,
    catalog,
    *,
    encoded: bool = True,
    enforce_floor: bool = True,
) -> list[PlanCheckFinding]:
    """Validate every fragment of a :class:`QueryPlan` in execution order.

    Fragment result schemas propagate: a table scan of an earlier fragment's
    ``result_name`` resolves to that fragment's statically computed schema,
    so cross-fragment mismatches are caught at admission too.
    """
    findings: list[PlanCheckFinding] = []
    known: dict[str, Schema] = {}
    for fragment in plan.execution_order():
        validator = PlanValidator(
            catalog,
            encoded=encoded,
            known_relations=known,
            enforce_floor=enforce_floor,
        )
        findings.extend(validator.validate_tree(fragment.root))
        schema = validator.schema_of(fragment.root)
        if schema is not None:
            known[fragment.result_name] = schema
    return findings


def _raise_if_findings(findings: list[PlanCheckFinding], what: str) -> None:
    if findings:
        rendered = "; ".join(finding.render() for finding in findings)
        raise PlanValidationError(
            f"{what} failed static validation: {rendered}", findings=findings
        )


def check_tree(
    spec: OperatorSpec,
    catalog,
    *,
    encoded: bool = True,
    local_store=None,
    known_relations: dict[str, Schema] | None = None,
    enforce_floor: bool = False,
) -> None:
    """Validate a tree; raise :class:`PlanValidationError` on any finding."""
    findings = validate_tree(
        spec,
        catalog,
        encoded=encoded,
        local_store=local_store,
        known_relations=known_relations,
        enforce_floor=enforce_floor,
    )
    _raise_if_findings(findings, f"operator tree {spec.operator_id!r}")


def check_plan(plan, catalog, *, encoded: bool = True, enforce_floor: bool = True) -> None:
    """Validate a full plan; raise :class:`PlanValidationError` on any finding."""
    findings = validate_plan(plan, catalog, encoded=encoded, enforce_floor=enforce_floor)
    _raise_if_findings(findings, f"plan {plan.query_name!r}")
