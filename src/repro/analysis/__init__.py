"""Engine invariant analysis: AST lint rules and the static plan validator.

The engine's correctness rests on conventions that no type checker enforces:
all time flows through the virtual clocks, every memory reservation is paired
with a release so ``broker.used == sum(resident_bytes)`` holds, hot paths
never box :class:`~repro.storage.tuples.Row` objects, and a plan's joins only
consume bindings their inputs actually produce.  This package turns those
conventions into checked invariants:

* :mod:`repro.analysis.linter` — an AST lint framework that walks the source
  tree and reports violations as ``file:line rule-id message`` findings, with
  ``# repro: allow[rule-id]`` pragmas for the deliberate exceptions.  The
  project rules live in :mod:`repro.analysis.rules`.
* :mod:`repro.analysis.dataflow` — the shared flow-analysis core: per-function
  CFGs (with exception/finally/``with`` edges), a project-wide call graph
  resolved over the import structure, bottom-up effect summaries (cached
  per-module by content hash), and a forward taint engine.  The flow-aware
  rules (``clock-taint``, ``lease-lifecycle``, ``step-effect``) are built
  on it via the :class:`~repro.analysis.linter.ProjectRule` interface.
* :mod:`repro.analysis.plan_check` — a static validator for physical operator
  trees, run before execution (``EngineConfig(validate_plans=True)``, the
  default): schema compatibility at unions and joins, dependent-join bind
  keys actually produced by the left input, allotments not below the broker
  floor, and dictionary-encoding consistency across join keys.

Run the linter from the repo root with ``python -m repro.analysis src/repro``
(exit status 0 = clean); the same pass runs as a tier-1 test and a CI job.
"""

from repro.analysis.dataflow import AnalysisProject, build_cfg
from repro.analysis.linter import (
    Finding,
    LintReport,
    ModuleSource,
    ProjectRule,
    Rule,
    run_lint,
)
from repro.analysis.plan_check import (
    PlanCheckFinding,
    PlanValidator,
    check_plan,
    check_tree,
    validate_plan,
    validate_tree,
)
from repro.analysis.rules import ALL_RULES, rule_by_id

__all__ = [
    "ALL_RULES",
    "AnalysisProject",
    "Finding",
    "LintReport",
    "ModuleSource",
    "PlanCheckFinding",
    "PlanValidator",
    "ProjectRule",
    "Rule",
    "build_cfg",
    "check_plan",
    "check_tree",
    "rule_by_id",
    "run_lint",
    "validate_plan",
    "validate_tree",
]
