"""Builds runtime operators from physical plan specs."""

from __future__ import annotations

from repro.engine.context import ExecutionContext
from repro.engine.iterators import Operator
from repro.engine.operators import (
    ChooseNode,
    DependentJoin,
    DoublePipelinedJoin,
    DynamicCollector,
    HybridHashJoin,
    Materialize,
    NestedLoopsJoin,
    Project,
    Select,
    TableScan,
    Union,
    WrapperScan,
)
from repro.engine.operators.exchange import Exchange
from repro.errors import PlanError
from repro.optimizer.memory_alloc import split_allotment_across_lanes
from repro.parallel.spec import CollectorLaneSpec, JoinLaneSpec
from repro.plan.physical import JoinImplementation, OperatorSpec, OperatorType
from repro.storage.schema import merge_union_schema

#: Join implementations a lane can run: hash-based, so hash partitioning on
#: the join key sends every matching pair to the same lane.
_PARTITIONABLE_JOINS = (
    JoinImplementation.DOUBLE_PIPELINED.value,
    JoinImplementation.HYBRID_HASH.value,
)


def build_operator(
    spec: OperatorSpec, context: ExecutionContext, validate: bool | None = None
) -> Operator:
    """Instantiate the runtime operator tree described by ``spec``.

    When ``validate`` is true (default: ``context.config.validate_plans``),
    the tree is first checked statically — schema compatibility, key
    bindings, encoding consistency — and a violation raises
    :class:`~repro.errors.PlanValidationError` before any operator exists.

    Raises
    ------
    PlanError
        If the spec uses an unknown operator type, implementation, or is
        missing required parameters.
    """
    if validate is None:
        validate = context.config.validate_plans
    if validate:
        from repro.analysis.plan_check import check_tree

        check_tree(
            spec,
            context.catalog,
            encoded=context.config.encoded_columns,
            local_store=context.local_store,
        )
    operator_type = spec.operator_type

    # Exchange insertion happens before children are built: the partitioned
    # form builds each input subtree on its own worker clock, not on the
    # consumer's clock.
    if operator_type == OperatorType.EXCHANGE:
        lanes = spec.params.get("lanes", context.config.exchange_lanes)
        return _build_partitioned(
            spec.children[0],
            context,
            _checked_lane_count(spec, lanes),
            backend=_checked_backend(spec),
        )
    implicit_lanes = context.config.exchange_lanes
    if implicit_lanes > 1 and _is_partitionable(spec):
        return _build_partitioned(spec, context, implicit_lanes)

    children = [build_operator(child, context, validate=False) for child in spec.children]
    params = spec.params

    if operator_type == OperatorType.WRAPPER_SCAN:
        return WrapperScan(
            spec.operator_id,
            context,
            source_name=_required(spec, "source"),
            timeout_ms=_optional_float(params.get("timeout_ms")),
            estimated_cardinality=spec.estimated_cardinality,
        )
    if operator_type == OperatorType.TABLE_SCAN:
        return TableScan(
            spec.operator_id,
            context,
            relation_name=_required(spec, "relation"),
            estimated_cardinality=spec.estimated_cardinality,
        )
    if operator_type == OperatorType.SELECT:
        return Select(
            spec.operator_id,
            context,
            children[0],
            predicates=list(params.get("predicates", [])),
            estimated_cardinality=spec.estimated_cardinality,
        )
    if operator_type == OperatorType.PROJECT:
        return Project(
            spec.operator_id,
            context,
            children[0],
            attributes=list(_required(spec, "attributes")),
            estimated_cardinality=spec.estimated_cardinality,
        )
    if operator_type == OperatorType.UNION:
        return Union(
            spec.operator_id, context, children, estimated_cardinality=spec.estimated_cardinality
        )
    if operator_type == OperatorType.JOIN:
        return _build_join(spec, context, children)
    if operator_type == OperatorType.DEPENDENT_JOIN:
        return DependentJoin(
            spec.operator_id,
            context,
            children[0],
            source_name=_required(spec, "source"),
            left_keys=list(_required(spec, "left_keys")),
            right_keys=list(_required(spec, "right_keys")),
            estimated_cardinality=spec.estimated_cardinality,
            probe_cache=_as_bool(params.get("probe_cache", True)),
        )
    if operator_type == OperatorType.COLLECTOR:
        initially_active = params.get("initially_active")
        dedup_keys = params.get("dedup_keys")
        dedup_budget = params.get("dedup_budget_bytes")
        return DynamicCollector(
            spec.operator_id,
            context,
            children,
            initially_active=list(initially_active) if initially_active else None,
            fallback_on_failure=_as_bool(params.get("fallback_on_failure", True)),
            dedup_keys=list(dedup_keys) if dedup_keys else None,
            estimated_cardinality=spec.estimated_cardinality,
            dedup_budget_bytes=int(dedup_budget) if dedup_budget else None,
        )
    if operator_type == OperatorType.CHOOSE:
        return ChooseNode(
            spec.operator_id, context, children, estimated_cardinality=spec.estimated_cardinality
        )
    if operator_type == OperatorType.MATERIALIZE:
        return Materialize(
            spec.operator_id,
            context,
            children[0],
            result_name=_required(spec, "result_name"),
            estimated_cardinality=spec.estimated_cardinality,
        )
    raise PlanError(f"unsupported operator type {operator_type!r}")


def _build_join(spec: OperatorSpec, context: ExecutionContext, children: list[Operator]) -> Operator:
    left_keys = list(_required(spec, "left_keys"))
    right_keys = list(_required(spec, "right_keys"))
    implementation = spec.implementation or JoinImplementation.DOUBLE_PIPELINED.value
    common = dict(
        left_keys=left_keys,
        right_keys=right_keys,
        estimated_cardinality=spec.estimated_cardinality,
    )
    if implementation == JoinImplementation.DOUBLE_PIPELINED.value:
        return DoublePipelinedJoin(
            spec.operator_id,
            context,
            children[0],
            children[1],
            memory_limit_bytes=spec.memory_limit_bytes,
            overflow_method=spec.params.get("overflow_method", "left_flush"),
            **common,
        )
    if implementation == JoinImplementation.HYBRID_HASH.value:
        return HybridHashJoin(
            spec.operator_id,
            context,
            children[0],
            children[1],
            memory_limit_bytes=spec.memory_limit_bytes,
            **common,
        )
    if implementation == JoinImplementation.NESTED_LOOPS.value:
        return NestedLoopsJoin(
            spec.operator_id, context, children[0], children[1], **common
        )
    raise PlanError(f"unknown join implementation {implementation!r}")


def _checked_lane_count(spec: OperatorSpec, lanes) -> int:
    if isinstance(lanes, bool) or not isinstance(lanes, int):
        raise PlanError(f"exchange {spec.operator_id!r}: lane count must be an int, got {lanes!r}")
    if lanes < 1:
        raise PlanError(f"exchange {spec.operator_id!r}: lane count must be >= 1, got {lanes}")
    return lanes


def _checked_backend(spec: OperatorSpec) -> str | None:
    from repro.engine.context import EXCHANGE_BACKENDS

    backend = spec.params.get("backend")
    if backend is not None and backend not in EXCHANGE_BACKENDS:
        raise PlanError(
            f"exchange {spec.operator_id!r}: unknown backend {backend!r} "
            f"(known: {', '.join(EXCHANGE_BACKENDS)})"
        )
    return backend


def _is_partitionable(spec: OperatorSpec) -> bool:
    """Can ``EngineConfig(exchange_lanes=N)`` wrap this node in an exchange?

    Hash joins partition on their equi-join keys; the dynamic collector
    partitions on its dedup keys (each lane then deduplicates its own hash
    class, which together cover the whole stream).  Everything else — scans,
    nested loops, dependent joins — runs serial.
    """
    if spec.operator_type == OperatorType.JOIN:
        implementation = spec.implementation or JoinImplementation.DOUBLE_PIPELINED.value
        return implementation in _PARTITIONABLE_JOINS
    if spec.operator_type == OperatorType.COLLECTOR:
        return bool(spec.params.get("dedup_keys"))
    return False


def _build_partitioned(
    spec: OperatorSpec, context: ExecutionContext, lanes: int, backend: str | None = None
) -> Operator:
    """Wrap ``spec`` in an :class:`Exchange` running ``lanes`` copies of it.

    Each input subtree is built on its own worker clock (derived from the
    consumer's context) so producer scan/network time overlaps lane CPU; the
    lane subtrees themselves are built lazily by the factory passed to the
    exchange, one per lane on that lane's clock, with the operator's memory
    allotment split across the lanes as individual broker leases.
    """
    if lanes == 1 or not _is_partitionable(spec):
        # Nothing to parallelize: build the plain serial form.
        return build_operator(spec, context, validate=False)
    producers = [
        build_operator(child, context.derive_worker(f"{spec.operator_id}.in{index}"), validate=False)
        for index, child in enumerate(spec.children)
    ]
    estimated = spec.estimated_cardinality
    lane_estimated = max(1, estimated // lanes) if estimated else None

    if spec.operator_type == OperatorType.JOIN:
        left_keys = list(_required(spec, "left_keys"))
        right_keys = list(_required(spec, "right_keys"))
        # The lane subtree is described declaratively (a picklable spec, not
        # a closure) so the process exchange backend can rebuild it inside a
        # worker; inline, the spec doubles as the build_lane callable.
        lane_spec = JoinLaneSpec(
            operator_id=spec.operator_id,
            left_keys=left_keys,
            right_keys=right_keys,
            implementation=spec.implementation or JoinImplementation.DOUBLE_PIPELINED.value,
            overflow_method=spec.params.get("overflow_method", "left_flush"),
            allotments=split_allotment_across_lanes(spec.memory_limit_bytes, lanes),
            lane_estimated=lane_estimated,
        )
        return Exchange(
            spec.operator_id,
            context,
            producers,
            partition_keys=[left_keys, right_keys],
            lanes=lanes,
            build_lane=lane_spec,
            output_schema=producers[0].output_schema.join(producers[1].output_schema),
            estimated_cardinality=estimated,
            lane_spec=lane_spec,
            backend=backend,
        )

    # COLLECTOR with dedup_keys: partition every mirror by the dedup key so
    # duplicates of a row always land in the same lane's dedup table.
    dedup_keys = list(_required(spec, "dedup_keys"))
    initially_active = spec.params.get("initially_active")
    active_positions = None
    if initially_active:
        child_ids = [child.operator_id for child in spec.children]
        try:
            active_positions = [child_ids.index(child_id) for child_id in initially_active]
        except ValueError as exc:
            raise PlanError(
                f"collector {spec.operator_id!r}: initially_active names unknown child"
            ) from exc
    dedup_budget = spec.params.get("dedup_budget_bytes")
    lane_spec = CollectorLaneSpec(
        operator_id=spec.operator_id,
        dedup_keys=dedup_keys,
        active_positions=active_positions,
        fallback=_as_bool(spec.params.get("fallback_on_failure", True)),
        lane_budget=max(1, int(dedup_budget) // lanes) if dedup_budget else None,
        lane_estimated=lane_estimated,
    )
    schema = producers[0].output_schema
    for producer in producers[1:]:
        schema = merge_union_schema(schema, producer.output_schema)
    return Exchange(
        spec.operator_id,
        context,
        producers,
        partition_keys=[dedup_keys for _ in producers],
        lanes=lanes,
        build_lane=lane_spec,
        output_schema=schema,
        estimated_cardinality=estimated,
        lane_spec=lane_spec,
        backend=backend,
    )


def _required(spec: OperatorSpec, key: str):
    try:
        return spec.params[key]
    except KeyError:
        raise PlanError(
            f"operator {spec.operator_id!r} ({spec.operator_type.value}) is missing "
            f"required parameter {key!r}"
        ) from None


def _optional_float(value) -> float | None:
    if value in (None, ""):
        return None
    return float(value)


def _as_bool(value) -> bool:
    if isinstance(value, bool):
        return value
    return str(value).lower() in ("true", "1", "yes")
