"""Builds runtime operators from physical plan specs."""

from __future__ import annotations

from repro.engine.context import ExecutionContext
from repro.engine.iterators import Operator
from repro.engine.operators import (
    ChooseNode,
    DependentJoin,
    DoublePipelinedJoin,
    DynamicCollector,
    HybridHashJoin,
    Materialize,
    NestedLoopsJoin,
    Project,
    Select,
    TableScan,
    Union,
    WrapperScan,
)
from repro.errors import PlanError
from repro.plan.physical import JoinImplementation, OperatorSpec, OperatorType


def build_operator(
    spec: OperatorSpec, context: ExecutionContext, validate: bool | None = None
) -> Operator:
    """Instantiate the runtime operator tree described by ``spec``.

    When ``validate`` is true (default: ``context.config.validate_plans``),
    the tree is first checked statically — schema compatibility, key
    bindings, encoding consistency — and a violation raises
    :class:`~repro.errors.PlanValidationError` before any operator exists.

    Raises
    ------
    PlanError
        If the spec uses an unknown operator type, implementation, or is
        missing required parameters.
    """
    if validate is None:
        validate = context.config.validate_plans
    if validate:
        from repro.analysis.plan_check import check_tree

        check_tree(
            spec,
            context.catalog,
            encoded=context.config.encoded_columns,
            local_store=context.local_store,
        )
    children = [build_operator(child, context, validate=False) for child in spec.children]
    params = spec.params
    operator_type = spec.operator_type

    if operator_type == OperatorType.WRAPPER_SCAN:
        return WrapperScan(
            spec.operator_id,
            context,
            source_name=_required(spec, "source"),
            timeout_ms=_optional_float(params.get("timeout_ms")),
            estimated_cardinality=spec.estimated_cardinality,
        )
    if operator_type == OperatorType.TABLE_SCAN:
        return TableScan(
            spec.operator_id,
            context,
            relation_name=_required(spec, "relation"),
            estimated_cardinality=spec.estimated_cardinality,
        )
    if operator_type == OperatorType.SELECT:
        return Select(
            spec.operator_id,
            context,
            children[0],
            predicates=list(params.get("predicates", [])),
            estimated_cardinality=spec.estimated_cardinality,
        )
    if operator_type == OperatorType.PROJECT:
        return Project(
            spec.operator_id,
            context,
            children[0],
            attributes=list(_required(spec, "attributes")),
            estimated_cardinality=spec.estimated_cardinality,
        )
    if operator_type == OperatorType.UNION:
        return Union(
            spec.operator_id, context, children, estimated_cardinality=spec.estimated_cardinality
        )
    if operator_type == OperatorType.JOIN:
        return _build_join(spec, context, children)
    if operator_type == OperatorType.DEPENDENT_JOIN:
        return DependentJoin(
            spec.operator_id,
            context,
            children[0],
            source_name=_required(spec, "source"),
            left_keys=list(_required(spec, "left_keys")),
            right_keys=list(_required(spec, "right_keys")),
            estimated_cardinality=spec.estimated_cardinality,
            probe_cache=_as_bool(params.get("probe_cache", True)),
        )
    if operator_type == OperatorType.COLLECTOR:
        initially_active = params.get("initially_active")
        dedup_keys = params.get("dedup_keys")
        dedup_budget = params.get("dedup_budget_bytes")
        return DynamicCollector(
            spec.operator_id,
            context,
            children,
            initially_active=list(initially_active) if initially_active else None,
            fallback_on_failure=_as_bool(params.get("fallback_on_failure", True)),
            dedup_keys=list(dedup_keys) if dedup_keys else None,
            estimated_cardinality=spec.estimated_cardinality,
            dedup_budget_bytes=int(dedup_budget) if dedup_budget else None,
        )
    if operator_type == OperatorType.CHOOSE:
        return ChooseNode(
            spec.operator_id, context, children, estimated_cardinality=spec.estimated_cardinality
        )
    if operator_type == OperatorType.MATERIALIZE:
        return Materialize(
            spec.operator_id,
            context,
            children[0],
            result_name=_required(spec, "result_name"),
            estimated_cardinality=spec.estimated_cardinality,
        )
    raise PlanError(f"unsupported operator type {operator_type!r}")


def _build_join(spec: OperatorSpec, context: ExecutionContext, children: list[Operator]) -> Operator:
    left_keys = list(_required(spec, "left_keys"))
    right_keys = list(_required(spec, "right_keys"))
    implementation = spec.implementation or JoinImplementation.DOUBLE_PIPELINED.value
    common = dict(
        left_keys=left_keys,
        right_keys=right_keys,
        estimated_cardinality=spec.estimated_cardinality,
    )
    if implementation == JoinImplementation.DOUBLE_PIPELINED.value:
        return DoublePipelinedJoin(
            spec.operator_id,
            context,
            children[0],
            children[1],
            memory_limit_bytes=spec.memory_limit_bytes,
            overflow_method=spec.params.get("overflow_method", "left_flush"),
            **common,
        )
    if implementation == JoinImplementation.HYBRID_HASH.value:
        return HybridHashJoin(
            spec.operator_id,
            context,
            children[0],
            children[1],
            memory_limit_bytes=spec.memory_limit_bytes,
            **common,
        )
    if implementation == JoinImplementation.NESTED_LOOPS.value:
        return NestedLoopsJoin(
            spec.operator_id, context, children[0], children[1], **common
        )
    raise PlanError(f"unknown join implementation {implementation!r}")


def _required(spec: OperatorSpec, key: str):
    try:
        return spec.params[key]
    except KeyError:
        raise PlanError(
            f"operator {spec.operator_id!r} ({spec.operator_type.value}) is missing "
            f"required parameter {key!r}"
        ) from None


def _optional_float(value) -> float | None:
    if value in (None, ""):
        return None
    return float(value)


def _as_bool(value) -> bool:
    if isinstance(value, bool):
        return value
    return str(value).lower() in ("true", "1", "yes")
