"""The iterator model: the runtime operator base class.

Tukwila executes operator trees top-down with the standard iterator (open /
next / close) protocol.  Operators additionally expose :meth:`peek_arrival` —
an estimate of the earliest virtual time at which their next tuple could be
delivered — which is what lets data-driven operators (the double pipelined
join, the dynamic collector) decide which input to service first, standing in
for the original engine's per-child threads.
"""

from __future__ import annotations

from typing import Iterator

from repro.engine.context import ExecutionContext
from repro.errors import ExecutionError
from repro.plan.rules import EventType
from repro.storage.schema import Schema
from repro.storage.tuples import Row


class Operator:
    """Base class for all runtime operators.

    Subclasses implement :meth:`_do_open`, :meth:`_next` and optionally
    :meth:`_do_close` and :meth:`peek_arrival`.  The base class maintains
    state, statistics, and event emission.
    """

    def __init__(
        self,
        operator_id: str,
        context: ExecutionContext,
        children: list["Operator"] | None = None,
        estimated_cardinality: int | None = None,
    ) -> None:
        self.operator_id = operator_id
        self.context = context
        self.children = children or []
        self.estimated_cardinality = estimated_cardinality
        self.state = "pending"
        context.register_operator(self)

    # -- schema --------------------------------------------------------------------

    @property
    def output_schema(self) -> Schema:
        """Schema of the rows this operator produces."""
        raise NotImplementedError

    # -- lifecycle ------------------------------------------------------------------

    def open(self) -> None:
        """Open children then this operator; emits the ``opened`` event."""
        if self.state == "open":
            return
        for child in self.children:
            child.open()
        self._do_open()
        self.state = "open"
        self._stats.state = "open"
        self.context.emit_event(EventType.OPENED, self.operator_id)

    def next(self) -> Row | None:
        """Produce the next output row, or ``None`` at end of stream."""
        if self.state == "pending":
            raise ExecutionError(f"operator {self.operator_id!r} used before open()")
        if self.state in ("closed", "deactivated"):
            return None
        row = self._next()
        if row is not None:
            self.context.clock.consume_cpu(self.context.config.per_tuple_cpu_ms)
            self._stats.record_output(self.context.clock.now)
        return row

    def close(self) -> None:
        """Close this operator and its children; emits the ``closed`` event."""
        if self.state == "closed":
            return
        self._do_close()
        for child in self.children:
            child.close()
        self.state = "closed"
        self._stats.state = "closed"
        self.context.emit_event(
            EventType.CLOSED, self.operator_id, value=self._stats.tuples_produced
        )

    def deactivate(self) -> None:
        """Stop execution of this operator (the ``deactivate`` rule action)."""
        self.state = "deactivated"
        self._stats.state = "deactivated"
        self.context.deactivate(self.operator_id)
        for child in self.children:
            child.deactivate()

    # -- data-driven support -------------------------------------------------------------

    def peek_arrival(self) -> float | None:
        """Earliest virtual time the next tuple could be available.

        ``None`` means end of stream.  The default assumes data is ready now,
        which is correct for operators over already-materialized inputs.
        """
        if self.state in ("closed", "deactivated"):
            return None
        return self.context.clock.now

    # -- helpers ---------------------------------------------------------------------------

    @property
    def _stats(self):
        return self.context.stats.operator(self.operator_id)

    @property
    def tuples_produced(self) -> int:
        return self._stats.tuples_produced

    def iterate(self) -> Iterator[Row]:
        """Convenience generator over the operator's full output."""
        while True:
            row = self.next()
            if row is None:
                return
            yield row

    # -- subclass hooks ----------------------------------------------------------------------

    def _do_open(self) -> None:
        """Subclass hook: acquire resources."""

    def _next(self) -> Row | None:
        raise NotImplementedError

    def _do_close(self) -> None:
        """Subclass hook: release resources."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.operator_id!r}, state={self.state!r})"
