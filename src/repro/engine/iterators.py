"""The iterator model: the runtime operator base class.

Tukwila executes operator trees top-down with the standard iterator (open /
next / close) protocol.  Operators additionally expose :meth:`peek_arrival` —
an estimate of the earliest virtual time at which their next tuple could be
delivered — which is what lets data-driven operators (the double pipelined
join, the dynamic collector) decide which input to service first, standing in
for the original engine's per-child threads.
"""

from __future__ import annotations

from typing import Iterator

from repro.engine.context import ExecutionContext
from repro.errors import ExecutionError
from repro.plan.rules import EventType
from repro.storage.batch import Batch
from repro.storage.schema import Schema
from repro.storage.tuples import Row

#: Default number of rows per batch in the vectorized (batch-at-a-time) path.
DEFAULT_BATCH_SIZE = 256


class Operator:
    """Base class for all runtime operators.

    Subclasses implement :meth:`_do_open`, :meth:`_next` and optionally
    :meth:`_do_close` and :meth:`peek_arrival`.  The base class maintains
    state, statistics, and event emission.
    """

    #: Multiplier on the per-tuple CPU charge for this operator's output.
    #: 1.0 for operators that touch every value; exchange endpoints lower it
    #: (routing and merging move encoded column references, not values) so a
    #: serial merge point does not re-pay the work its lanes parallelized.
    PER_TUPLE_CPU_FACTOR = 1.0

    def __init__(
        self,
        operator_id: str,
        context: ExecutionContext,
        children: list["Operator"] | None = None,
        estimated_cardinality: int | None = None,
    ) -> None:
        self.operator_id = operator_id
        self.context = context
        self.children = children or []
        self.estimated_cardinality = estimated_cardinality
        self.state = "pending"
        context.register_operator(self)

    # -- schema --------------------------------------------------------------------

    @property
    def output_schema(self) -> Schema:
        """Schema of the rows this operator produces."""
        raise NotImplementedError

    # -- lifecycle ------------------------------------------------------------------

    def open(self) -> None:
        """Open children then this operator; emits the ``opened`` event."""
        if self.state == "open":
            return
        for child in self.children:
            child.open()
        self._do_open()
        self.state = "open"
        self._stats.state = "open"
        self.context.emit_event(EventType.OPENED, self.operator_id)

    def next(self) -> Row | None:
        """Produce the next output row, or ``None`` at end of stream."""
        if self.state == "pending":
            raise ExecutionError(f"operator {self.operator_id!r} used before open()")
        if self.state in ("closed", "deactivated"):
            return None
        row = self._next()
        if row is not None:
            self.context.clock.consume_cpu(
                self.context.config.per_tuple_cpu_ms * self.PER_TUPLE_CPU_FACTOR
            )
            self._stats.record_output(self.context.clock.now)
        return row

    def next_batch(self, max_rows: int = DEFAULT_BATCH_SIZE) -> Batch:
        """Produce up to ``max_rows`` output rows as a :class:`Batch`.

        The batch contract:

        * A non-empty batch may hold fewer than ``max_rows`` rows (operators
          cut batches short when a watched event fires, so the executor can
          run rules at exactly the tuple-at-a-time firing point).
        * An empty (falsy) batch is only returned at end of stream —
          operators keep pulling until they have at least one row or their
          input is done, mirroring :meth:`next`, which blocks until a row or
          ``None``.
        * The batch may be column-backed (native columnar paths) or
          row-backed (tuple-driven operators, the generic fallback); either
          converts to the other lazily, so consumers dispatch on
          :attr:`Batch.is_columnar` when they have a vectorized path and
          call :meth:`Batch.rows` otherwise.

        The default implementation loops :meth:`_next`; hot operators override
        :meth:`_next_batch` with native vectorized paths.  Per-tuple CPU and
        statistics are charged once per batch with identical totals.
        """
        if self.state == "pending":
            raise ExecutionError(f"operator {self.operator_id!r} used before open()")
        if self.state in ("closed", "deactivated"):
            return Batch.empty(self.output_schema)
        if max_rows <= 0:
            raise ExecutionError(f"batch size must be positive, got {max_rows}")
        clock = self.context.clock
        wait_before = clock.stats.wait_ms
        batch = self._next_batch(max_rows)
        if batch:
            # Charge the batch's per-tuple CPU as overlapped with the waiting
            # that accrued while the batch streamed in — the accounting a
            # tuple-at-a-time drive produces by interleaving the same charges
            # between arrival waits.
            clock.consume_cpu_overlapped(
                len(batch) * self.context.config.per_tuple_cpu_ms * self.PER_TUPLE_CPU_FACTOR,
                max(0.0, clock.stats.wait_ms - wait_before),
            )
            self._stats.record_output_batch(len(batch), clock.now)
        return batch

    def next_batch_bounded(self, max_rows: int, arrival_bound: float) -> Batch:
        """Produce up to ``max_rows`` rows arriving strictly before ``arrival_bound``.

        Used by data-driven consumers (the double pipelined join) to consume a
        *run* of tuples from one input in bulk: every row returned would also
        have been consumed consecutively by a tuple-at-a-time drive, because
        no other input could deliver anything earlier.  May return an empty
        :class:`Batch` when the next row arrives at or after the bound — that
        is not end of stream; callers fall back to a single :meth:`next` step
        (the tie-break case).
        """
        if self.state == "pending":
            raise ExecutionError(f"operator {self.operator_id!r} used before open()")
        if self.state in ("closed", "deactivated"):
            return Batch.empty(self.output_schema)
        clock = self.context.clock
        wait_before = clock.stats.wait_ms
        batch = self._next_batch_bounded(max_rows, arrival_bound)
        if batch:
            clock.consume_cpu_overlapped(
                len(batch) * self.context.config.per_tuple_cpu_ms * self.PER_TUPLE_CPU_FACTOR,
                max(0.0, clock.stats.wait_ms - wait_before),
            )
            self._stats.record_output_batch(len(batch), clock.now)
        return batch

    def close(self) -> None:
        """Close this operator and its children; emits the ``closed`` event."""
        if self.state == "closed":
            return
        self._do_close()
        for child in self.children:
            child.close()
        self.state = "closed"
        self._stats.state = "closed"
        self.context.emit_event(
            EventType.CLOSED, self.operator_id, value=self._stats.tuples_produced
        )

    def deactivate(self) -> None:
        """Stop execution of this operator (the ``deactivate`` rule action)."""
        self.state = "deactivated"
        self._stats.state = "deactivated"
        self.context.deactivate(self.operator_id)
        for child in self.children:
            child.deactivate()

    # -- data-driven support -------------------------------------------------------------

    def peek_arrival(self) -> float | None:
        """Earliest virtual time the next tuple could be available.

        ``None`` means end of stream.  The default assumes data is ready now,
        which is correct for operators over already-materialized inputs.
        """
        if self.state in ("closed", "deactivated"):
            return None
        return self.context.clock.now

    # -- helpers ---------------------------------------------------------------------------

    @property
    def _stats(self):
        return self.context.stats.operator(self.operator_id)

    @property
    def tuples_produced(self) -> int:
        return self._stats.tuples_produced

    def iterate(self) -> Iterator[Row]:
        """Convenience generator over the operator's full output."""
        while True:
            row = self.next()
            if row is None:
                return
            yield row

    # -- subclass hooks ----------------------------------------------------------------------

    def _do_open(self) -> None:
        """Subclass hook: acquire resources."""

    def _next(self) -> Row | None:
        raise NotImplementedError

    def _next_batch(self, max_rows: int) -> Batch:
        """Subclass hook: produce up to ``max_rows`` rows (empty = end of stream).

        The fallback loops the tuple-at-a-time hook into a row-backed
        :class:`Batch`, stopping early when a watched event interrupts the
        batch (but never returning an empty batch unless the stream is
        exhausted).
        """
        context = self.context
        rows: list[Row] = []
        while len(rows) < max_rows:
            row = self._next()
            if row is None:
                break
            rows.append(row)
            if context.batch_interrupt:
                break
        return Batch.from_rows(rows[0].schema if rows else self.output_schema, rows)

    def _next_batch_bounded(self, max_rows: int, arrival_bound: float) -> Batch:
        """Subclass hook for :meth:`next_batch_bounded`.

        The fallback re-checks :meth:`peek_arrival` before every pull, so it
        is exact for any operator; leaf scans override it with a direct loop
        over their source's arrival sequence.
        """
        context = self.context
        rows: list[Row] = []
        while len(rows) < max_rows:
            arrival = self.peek_arrival()
            if arrival is None or arrival >= arrival_bound:
                break
            row = self._next()
            if row is None:
                break
            rows.append(row)
            if context.batch_interrupt:
                break
        return Batch.from_rows(rows[0].schema if rows else self.output_schema, rows)

    def _do_close(self) -> None:
        """Subclass hook: release resources."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.operator_id!r}, state={self.state!r})"
