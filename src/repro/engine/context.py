"""The execution context shared by all runtime operators of one query.

The context bundles the virtual clock, simulated disk, memory pool, local
store, wrappers, the event queue, and runtime statistics.  It also implements
the :class:`~repro.plan.rules.RuntimeContext` protocol so that rule conditions
can observe dynamic quantities (operator state, cardinalities, memory use).
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass

from repro.catalog.catalog import DataSourceCatalog
from repro.engine.events import EventQueue
from repro.engine.stats import QueryRuntimeStats
from repro.errors import ExecutionError
from repro.network.cache import SourceCache
from repro.network.simclock import SimClock
from repro.network.wrapper import Wrapper
from repro.plan.rules import EventType
from repro.storage.disk import SimulatedDisk
from repro.storage.memory import MemoryPool
from repro.storage.table_store import LocalStore

#: Default CPU cost charged per tuple processed by an operator, in virtual ms.
DEFAULT_CPU_COST_MS = 0.002

#: Exchange lane backends the engine knows how to run.  ``inline`` steps the
#: lanes inside this process on the shared virtual timeline; ``process``
#: runs each lane's subtree in its own OS process (real multicore), with
#: identical results and identical virtual-time accounting.
EXCHANGE_BACKENDS = ("inline", "process")


@dataclass
class EngineConfig:
    """Tunables for the execution engine.

    Parameters
    ----------
    per_tuple_cpu_ms:
        CPU cost charged by each operator per tuple it processes.
    default_timeout_ms:
        Source timeout used by wrappers when the plan does not set one.
    materialization_cost_ms_per_tuple:
        Cost of writing one tuple at a materialization point.
    collector_dedup:
        Whether collectors deduplicate tuples arriving from overlapping
        sources (on the collector's key attributes).
    disk_page_read_ms / disk_page_write_ms:
        Virtual cost of one page of spill I/O.  Benchmarks that study memory
        overflow raise these to model a spinning disk.
    columnar_batches:
        When true (the default), batch-producing leaves build columnar
        (struct-of-arrays) :class:`~repro.storage.batch.Batch` objects and
        operators with native columnar paths keep data in columns end to
        end.  When false, batches stay row-backed — the pre-columnar
        "row-batch" drive, retained as a baseline for the parity tests and
        ``benchmarks/bench_columnar_pipeline.py``.  Virtual-time accounting
        is identical either way.
    encoded_columns:
        When true (the default), the storage layer *encodes* columns:
        string attributes dictionary-encode (``array('q')`` codes plus a
        shared per-column dictionary) in scan batches, hash-table
        partitions, and spill chunks; arrival stamps run-length encode
        where blocks share one stamp; and memory budgets / spill files
        charge the encoded footprint (``Schema.encoded_row_size``).
        Orthogonal to the drive mode: the hash tables and overflow files
        are encoded (or not) identically under all three drives, so
        overflow events and spill I/O never depend on the drive.  Disable
        for the plain-columnar baseline the encoding benchmark measures
        against.
    enable_source_caching:
        When true, fully-read source extents are cached (the paper's
        "caching of source data" extension) and later scans of the same
        source are served locally.
    source_cache_max_age_ms:
        Expiry for cached source data (``None`` = never expires).
    validate_plans:
        When true (the default), plans are statically validated before any
        runtime operator is built: schema compatibility at unions/joins,
        dependent-join bind keys produced by the left input, join-key
        encoding consistency, and (at server admission) memory allotments
        not below the broker floor.  A violation raises
        :class:`~repro.errors.PlanValidationError` with every finding,
        instead of failing mid-stream with a partially executed plan.
    exchange_lanes:
        Partition parallelism.  With N > 1 the builder wraps every
        partitionable operator (hash joins, keyed collectors) in an
        :class:`~repro.engine.operators.exchange.Exchange`: inputs are
        hash-partitioned on the join/dedup key across N worker lanes, each
        lane runs the operator on its own virtual clock (a session-style
        step generator on the shared timeline), and the merge side
        re-interleaves lane outputs deterministically.  ``1`` (the
        default) executes every operator serially, exactly as before.
    speculative_sources:
        When true, the source layer is speculative (the other half of the
        paper's Section 8 extension): a scan's first reader publishes its
        in-progress extent block-by-block into the shared cache, and later
        scans of the same source stream the cached prefix at local CPU
        speed, falling in behind the live connection for the tail instead
        of queueing for a connection slot.  ``False`` (the default) keeps
        completion-based admission — behavior and virtual-time accounting
        bit-identical to the non-speculative engine.
    prefetch_budget_bytes:
        Memory allowance for the server's plan-aware prefetcher, charged to
        a speculative broker lease that revocation victimizes first.  ``0``
        (the default) disables prefetching; only meaningful under the
        multi-query server with ``speculative_sources`` enabled.
    exchange_backend:
        How exchange lanes execute (see :data:`EXCHANGE_BACKENDS`).
        ``"inline"`` (the default) steps every lane inside this process —
        today's behavior, bit-identical.  ``"process"`` runs each lane's
        operator subtree in its own OS process, fed routed batches over a
        compact columnar wire format, for real multicore wall-clock
        speedup; results and virtual-time accounting are identical to
        ``inline`` by contract (the parity tests pin this).  Standalone
        queries free-run their lane workers concurrently; under the
        multi-query server (a broker-backed pool) lanes run in lockstep
        with the parent so broker revocations land at exactly the same
        lane-step boundaries as inline.
    """

    per_tuple_cpu_ms: float = DEFAULT_CPU_COST_MS
    default_timeout_ms: float | None = 60_000.0
    materialization_cost_ms_per_tuple: float = 0.004
    collector_dedup: bool = True
    disk_page_read_ms: float = 0.12
    disk_page_write_ms: float = 0.15
    columnar_batches: bool = True
    encoded_columns: bool = True
    enable_source_caching: bool = False
    source_cache_max_age_ms: float | None = None
    speculative_sources: bool = False
    prefetch_budget_bytes: int = 0
    validate_plans: bool = True
    exchange_lanes: int = 1
    exchange_backend: str = "inline"


class ExecutionContext:
    """Per-query runtime state shared by operators, executor, and rules."""

    def __init__(
        self,
        catalog: DataSourceCatalog,
        clock: SimClock | None = None,
        memory_pool: MemoryPool | None = None,
        disk: SimulatedDisk | None = None,
        local_store: LocalStore | None = None,
        config: EngineConfig | None = None,
        query_name: str = "query",
        source_cache: SourceCache | None = None,
        session_id: str | None = None,
    ) -> None:
        self.catalog = catalog
        #: Identity of the owning server session (``None`` outside the
        #: multi-query server).  Tags shared-cache fills/lookups so
        #: cross-session hits are counted and future-time fills from
        #: sessions running ahead on the shared timeline stay invisible
        #: until this session's clock reaches them.
        self.session_id = session_id
        self.config = config or EngineConfig()
        self.clock = clock or SimClock()
        self.memory_pool = memory_pool or MemoryPool()
        self.disk = disk or SimulatedDisk(
            page_read_ms=self.config.disk_page_read_ms,
            page_write_ms=self.config.disk_page_write_ms,
            encoded=self.config.encoded_columns,
        )
        self.local_store = local_store or LocalStore()
        if source_cache is not None:
            self.source_cache: SourceCache | None = source_cache
        elif self.config.enable_source_caching:
            self.source_cache = SourceCache(max_age_ms=self.config.source_cache_max_age_ms)
        else:
            self.source_cache = None
        self.events = EventQueue()
        self.stats = QueryRuntimeStats(query_name=query_name)
        self._wrappers: dict[str, list[Wrapper]] = {}
        self._operators: dict[str, object] = {}
        self._deactivated: set[str] = set()
        #: Event keys ``(event_type, subject)`` that some registered rule
        #: triggers on.  Emitting a watched event raises ``batch_interrupt``,
        #: which tells batch-mode operators to cut their current batch short so
        #: the executor drains the queue at exactly the point a tuple-at-a-time
        #: drive would have — rule firing order is preserved under batching.
        self.watched_event_keys: set[tuple[EventType, str]] = set()
        self.batch_interrupt = False
        #: Drive-mode switch for batch-producing leaves: columnar
        #: (struct-of-arrays) batches when true, row-backed batches when
        #: false.  Seeded from the config; the bench harness flips it per run
        #: to compare the two batch drives.
        self.columnar = self.config.columnar_batches
        #: Column-encoding switch (dictionary strings + run-length arrival
        #: stamps); orthogonal to the drive mode — see ``EngineConfig``.
        self.encoded_columns = self.config.encoded_columns

    def derive_worker(self, label: str) -> "ExecutionContext":
        """A worker context for one exchange execution site (lane or producer).

        The worker shares everything whose identity matters across sites —
        catalog, memory pool (so per-lane budgets are individual broker
        leases), local store, cross-session source cache, config, the event
        queue, and the runtime stats registry — but runs on its *own*
        virtual clock and simulated disk, so its CPU, waits, and spill I/O
        occupy their own span of the shared timeline instead of serializing
        onto this context's clock.  Inside the multi-query server the worker
        clock is registered on the server timeline
        (:meth:`~repro.server.clock.ServerClock.lane_clock`); standalone it
        is a plain :class:`SimClock` starting at this context's current time.
        """
        clock = self.clock
        server = getattr(clock, "server", None)
        if server is not None:
            worker_clock = server.lane_clock(
                getattr(clock, "session_id", self.stats.query_name), label, clock.now
            )
        else:
            worker_clock = SimClock(start_ms=clock.now)
        worker = ExecutionContext(
            self.catalog,
            clock=worker_clock,
            memory_pool=self.memory_pool,
            local_store=self.local_store,
            config=self.config,
            query_name=f"{self.stats.query_name}.{label}",
            source_cache=self.source_cache,
            session_id=self.session_id,
        )
        # Shared observability: worker operators report into this query's
        # stats and event queue (their ids are lane-qualified, so there are
        # no collisions).  Watched-event keys stay local — rules fire on the
        # coordinating context, not inside lanes.
        worker.stats = self.stats
        worker.events = self.events
        worker.columnar = self.columnar
        worker.encoded_columns = self.encoded_columns
        return worker

    @contextmanager
    def row_backed_pulls(self):
        """Temporarily force row-backed batches from leaves.

        Operators that buffer their input as :class:`Row` objects anyway
        (hash-join build sides, the double pipelined join's runs, the
        nested-loops inner) wrap their child pulls in this so leaves skip the
        columnar transpose that ``Batch.rows()`` would immediately undo.
        Representation only — virtual-clock accounting is identical — and the
        previous mode is always restored, even on error.
        """
        saved = self.columnar
        self.columnar = False
        try:
            yield
        finally:
            self.columnar = saved

    # -- wrappers ------------------------------------------------------------------

    def create_wrapper(self, source_name: str, timeout_ms: float | None = None) -> Wrapper:
        """Create a wrapper (a fresh streaming connection) for ``source_name``.

        Every scan operator gets its own wrapper so that a plan may read the
        same source more than once (self-joins, retries after rescheduling).
        All wrappers created for a query are tracked for statistics reporting.
        """
        source = self.catalog.source(source_name)
        wrapper = Wrapper(
            source,
            self.clock,
            timeout_ms=timeout_ms if timeout_ms is not None else self.config.default_timeout_ms,
            encoded_columns=self.config.encoded_columns,
        )
        self._wrappers.setdefault(source_name, []).append(wrapper)
        return wrapper

    @property
    def wrappers(self) -> dict[str, list[Wrapper]]:
        """All wrappers created so far, keyed by source name."""
        return {name: list(items) for name, items in self._wrappers.items()}

    # -- operator registry ------------------------------------------------------------

    def register_operator(self, operator) -> None:
        """Track a runtime operator so rules and actions can address it by id."""
        self._operators[operator.operator_id] = operator

    def operator(self, operator_id: str):
        try:
            return self._operators[operator_id]
        except KeyError:
            raise ExecutionError(f"no runtime operator {operator_id!r}") from None

    def has_operator(self, operator_id: str) -> bool:
        return operator_id in self._operators

    @property
    def operators(self) -> dict[str, object]:
        return dict(self._operators)

    # -- activation --------------------------------------------------------------------

    def deactivate(self, target: str) -> None:
        """Mark an operator/fragment as deactivated."""
        self._deactivated.add(target)

    def reactivate(self, target: str) -> None:
        self._deactivated.discard(target)

    def is_deactivated(self, target: str) -> bool:
        return target in self._deactivated

    # -- events ------------------------------------------------------------------------

    def emit_event(self, event_type: EventType, subject: str, value=None) -> None:
        """Raise a runtime event at the current virtual time."""
        self.events.emit(event_type, subject, value, at_time=self.clock.now)
        if (event_type, subject) in self.watched_event_keys:
            self.batch_interrupt = True

    def watch_events(self, keys) -> None:
        """Declare event keys that must interrupt in-flight batches (see above)."""
        self.watched_event_keys.update(keys)

    def event_watched(self, event_type: EventType, subject: str) -> bool:
        """True when a registered rule triggers on ``(event_type, subject)``."""
        return (event_type, subject) in self.watched_event_keys

    # -- RuntimeContext protocol (observed by rule conditions) ----------------------------

    def operator_state(self, operator_id: str) -> str:
        if operator_id in self._deactivated:
            return "deactivated"
        return self.stats.operator(operator_id).state

    def operator_card(self, operator_id: str) -> int:
        return self.stats.operator(operator_id).tuples_produced

    def operator_est_card(self, operator_id: str) -> int | None:
        operator = self._operators.get(operator_id)
        if operator is None:
            return None
        return getattr(operator, "estimated_cardinality", None)

    def operator_memory(self, operator_id: str) -> int:
        operator = self._operators.get(operator_id)
        if operator is None:
            return 0
        budget = getattr(operator, "budget", None)
        return budget.used_bytes if budget is not None else 0

    def operator_time_since_last_tuple(self, operator_id: str) -> float:
        stats = self.stats.operator(operator_id)
        if stats.time_of_last_output is None:
            return self.clock.now
        return self.clock.now - stats.time_of_last_output
