"""Leaf operators: wrapper scans (remote sources) and table scans (local store)."""

from __future__ import annotations

from repro.engine.context import ExecutionContext
from repro.engine.iterators import Operator
from repro.errors import SourceTimeoutError, SourceUnavailableError
from repro.network.cache import NEED_TAIL, STARVED
from repro.plan.rules import EventType
from repro.storage.batch import Batch
from repro.storage.columns import (
    RunLengthArrivals,
    append_value,
    empty_columns,
    extend_column,
)
from repro.storage.schema import Schema
from repro.storage.tuples import Row


class WrapperScan(Operator):
    """Streams tuples from a remote data source through its wrapper.

    Timeouts and source failures are surfaced both as engine events (so rules
    can reschedule or re-optimize) and as exceptions (so the executor can stop
    the fragment when no rule handles the situation).

    When the execution context carries a :class:`~repro.network.cache.SourceCache`,
    a source that was already read to completion is served from the cache at
    local speed, and a source read to completion here is deposited into the
    cache for later scans (the paper's source-data caching extension).
    """

    def __init__(
        self,
        operator_id: str,
        context: ExecutionContext,
        source_name: str,
        timeout_ms: float | None = None,
        estimated_cardinality: int | None = None,
    ) -> None:
        super().__init__(operator_id, context, estimated_cardinality=estimated_cardinality)
        self.source_name = source_name
        self.wrapper = context.create_wrapper(source_name, timeout_ms=timeout_ms)
        self._threshold_counter = 0
        self._cache_feed = None
        self._rows_seen: list[Row] = []
        self._deferred_error: Exception | None = None
        self.served_from_cache = False
        #: Speculative streaming state: the partial extent this scan is
        #: publishing (it is the source's first reader), the follower feed it
        #: is consuming (another reader published/is publishing), and whether
        #: it ended up streaming a private tail that must never be deposited
        #: as a complete extent.
        self._extent = None
        self._follower = None
        self._tail_only = False

    @property
    def output_schema(self) -> Schema:
        return self.wrapper.schema

    def _do_open(self) -> None:
        context = self.context
        cache = context.source_cache
        if cache is not None:
            entry = cache.lookup(
                self.source_name, context.clock.now, session=context.session_id
            )
            if entry is not None:
                from repro.network.cache import CachingScanFeed

                self._cache_feed = CachingScanFeed(entry, context.clock)
                self.served_from_cache = True
                return
            if context.config.speculative_sources:
                follower = cache.attach_follower(
                    self.source_name, context.clock, context.session_id
                )
                if follower is not None:
                    self._follower = follower
                    return
        if not self.wrapper.is_open:
            self.wrapper.open()
        if cache is not None and context.config.speculative_sources:
            self._extent = cache.begin_stream(
                self.source_name,
                self.output_schema,
                context.clock.now,
                context.session_id,
                context.clock,
                self.wrapper.peek_next_arrival,
            )

    def peek_arrival(self) -> float | None:
        if self.state in ("closed", "deactivated"):
            return None
        if self._cache_feed is not None:
            return self._cache_feed.next_arrival()
        if self._follower is not None:
            return self._follower.next_arrival()
        if not self.wrapper.is_open:
            return self.context.clock.now
        if self.wrapper.exhausted:
            return None
        return self.wrapper.next_arrival()

    def _fill_cache_if_complete(self) -> None:
        cache = self.context.source_cache
        if cache is None or self.served_from_cache:
            return
        if self._follower is not None or self._tail_only:
            return
        if self._extent is not None:
            if self.wrapper.exhausted and not self._extent.complete:
                cache.complete_stream(
                    self._extent, self.context.clock.now, self.context.session_id
                )
            return
        if self.wrapper.exhausted and self.source_name not in cache:
            cache.fill(
                self.source_name,
                self.output_schema,
                self._rows_seen,
                now_ms=self.context.clock.now,
                session=self.context.session_id,
            )

    @property
    def _collects_for_cache(self) -> bool:
        """Whether fetched rows are buffered for a completion-time fill."""
        return (
            self._cache_feed is None
            and self._follower is None
            and self._extent is None
            and not self._tail_only
            and self.context.source_cache is not None
        )

    def _begin_tail(self) -> None:
        """Open a real connection for the unread tail of a followed extent.

        Called when the follower drained the prefix of a detached extent, or
        starved on a live one with nothing buffered to deliver (rare — the
        follower's wait hint lands strictly after the publisher's next
        event).  If the extent is detached and still registered, this scan
        takes over publishing it; otherwise the tail stays private.
        """
        follower = self._follower
        self._follower = None
        extent = follower.extent
        self.wrapper.open(start_row=follower.cursor)
        cache = self.context.source_cache
        if (
            cache is not None
            and not extent.complete
            and cache.adopt_stream(
                extent,
                self.context.session_id,
                self.context.clock,
                self.wrapper.peek_next_arrival,
            )
        ):
            self._extent = extent
        else:
            self._tail_only = True

    def _pull_row(self, starve_ok: bool = False):
        """One tuple from whichever stream serves this scan.

        Dispatches across the cache feed, a follower feed (handling tail
        takeover transparently), and the live wrapper (publishing fetched
        rows when this scan is the extent's publisher).  With ``starve_ok``
        a live-but-starved follower returns :data:`STARVED` instead of
        defecting, so batch loops can deliver what they already have.
        """
        if self._cache_feed is not None:
            return self._cache_feed.fetch()
        if self._follower is not None:
            row = self._follower.fetch()
            if row is STARVED and starve_ok:
                return STARVED
            if row is not NEED_TAIL and row is not STARVED:
                return row
            self._begin_tail()
        row = self.wrapper.fetch()
        if row is not None and self._extent is not None:
            self._extent.publish(
                (row,), self.context.clock.now, self.context.session_id
            )
        return row

    def _pull_batched_row(self):
        return self._pull_row(starve_ok=True)

    def _stream_next_arrival(self) -> float | None:
        """Next-tuple arrival for the live or followed stream (effect-free)."""
        if self._follower is not None:
            return self._follower.next_arrival()
        return self.wrapper.next_arrival()

    def _next(self) -> Row | None:
        if self.context.is_deactivated(self.operator_id):
            return None
        try:
            row = self._pull_row()
        except SourceTimeoutError:
            self.context.emit_event(EventType.TIMEOUT, self.source_name)
            self.context.emit_event(EventType.TIMEOUT, self.operator_id)
            raise
        except SourceUnavailableError as exc:
            self.context.emit_event(EventType.ERROR, self.source_name, value=str(exc))
            self.context.emit_event(EventType.ERROR, self.operator_id, value=str(exc))
            raise
        if row is None:
            self._fill_cache_if_complete()
            return None
        if self._collects_for_cache:
            self._rows_seen.append(row)
        self._threshold_counter += 1
        self.context.emit_event(
            EventType.THRESHOLD, self.operator_id, value=self._threshold_counter
        )
        return row

    def _next_batch(self, max_rows: int) -> Batch:
        return self._batched_fetch(max_rows, None)

    def _next_batch_bounded(self, max_rows: int, arrival_bound: float) -> Batch:
        return self._batched_fetch(max_rows, arrival_bound)

    def _batched_fetch(self, max_rows: int, arrival_bound: float | None) -> Batch:
        """Vectorized fetch loop, optionally stopping at an arrival bound.

        Per-row THRESHOLD events are only emitted when a rule actually watches
        this operator (emitting one Event object per source tuple is the
        single biggest per-row cost of the tuple-at-a-time path); the
        threshold counter itself is always maintained.  A source failure that
        strikes mid-batch is deferred so the rows fetched before it are not
        lost: the partial batch is delivered and the error re-raised on the
        next call, which is when a tuple-at-a-time consumer would have hit it.

        In columnar mode the unwatched block path builds the batch's column
        lists straight from the wrapper's fetched blocks (no per-row
        :class:`Row` objects); the watched, cache-feed, and cache-collecting
        paths stay row-based, since they need per-row events or row objects
        anyway.
        """
        if self._deferred_error is not None:
            error, self._deferred_error = self._deferred_error, None
            raise error
        context = self.context
        if context.is_deactivated(self.operator_id):
            return Batch.empty(self.output_schema)
        batch: list[Row] = []
        cache_feed = self._cache_feed
        collect_for_cache = self._collects_for_cache
        watched = context.event_watched(EventType.THRESHOLD, self.operator_id)
        if cache_feed is not None:
            fetch = cache_feed.fetch
            next_arrival = cache_feed.next_arrival
        else:
            fetch = self._pull_batched_row
            next_arrival = self._stream_next_arrival
        use_block = cache_feed is None and self._follower is None and not watched
        if use_block and not collect_for_cache and self._extent is None and context.columnar:
            return self._batched_fetch_columnar(max_rows, arrival_bound)
        while len(batch) < max_rows:
            if use_block:
                rows = self.wrapper.fetch_batch(max_rows - len(batch), arrival_bound)
                if rows:
                    self._threshold_counter += len(rows)
                    if collect_for_cache:
                        self._rows_seen.extend(rows)
                    if self._extent is not None:
                        self._extent.publish(rows, context.clock.now, context.session_id)
                    batch.extend(rows)
                    continue
                # Empty block: end of stream, bound reached, or a tuple that
                # would fail/time out — fall through to the per-tuple path,
                # which surfaces each of those with exact semantics.
            if arrival_bound is not None:
                arrival = next_arrival()
                if arrival is None or arrival >= arrival_bound:
                    break
            try:
                row = fetch()
                if row is STARVED:
                    # Live extent, nothing published yet: deliver the partial
                    # batch; with nothing buffered, defect to a private tail.
                    if batch:
                        break
                    row = self._pull_row()
            except SourceTimeoutError as exc:
                context.emit_event(EventType.TIMEOUT, self.source_name)
                context.emit_event(EventType.TIMEOUT, self.operator_id)
                if batch:
                    self._deferred_error = exc
                    break
                raise
            except SourceUnavailableError as exc:
                context.emit_event(EventType.ERROR, self.source_name, value=str(exc))
                context.emit_event(EventType.ERROR, self.operator_id, value=str(exc))
                if batch:
                    self._deferred_error = exc
                    break
                raise
            if row is None:
                self._fill_cache_if_complete()
                break
            if collect_for_cache:
                self._rows_seen.append(row)
            self._threshold_counter += 1
            batch.append(row)
            if watched:
                context.emit_event(
                    EventType.THRESHOLD, self.operator_id, value=self._threshold_counter
                )
                if context.batch_interrupt:
                    break
        return Batch.from_rows(self.output_schema, batch)

    def _batched_fetch_columnar(self, max_rows: int, arrival_bound: float | None) -> Batch:
        """Columnar block fetch: identical block/fallback structure, no boxing."""
        context = self.context
        wrapper = self.wrapper
        columns: list[list] | None = None
        arrivals: list[float] = []
        while len(arrivals) < max_rows:
            block = wrapper.fetch_columns(max_rows - len(arrivals), arrival_bound)
            if block is not None:
                block_columns, block_arrivals = block
                self._threshold_counter += len(block_arrivals)
                if columns is None:
                    columns, arrivals = block_columns, block_arrivals
                else:
                    base = len(arrivals)
                    for position, column in enumerate(block_columns):
                        extend_column(columns, position, column, base)
                    arrivals.extend(block_arrivals)
                continue
            # Empty block: end of stream, bound reached, or a tuple that
            # would fail/time out — take one per-tuple step, which surfaces
            # each of those with exact semantics.
            if arrival_bound is not None:
                arrival = wrapper.next_arrival()
                if arrival is None or arrival >= arrival_bound:
                    break
            try:
                row = wrapper.fetch()
            except SourceTimeoutError as exc:
                context.emit_event(EventType.TIMEOUT, self.source_name)
                context.emit_event(EventType.TIMEOUT, self.operator_id)
                if arrivals:
                    self._deferred_error = exc
                    break
                raise
            except SourceUnavailableError as exc:
                context.emit_event(EventType.ERROR, self.source_name, value=str(exc))
                context.emit_event(EventType.ERROR, self.operator_id, value=str(exc))
                if arrivals:
                    self._deferred_error = exc
                    break
                raise
            if row is None:
                self._fill_cache_if_complete()
                break
            self._threshold_counter += 1
            if columns is None:
                # Seed typed accumulators so a batch that starts on the
                # per-tuple fallback still carries packed numeric columns
                # (and keeps downstream concats type-stable); in encoded
                # mode the string accumulators share the wrapper's
                # dictionaries so codes stay compatible with block fetches.
                columns = empty_columns(
                    self.output_schema,
                    self.wrapper.encoded_columns,
                    self.wrapper.column_dictionaries(),
                )
            for position, value in enumerate(row.values):
                append_value(columns, position, value)
            arrivals.append(row.arrival)
        schema = self.output_schema
        if columns is None:
            return Batch.empty(schema)
        return Batch.from_columns(schema, columns, arrivals)

    def _do_close(self) -> None:
        self._fill_cache_if_complete()
        if self._extent is not None and not self._extent.complete:
            # Closed early (deactivation, abandoned stream): detach the
            # partial extent *before* releasing the connection slot, so a
            # queued reader admitted into the freed slot resumes from the
            # cached prefix instead of re-fetching from row zero.
            cache = self.context.source_cache
            if cache is not None:
                cache.detach_stream(self._extent)
        self.wrapper.close()


class TableScan(Operator):
    """Scans a relation previously materialized in the local store."""

    def __init__(
        self,
        operator_id: str,
        context: ExecutionContext,
        relation_name: str,
        estimated_cardinality: int | None = None,
    ) -> None:
        super().__init__(operator_id, context, estimated_cardinality=estimated_cardinality)
        self.relation_name = relation_name
        self._relation = None
        self._cursor = 0

    @property
    def output_schema(self) -> Schema:
        return self.context.local_store.get(self.relation_name).schema

    def _do_open(self) -> None:
        # Row access stays lazy: a relation materialized columnar is only
        # boxed into Row objects if the tuple path actually reads it.
        self._relation = self.context.local_store.get(self.relation_name)
        self._cursor = 0

    def _next(self) -> Row | None:
        rows = self._relation.rows
        if self._cursor >= len(rows):
            return None
        row = rows[self._cursor]
        self._cursor += 1
        # Local reads are CPU + buffer-pool work; charge a small per-tuple cost
        # (the base class adds the generic per-tuple CPU charge on return).
        return row.with_arrival(self.context.clock.now)

    def _next_batch(self, max_rows: int) -> Batch:
        now = self.context.clock.now
        schema = self.output_schema
        if self.context.columnar:
            # Columns come straight from the stored relation (served from its
            # buffered columnar batches when the result was materialized
            # columnar); arrival is "now" for every row, as in the tuple path.
            columns, count = self.context.local_store.column_block(
                self.relation_name, self._cursor, max_rows
            )
            self._cursor += count
            if not count:
                return Batch.empty(schema)
            # Local block reads stamp every row "now": one arrival run in
            # encoded mode instead of ``count`` boxed floats.
            arrivals = (
                RunLengthArrivals.constant(now, count)
                if self.context.encoded_columns
                else [now] * count
            )
            return Batch.from_columns(schema, columns, arrivals)
        block = self.context.local_store.row_block(
            self.relation_name, self._cursor, max_rows
        )
        self._cursor += len(block)
        if not block:
            return Batch.empty(schema)
        return Batch.from_rows(schema, [row.with_arrival(now) for row in block])
