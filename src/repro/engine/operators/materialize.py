"""Materialize operator: stores its input in the local store while passing it through."""

from __future__ import annotations

from repro.engine.context import ExecutionContext
from repro.engine.iterators import Operator
from repro.storage.batch import Batch
from repro.storage.relation import Relation
from repro.storage.schema import Schema
from repro.storage.tuples import Row


class Materialize(Operator):
    """Writes every input row into a named local relation and passes it on.

    Fragments use this at their roots: the fragment result is both returned
    to the caller and retained for later fragments / re-optimization.
    """

    def __init__(
        self,
        operator_id: str,
        context: ExecutionContext,
        child: Operator,
        result_name: str,
        estimated_cardinality: int | None = None,
    ) -> None:
        super().__init__(
            operator_id, context, children=[child], estimated_cardinality=estimated_cardinality
        )
        self.result_name = result_name
        self._relation: Relation | None = None

    @property
    def child(self) -> Operator:
        return self.children[0]

    @property
    def output_schema(self) -> Schema:
        return self.child.output_schema

    @property
    def relation(self) -> Relation | None:
        """The relation being built (available during and after execution)."""
        return self._relation

    def peek_arrival(self) -> float | None:
        if self.state in ("closed", "deactivated"):
            return None
        return self.child.peek_arrival()

    def _do_open(self) -> None:
        self._relation = Relation(self.result_name, self.output_schema)

    def _next(self) -> Row | None:
        row = self.child.next()
        if row is None:
            return None
        assert self._relation is not None
        self._relation.append(row)
        self.context.clock.consume_io(self.context.config.materialization_cost_ms_per_tuple)
        return row

    def _next_batch(self, max_rows: int) -> Batch:
        clock = self.context.clock
        wait_before = clock.stats.wait_ms
        batch = self.child.next_batch(max_rows)
        if batch:
            assert self._relation is not None
            # Columnar batches are retained struct-of-arrays; rows are only
            # boxed if something later reads the relation row-wise.
            self._relation.extend_batch(batch)
            # Overlapped like the batch CPU charge in Operator.next_batch:
            # tuple-at-a-time materialization hides this IO inside the waits
            # between arrivals.
            clock.consume_io_overlapped(
                len(batch) * self.context.config.materialization_cost_ms_per_tuple,
                max(0.0, clock.stats.wait_ms - wait_before),
            )
        return batch

    def _do_close(self) -> None:
        if self._relation is not None:
            self.context.local_store.materialize(self._relation, at_time=self.context.clock.now)
