"""Plain union operator (the non-adaptive baseline for the dynamic collector)."""

from __future__ import annotations

from repro.engine.context import ExecutionContext
from repro.engine.iterators import Operator
from repro.errors import ExecutionError
from repro.storage.batch import Batch
from repro.storage.schema import Schema, merge_union_schema
from repro.storage.tuples import Row


class Union(Operator):
    """Concatenates its children's outputs, child by child, with no policy.

    Unlike the dynamic collector, a plain union has no mechanism for skipping
    slow mirrors, handling failures, or deduplicating overlap — it simply
    drains each child in order.  It exists both as a baseline and for plans
    where the inputs are known to be disjoint.
    """

    def __init__(
        self,
        operator_id: str,
        context: ExecutionContext,
        children: list[Operator],
        estimated_cardinality: int | None = None,
    ) -> None:
        if not children:
            raise ExecutionError("union requires at least one child")
        super().__init__(
            operator_id, context, children=children, estimated_cardinality=estimated_cardinality
        )
        self._current = 0
        self._schema: Schema | None = None

    @property
    def output_schema(self) -> Schema:
        if self._schema is None:
            schema = self.children[0].output_schema
            for child in self.children[1:]:
                schema = merge_union_schema(schema, child.output_schema)
            self._schema = schema
        return self._schema

    def peek_arrival(self) -> float | None:
        """Earliest arrival across the *remaining* children.

        The current child reporting end of stream must not read as the
        union's end of stream while later children still hold data — the
        scheduler's wait events would otherwise miss the true earliest
        arrival across branches.  Side-effect free: the cursor only moves
        when a pull actually drains the current child.
        """
        if self.state in ("closed", "deactivated"):
            return None
        for child in self.children[self._current:]:
            arrival = child.peek_arrival()
            if arrival is not None:
                return arrival
        return None

    def _next(self) -> Row | None:
        schema = self.output_schema
        while self._current < len(self.children):
            row = self.children[self._current].next()
            if row is not None:
                # Re-stamp onto the union's schema so downstream operators see
                # consistent attribute names regardless of which child produced it.
                return Row(schema, row.values, row.arrival)
            self._current += 1
        return None

    def _next_batch(self, max_rows: int) -> Batch:
        schema = self.output_schema
        while self._current < len(self.children):
            batch = self.children[self._current].next_batch(max_rows)
            if batch:
                # Re-stamping onto the union schema is a pure schema rebind
                # for columnar batches (column lists are aliased, not copied).
                return batch.with_schema(schema)
            self._current += 1
        return Batch.empty(schema)
