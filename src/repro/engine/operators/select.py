"""Selection operator: filters rows by a conjunction of predicates."""

from __future__ import annotations

from typing import Any, Callable

from repro.engine.context import ExecutionContext
from repro.engine.iterators import Operator
from repro.errors import SchemaError
from repro.query.conjunctive import COMPARATORS, SelectionPredicate
from repro.storage.batch import Batch
from repro.storage.columns import DictColumn
from repro.storage.schema import Schema
from repro.storage.tuples import Row

#: A compiled predicate: (column index or None, comparator, constant).
CompiledPredicate = tuple[int | None, Callable[[Any, Any], bool], Any]

#: Batches between adaptive re-sorts of the compiled predicate order.
REORDER_INTERVAL_BATCHES = 16


class Select(Operator):
    """Passes through rows satisfying every predicate.

    The batch evaluator is *adaptive*: it tracks each predicate's observed
    selectivity (rows passed / rows tested) and every
    :data:`REORDER_INTERVAL_BATCHES` batches re-sorts the compiled
    conjunction most-selective-first, so cheap, highly selective predicates
    shrink the selection vector before the others run.  Conjunctions are
    commutative and predicate evaluation is side-effect free, so reordering
    never changes results — only the number of comparator calls
    (:attr:`comparator_calls`, tracked for the benchmark/test harness).
    Pass ``adaptive=False`` to pin the written order (the static baseline).

    The evaluator is also *dictionary-aware*: when a predicate's column is
    dictionary-encoded, the comparator runs **once per distinct dictionary
    entry** (results memoized in a per-dictionary mask that grows with the
    append-only dictionary) and rows filter by code lookup — on a million-row
    scan with a dozen distinct strings, a dozen comparator calls instead of
    a million.  :attr:`comparator_calls` counts real comparator invocations,
    so the saving is directly assertable.
    """

    def __init__(
        self,
        operator_id: str,
        context: ExecutionContext,
        child: Operator,
        predicates: list[SelectionPredicate],
        estimated_cardinality: int | None = None,
        adaptive: bool = True,
    ) -> None:
        super().__init__(
            operator_id, context, children=[child], estimated_cardinality=estimated_cardinality
        )
        self.predicates = list(predicates)
        self.adaptive = adaptive
        self._compiled: list[CompiledPredicate] | None = None
        #: Per compiled predicate, [rows tested, rows passed] — observed
        #: selectivity counters, kept aligned with ``_compiled`` on re-sort.
        self._observed: list[list[int]] = []
        #: Per compiled predicate, ``id(dictionary) -> (dictionary, mask)`` —
        #: memoized comparator results over dictionary entries, kept aligned
        #: with ``_compiled`` on re-sort.  Masks extend lazily as the
        #: (append-only) dictionaries grow; the entry holds the dictionary
        #: itself so a collected dictionary's recycled ``id`` can never
        #: alias a stale mask.
        self._dict_masks: list[dict[int, tuple]] = []
        self._batches_seen = 0
        self.comparator_calls = 0
        self.reorder_count = 0

    @property
    def child(self) -> Operator:
        return self.children[0]

    @property
    def output_schema(self) -> Schema:
        return self.child.output_schema

    def peek_arrival(self) -> float | None:
        if self.state in ("closed", "deactivated"):
            return None
        return self.child.peek_arrival()

    def _matches(self, row: Row) -> bool:
        for predicate in self.predicates:
            value = row.get(f"{predicate.table}.{predicate.attr}", row.get(predicate.attr))
            if value is None or not predicate.evaluate(value):
                return False
        return True

    def _next(self) -> Row | None:
        while True:
            row = self.child.next()
            if row is None:
                return None
            if self._matches(row):
                return row

    def _compile_predicates(self) -> list[CompiledPredicate]:
        """Bind each predicate to a column index and a raw comparator, once.

        The tuple path resolves attribute names (and the comparator table) per
        row; the input schema is fixed once the child is open, so the batch
        evaluator binds column indices and comparator callables a single time
        and then filters whole batches with plain ``comparator(value, const)``
        calls.  ``None`` marks an attribute absent from the schema — such
        predicates can never be satisfied (mirroring :meth:`_matches`, where
        the lookup yields ``None``).
        """
        schema = self.child.output_schema
        compiled: list[CompiledPredicate] = []
        for predicate in self.predicates:
            index: int | None
            try:
                index = schema.index_of(f"{predicate.table}.{predicate.attr}")
            except SchemaError:
                try:
                    index = schema.index_of(predicate.attr)
                except SchemaError:
                    index = None
            compiled.append((index, COMPARATORS[predicate.op], predicate.value))
        return compiled

    def _maybe_reorder(self) -> None:
        """Re-sort the compiled conjunction by observed selectivity.

        Runs every :data:`REORDER_INTERVAL_BATCHES` filtered batches.  The
        sort key is the observed pass rate (ascending — most selective
        first); predicates not yet exercised (zero rows tested) keep a
        neutral 1.0 so they stay behind proven selective ones.  Counters
        travel with their predicates, so selectivity estimates keep
        accumulating across re-sorts.
        """
        self._batches_seen += 1
        if not self.adaptive or self._batches_seen % REORDER_INTERVAL_BATCHES:
            return
        observed = self._observed
        if len(observed) < 2:
            return
        order = sorted(
            range(len(observed)),
            key=lambda i: (observed[i][1] / observed[i][0]) if observed[i][0] else 1.0,
        )
        if order == list(range(len(order))):
            return
        self._compiled = [self._compiled[i] for i in order]
        self._observed = [observed[i] for i in order]
        self._dict_masks = [self._dict_masks[i] for i in order]
        self.reorder_count += 1

    def _dict_mask(self, position: int, column: DictColumn, comparator, constant) -> list[bool]:
        """Pass/fail per dictionary code for one predicate (memoized).

        One comparator call per *distinct* entry, ever: the mask lives as
        long as the (append-only, source-shared) dictionary and only its
        tail of new entries is evaluated on later batches.
        """
        dictionary = column.dictionary
        cache = self._dict_masks[position]
        entry = cache.get(id(dictionary))
        if entry is None or entry[0] is not dictionary:
            mask: list[bool] = []
            cache[id(dictionary)] = (dictionary, mask)
        else:
            mask = entry[1]
        values = dictionary.values
        if len(mask) < len(values):
            start = len(mask)
            self.comparator_calls += len(values) - start
            mask.extend(comparator(value, constant) for value in values[start:])
        return mask

    def _filter_columnar(self, batch: Batch) -> Batch:
        """Filter a whole columnar batch: per-column passes, one index-take.

        Each predicate narrows a selection vector of row indices by scanning
        only its own column; the surviving indices drive a single
        :meth:`Batch.take` at the end.  A batch that passes entirely is
        returned as-is (no copies at all).  Dictionary-encoded columns
        filter by code through a memoized per-entry mask — see
        :meth:`_dict_mask` — so their comparator cost is per distinct value,
        not per row (dictionary entries are never ``None``; a column holding
        ``None`` has degraded to a plain list and takes the generic pass).
        """
        assert self._compiled is not None
        columns = batch.columns
        count = len(batch)
        observed = self._observed
        selected: list[int] | None = None
        for position, (index, comparator, constant) in enumerate(self._compiled):
            if index is None:
                return Batch.empty(batch.schema)
            column = columns[index]
            tested = count if selected is None else len(selected)
            if type(column) is DictColumn:
                mask = self._dict_mask(position, column, comparator, constant)
                codes = column.codes
                if selected is None:
                    selected = [i for i in range(count) if mask[codes[i]]]
                else:
                    selected = [i for i in selected if mask[codes[i]]]
            elif selected is None:
                selected = [
                    i
                    for i in range(count)
                    if (v := column[i]) is not None and comparator(v, constant)
                ]
                self.comparator_calls += tested
            else:
                selected = [
                    i
                    for i in selected
                    if (v := column[i]) is not None and comparator(v, constant)
                ]
                self.comparator_calls += tested
            counters = observed[position]
            counters[0] += tested
            counters[1] += len(selected)
            if not selected:
                self._maybe_reorder()
                return Batch.empty(batch.schema)
        self._maybe_reorder()
        if selected is None or len(selected) == count:
            return batch
        return batch.take(selected)

    def _filter_rows(self, batch: Batch) -> Batch:
        """Row-backed filtering with the same compiled predicates.

        Short-circuits per row, so the same selectivity counters feed the
        adaptive re-sort: a predicate is "tested" each time it runs and
        "passes" each row it lets through to the next conjunct.
        """
        assert self._compiled is not None
        compiled = self._compiled
        observed = self._observed
        out: list[Row] = []
        calls = 0
        for row in batch.rows():
            values = row.values
            for position, (index, comparator, constant) in enumerate(compiled):
                if index is None:
                    break
                value = values[index]
                calls += 1
                counters = observed[position]
                counters[0] += 1
                if value is None or not comparator(value, constant):
                    break
                counters[1] += 1
            else:
                out.append(row)
        self.comparator_calls += calls
        self._maybe_reorder()
        return Batch.from_rows(batch.schema, out)

    def _next_batch(self, max_rows: int) -> Batch:
        if self._compiled is None:
            self._compiled = self._compile_predicates()
            self._observed = [[0, 0] for _ in self._compiled]
            self._dict_masks = [{} for _ in self._compiled]
        child = self.child
        while True:
            batch = child.next_batch(max_rows)
            if not batch:
                return batch
            if batch.is_columnar:
                out = self._filter_columnar(batch)
            else:
                out = self._filter_rows(batch)
            if out:
                return out
