"""Selection operator: filters rows by a conjunction of predicates."""

from __future__ import annotations

from repro.engine.context import ExecutionContext
from repro.engine.iterators import Operator
from repro.query.conjunctive import SelectionPredicate
from repro.storage.schema import Schema
from repro.storage.tuples import Row


class Select(Operator):
    """Passes through rows satisfying every predicate."""

    def __init__(
        self,
        operator_id: str,
        context: ExecutionContext,
        child: Operator,
        predicates: list[SelectionPredicate],
        estimated_cardinality: int | None = None,
    ) -> None:
        super().__init__(
            operator_id, context, children=[child], estimated_cardinality=estimated_cardinality
        )
        self.predicates = list(predicates)

    @property
    def child(self) -> Operator:
        return self.children[0]

    @property
    def output_schema(self) -> Schema:
        return self.child.output_schema

    def peek_arrival(self) -> float | None:
        if self.state in ("closed", "deactivated"):
            return None
        return self.child.peek_arrival()

    def _matches(self, row: Row) -> bool:
        for predicate in self.predicates:
            value = row.get(f"{predicate.table}.{predicate.attr}", row.get(predicate.attr))
            if value is None or not predicate.evaluate(value):
                return False
        return True

    def _next(self) -> Row | None:
        while True:
            row = self.child.next()
            if row is None:
                return None
            if self._matches(row):
                return row
