"""Selection operator: filters rows by a conjunction of predicates."""

from __future__ import annotations

from repro.engine.context import ExecutionContext
from repro.engine.iterators import Operator
from repro.errors import SchemaError
from repro.query.conjunctive import SelectionPredicate
from repro.storage.schema import Schema
from repro.storage.tuples import Row


class Select(Operator):
    """Passes through rows satisfying every predicate."""

    def __init__(
        self,
        operator_id: str,
        context: ExecutionContext,
        child: Operator,
        predicates: list[SelectionPredicate],
        estimated_cardinality: int | None = None,
    ) -> None:
        super().__init__(
            operator_id, context, children=[child], estimated_cardinality=estimated_cardinality
        )
        self.predicates = list(predicates)
        self._resolved: list[tuple[int | None, SelectionPredicate]] | None = None

    @property
    def child(self) -> Operator:
        return self.children[0]

    @property
    def output_schema(self) -> Schema:
        return self.child.output_schema

    def peek_arrival(self) -> float | None:
        if self.state in ("closed", "deactivated"):
            return None
        return self.child.peek_arrival()

    def _matches(self, row: Row) -> bool:
        for predicate in self.predicates:
            value = row.get(f"{predicate.table}.{predicate.attr}", row.get(predicate.attr))
            if value is None or not predicate.evaluate(value):
                return False
        return True

    def _next(self) -> Row | None:
        while True:
            row = self.child.next()
            if row is None:
                return None
            if self._matches(row):
                return row

    def _resolve_predicates(self) -> list[tuple[int | None, SelectionPredicate]]:
        """Bind each predicate to a column index of the child schema.

        The tuple path resolves attribute names per row; the input schema is
        fixed once the child is open, so the batch path binds indices once.
        ``None`` marks an attribute absent from the schema — such predicates
        can never be satisfied (mirroring :meth:`_matches`, where the lookup
        yields ``None``).
        """
        schema = self.child.output_schema
        resolved: list[tuple[int | None, SelectionPredicate]] = []
        for predicate in self.predicates:
            index: int | None
            try:
                index = schema.index_of(f"{predicate.table}.{predicate.attr}")
            except SchemaError:
                try:
                    index = schema.index_of(predicate.attr)
                except SchemaError:
                    index = None
            resolved.append((index, predicate))
        return resolved

    def _next_batch(self, max_rows: int) -> list[Row]:
        if self._resolved is None:
            self._resolved = self._resolve_predicates()
        resolved = self._resolved
        child = self.child
        while True:
            batch = child.next_batch(max_rows)
            if not batch:
                return []
            out: list[Row] = []
            for row in batch:
                values = row.values
                for index, predicate in resolved:
                    if index is None:
                        break
                    value = values[index]
                    if value is None or not predicate.evaluate(value):
                        break
                else:
                    out.append(row)
            if out:
                return out
