"""Selection operator: filters rows by a conjunction of predicates."""

from __future__ import annotations

from typing import Any, Callable

from repro.engine.context import ExecutionContext
from repro.engine.iterators import Operator
from repro.errors import SchemaError
from repro.query.conjunctive import COMPARATORS, SelectionPredicate
from repro.storage.batch import Batch
from repro.storage.schema import Schema
from repro.storage.tuples import Row

#: A compiled predicate: (column index or None, comparator, constant).
CompiledPredicate = tuple[int | None, Callable[[Any, Any], bool], Any]


class Select(Operator):
    """Passes through rows satisfying every predicate."""

    def __init__(
        self,
        operator_id: str,
        context: ExecutionContext,
        child: Operator,
        predicates: list[SelectionPredicate],
        estimated_cardinality: int | None = None,
    ) -> None:
        super().__init__(
            operator_id, context, children=[child], estimated_cardinality=estimated_cardinality
        )
        self.predicates = list(predicates)
        self._compiled: list[CompiledPredicate] | None = None

    @property
    def child(self) -> Operator:
        return self.children[0]

    @property
    def output_schema(self) -> Schema:
        return self.child.output_schema

    def peek_arrival(self) -> float | None:
        if self.state in ("closed", "deactivated"):
            return None
        return self.child.peek_arrival()

    def _matches(self, row: Row) -> bool:
        for predicate in self.predicates:
            value = row.get(f"{predicate.table}.{predicate.attr}", row.get(predicate.attr))
            if value is None or not predicate.evaluate(value):
                return False
        return True

    def _next(self) -> Row | None:
        while True:
            row = self.child.next()
            if row is None:
                return None
            if self._matches(row):
                return row

    def _compile_predicates(self) -> list[CompiledPredicate]:
        """Bind each predicate to a column index and a raw comparator, once.

        The tuple path resolves attribute names (and the comparator table) per
        row; the input schema is fixed once the child is open, so the batch
        evaluator binds column indices and comparator callables a single time
        and then filters whole batches with plain ``comparator(value, const)``
        calls.  ``None`` marks an attribute absent from the schema — such
        predicates can never be satisfied (mirroring :meth:`_matches`, where
        the lookup yields ``None``).
        """
        schema = self.child.output_schema
        compiled: list[CompiledPredicate] = []
        for predicate in self.predicates:
            index: int | None
            try:
                index = schema.index_of(f"{predicate.table}.{predicate.attr}")
            except SchemaError:
                try:
                    index = schema.index_of(predicate.attr)
                except SchemaError:
                    index = None
            compiled.append((index, COMPARATORS[predicate.op], predicate.value))
        return compiled

    def _filter_columnar(self, batch: Batch) -> Batch:
        """Filter a whole columnar batch: per-column passes, one index-take.

        Each predicate narrows a selection vector of row indices by scanning
        only its own column; the surviving indices drive a single
        :meth:`Batch.take` at the end.  A batch that passes entirely is
        returned as-is (no copies at all).
        """
        assert self._compiled is not None
        columns = batch.columns
        count = len(batch)
        selected: list[int] | None = None
        for index, comparator, constant in self._compiled:
            if index is None:
                return Batch.empty(batch.schema)
            column = columns[index]
            if selected is None:
                selected = [
                    i
                    for i in range(count)
                    if (v := column[i]) is not None and comparator(v, constant)
                ]
            else:
                selected = [
                    i
                    for i in selected
                    if (v := column[i]) is not None and comparator(v, constant)
                ]
            if not selected:
                return Batch.empty(batch.schema)
        if selected is None or len(selected) == count:
            return batch
        return batch.take(selected)

    def _filter_rows(self, batch: Batch) -> Batch:
        """Row-backed filtering with the same compiled predicates."""
        assert self._compiled is not None
        compiled = self._compiled
        out: list[Row] = []
        for row in batch.rows():
            values = row.values
            for index, comparator, constant in compiled:
                if index is None:
                    break
                value = values[index]
                if value is None or not comparator(value, constant):
                    break
            else:
                out.append(row)
        return Batch.from_rows(batch.schema, out)

    def _next_batch(self, max_rows: int) -> Batch:
        if self._compiled is None:
            self._compiled = self._compile_predicates()
        child = self.child
        while True:
            batch = child.next_batch(max_rows)
            if not batch:
                return batch
            if batch.is_columnar:
                out = self._filter_columnar(batch)
            else:
                out = self._filter_rows(batch)
            if out:
                return out
