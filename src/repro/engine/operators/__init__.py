"""Runtime operators of the Tukwila execution engine."""

from repro.engine.operators.choose import ChooseNode
from repro.engine.operators.collector import DynamicCollector
from repro.engine.operators.exchange import Exchange, ExchangeSource
from repro.engine.operators.joins import (
    DependentJoin,
    DoublePipelinedJoin,
    HybridHashJoin,
    JoinOperator,
    NestedLoopsJoin,
)
from repro.engine.operators.materialize import Materialize
from repro.engine.operators.project import Project
from repro.engine.operators.scan import TableScan, WrapperScan
from repro.engine.operators.select import Select
from repro.engine.operators.union import Union

__all__ = [
    "ChooseNode",
    "DependentJoin",
    "DoublePipelinedJoin",
    "DynamicCollector",
    "Exchange",
    "ExchangeSource",
    "HybridHashJoin",
    "JoinOperator",
    "Materialize",
    "NestedLoopsJoin",
    "Project",
    "Select",
    "TableScan",
    "Union",
    "WrapperScan",
]
