"""Choose nodes: runtime selection among precompiled alternative subplans.

Following Graefe and Ward's choose nodes, a :class:`ChooseNode` holds several
alternative children of which exactly one is executed.  The decision can be
made by a rule (the ``select_fragment`` action routed to :meth:`select`) or by
a default policy (pick the first alternative whose sources are all
responsive).
"""

from __future__ import annotations

from repro.engine.context import ExecutionContext
from repro.engine.iterators import Operator
from repro.errors import ExecutionError
from repro.storage.batch import Batch
from repro.storage.schema import Schema, merge_union_schema
from repro.storage.tuples import Row


class ChooseNode(Operator):
    """Executes exactly one of its alternative children."""

    def __init__(
        self,
        operator_id: str,
        context: ExecutionContext,
        children: list[Operator],
        estimated_cardinality: int | None = None,
    ) -> None:
        if not children:
            raise ExecutionError("choose node requires at least one alternative")
        super().__init__(
            operator_id, context, children=children, estimated_cardinality=estimated_cardinality
        )
        self._selected: Operator | None = None
        self._schema: Schema | None = None

    @property
    def output_schema(self) -> Schema:
        if self._schema is None:
            schema = self.children[0].output_schema
            for child in self.children[1:]:
                schema = merge_union_schema(schema, child.output_schema)
            self._schema = schema
        return self._schema

    @property
    def selected_id(self) -> str | None:
        return self._selected.operator_id if self._selected is not None else None

    def select(self, child_id: str) -> None:
        """Pick which alternative to run (idempotent before the first tuple)."""
        for child in self.children:
            if child.operator_id == child_id:
                self._selected = child
                return
        raise ExecutionError(
            f"choose node {self.operator_id!r} has no alternative {child_id!r}"
        )

    def open(self) -> None:  # noqa: D102 - defers opening to the selected child only
        if self.state == "open":
            return
        self.state = "open"
        self._stats.state = "open"
        from repro.plan.rules import EventType

        self.context.emit_event(EventType.OPENED, self.operator_id)

    def _default_selection(self) -> Operator:
        """Pick the first alternative none of whose sources is deactivated."""
        for child in self.children:
            blocked = any(
                self.context.is_deactivated(op_id) for op_id in _operator_ids_of(child)
            )
            if not blocked:
                return child
        return self.children[0]

    def _ensure_selected(self) -> Operator:
        if self._selected is None:
            self._selected = self._default_selection()
        if self._selected.state == "pending":
            self._selected.open()
        return self._selected

    def _next(self) -> Row | None:
        return self._ensure_selected().next()

    def _next_batch(self, max_rows: int) -> Batch:
        # Pass-through: the chosen alternative's batches (columnar or not)
        # flow on unchanged, matching the tuple path's row pass-through.
        return self._ensure_selected().next_batch(max_rows)

    def _next_batch_bounded(self, max_rows: int, arrival_bound: float) -> Batch:
        return self._ensure_selected().next_batch_bounded(max_rows, arrival_bound)

    def peek_arrival(self) -> float | None:
        if self.state in ("closed", "deactivated"):
            return None
        if self._selected is None:
            return self.context.clock.now
        return self._selected.peek_arrival()


def _operator_ids_of(operator: Operator) -> list[str]:
    """All operator ids in a runtime subtree."""
    out = [operator.operator_id]
    for child in operator.children:
        out.extend(_operator_ids_of(child))
    return out
