"""Projection operator: restricts rows to a list of attributes."""

from __future__ import annotations

from repro.engine.context import ExecutionContext
from repro.engine.iterators import Operator
from repro.storage.batch import Batch
from repro.storage.schema import Schema
from repro.storage.tuples import Row


class Project(Operator):
    """Projects each input row onto the configured attribute list."""

    def __init__(
        self,
        operator_id: str,
        context: ExecutionContext,
        child: Operator,
        attributes: list[str],
        estimated_cardinality: int | None = None,
    ) -> None:
        super().__init__(
            operator_id, context, children=[child], estimated_cardinality=estimated_cardinality
        )
        self.attributes = list(attributes)
        self._schema: Schema | None = None
        self._indices: list[int] | None = None

    @property
    def child(self) -> Operator:
        return self.children[0]

    @property
    def output_schema(self) -> Schema:
        if self._schema is None:
            self._schema = self.child.output_schema.project(self.attributes)
        return self._schema

    def peek_arrival(self) -> float | None:
        if self.state in ("closed", "deactivated"):
            return None
        return self.child.peek_arrival()

    def _next(self) -> Row | None:
        row = self.child.next()
        if row is None:
            return None
        return row.project(self.attributes, self.output_schema)

    def _next_batch(self, max_rows: int) -> Batch:
        if self._indices is None:
            # The input schema is fixed once the child is open; bind the
            # projected attribute positions once instead of per row.
            child_schema = self.child.output_schema
            self._indices = [child_schema.index_of(name) for name in self.attributes]
        indices = self._indices
        schema = self.output_schema
        batch = self.child.next_batch(max_rows)
        if not batch:
            return Batch.empty(schema)
        if batch.is_columnar:
            # Columnar projection is pure column selection: the output batch
            # aliases the chosen column lists, copying nothing.
            return batch.select_columns(indices, schema)
        return Batch.from_rows(
            schema,
            [
                Row.make(schema, tuple(row.values[i] for i in indices), row.arrival)
                for row in batch.rows()
            ],
        )
