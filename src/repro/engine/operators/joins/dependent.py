"""Dependent join: bind-and-fetch over a source with limited query capability.

Some sources can only be queried with bindings (for example a web form that
requires an ISBN).  The dependent join streams its left input and, for each
left tuple, issues a parameterized fetch to the right-hand source for the
matching tuples.  Each probe pays the source's access latency, which is what
makes dependent joins expensive over high-latency links and why the optimizer
only uses them when the source demands bindings.
"""

from __future__ import annotations

from typing import Any

from repro.engine.context import ExecutionContext
from repro.engine.iterators import Operator
from repro.errors import ExecutionError
from repro.storage.schema import Schema
from repro.storage.tuples import Row


class DependentJoin(Operator):
    """Bind-join between a streaming left input and a lookup source."""

    def __init__(
        self,
        operator_id: str,
        context: ExecutionContext,
        left: Operator,
        source_name: str,
        left_keys: list[str],
        right_keys: list[str],
        estimated_cardinality: int | None = None,
    ) -> None:
        if len(left_keys) != len(right_keys):
            raise ExecutionError("dependent join key lists must have the same length")
        super().__init__(
            operator_id, context, children=[left], estimated_cardinality=estimated_cardinality
        )
        self.source_name = source_name
        self.left_keys = list(left_keys)
        self.right_keys = list(right_keys)
        self._source = context.catalog.source(source_name)
        self._right_schema = self._source.exported_schema
        self._schema: Schema | None = None
        self._index: dict[tuple[Any, ...], list[Row]] | None = None
        self._pending: list[Row] = []
        self.probes = 0

    @property
    def left(self) -> Operator:
        return self.children[0]

    @property
    def output_schema(self) -> Schema:
        if self._schema is None:
            self._schema = self.left.output_schema.join(self._right_schema)
        return self._schema

    def _build_index(self) -> None:
        """Index the source contents by the bound key (kept at the source side)."""
        index: dict[tuple[Any, ...], list[Row]] = {}
        for row in self._source.relation.qualified():
            index.setdefault(row.key(self.right_keys), []).append(row)
        self._index = index

    def _probe_source(self, key: tuple[Any, ...]) -> list[Row]:
        """One parameterized fetch: pays the source round-trip latency."""
        if self._index is None:
            self._build_index()
        self.probes += 1
        profile = self._source.profile
        matches = self._index.get(key, []) if self._index else []
        transfer = sum(profile.transfer_ms(row.size_bytes) for row in matches)
        self.context.clock.consume_cpu(0.0)  # explicit: probe CPU is negligible
        self.context.clock.advance_to(
            self.context.clock.now + profile.initial_latency_ms + transfer
        )
        return matches

    def _next(self) -> Row | None:
        while True:
            if self._pending:
                return self._pending.pop(0)
            left_row = self.left.next()
            if left_row is None:
                return None
            key = left_row.key(self.left_keys)
            for match in self._probe_source(key):
                self._pending.append(left_row.concat(match, self.output_schema))
