"""Dependent join: bind-and-fetch over a source with limited query capability.

Some sources can only be queried with bindings (for example a web form that
requires an ISBN).  The dependent join streams its left input and, for each
left tuple, issues a parameterized fetch to the right-hand source for the
matching tuples.  Each probe pays the source's access latency, which is what
makes dependent joins expensive over high-latency links and why the optimizer
only uses them when the source demands bindings.

Two layers of caching (the paper's §8 "caching of source data" extension)
keep duplicate work off the network:

* A **per-query probe memo** remembers the answer to every bind key already
  probed, so duplicate left keys pay the source round-trip exactly once.
  Hits are counted on the operator (``cache_hits``) and in the runtime
  stats (``cache_hits`` on the operator's stats record).
* When the execution context carries a
  :class:`~repro.network.cache.SourceCache` holding this source's full
  extent (a prior scan read it to completion), *all* probes are served at
  local CPU speed — no per-probe network latency at all.
"""

from __future__ import annotations

from typing import Any

from repro.engine.context import ExecutionContext
from repro.engine.iterators import Operator
from repro.errors import ExecutionError
from repro.network.cache import CACHE_SERVE_CPU_MS
from repro.storage.batch import Batch, BatchCursor, gather_join_columns
from repro.storage.columns import build_columns, make_dictionaries
from repro.storage.schema import Schema
from repro.storage.tuples import KeyBinder, Row


class DependentJoin(Operator):
    """Bind-join between a streaming left input and a lookup source."""

    def __init__(
        self,
        operator_id: str,
        context: ExecutionContext,
        left: Operator,
        source_name: str,
        left_keys: list[str],
        right_keys: list[str],
        estimated_cardinality: int | None = None,
        probe_cache: bool = True,
    ) -> None:
        if len(left_keys) != len(right_keys):
            raise ExecutionError("dependent join key lists must have the same length")
        super().__init__(
            operator_id, context, children=[left], estimated_cardinality=estimated_cardinality
        )
        self.source_name = source_name
        self.left_keys = list(left_keys)
        self.right_keys = list(right_keys)
        self._source = context.catalog.source(source_name)
        self._right_schema = self._source.exported_schema
        self._schema: Schema | None = None
        self._index: dict[tuple[Any, ...], list[Row]] | None = None
        self._pending: list[Row] = []
        self._pending_out: BatchCursor | None = None
        self._left_binder = KeyBinder(left_keys)
        self._memo: dict[tuple[Any, ...], list[Row]] | None = {} if probe_cache else None
        #: Per-key transposed match columns ``(columns, arrivals)``, so the
        #: columnar probe path assembles output with per-column extends and a
        #: duplicate bind key never pays the row->column transpose twice.
        #: The column lists alias the same value objects the memo's rows
        #: hold (Python containers store references), so the overhead is the
        #: per-value pointer, not a second copy of the payload.
        self._match_columns: dict[tuple[Any, ...], tuple[list, list[float]]] = {}
        self._cache_dictionaries = None
        self._cached_extent = False
        #: Speculative source layer: keep checking for the extent to appear
        #: mid-run (another session's stream completing upgrades the
        #: remaining probes to local serving).
        self._speculative = (
            context.config.speculative_sources and context.source_cache is not None
        )
        self.probes = 0
        self.cache_hits = 0

    @property
    def left(self) -> Operator:
        return self.children[0]

    @property
    def output_schema(self) -> Schema:
        if self._schema is None:
            self._schema = self.left.output_schema.join(self._right_schema)
        return self._schema

    def _do_open(self) -> None:
        cache = self.context.source_cache
        if cache is not None:
            entry = cache.lookup(
                self.source_name, self.context.clock.now, session=self.context.session_id
            )
            if entry is not None and len(entry.schema) == len(self._right_schema):
                self._adopt_entry(entry)

    def _adopt_entry(self, entry) -> None:
        """Build the probe index from a cached full extent; serve locally."""
        index: dict[tuple[Any, ...], list[Row]] = {}
        binder = KeyBinder(self.right_keys)
        make = Row.make
        for row in entry.rows:
            # Re-stamp to arrival 0 so join outputs carry the left
            # row's arrival, exactly as with source-side lookups.
            local = make(row.schema, row.values, 0.0)
            index.setdefault(binder.key(local), []).append(local)
        self._index = index
        self._cached_extent = True

    def _try_adopt_cached_extent(self) -> None:
        """Mid-run upgrade: adopt the extent if it became visible since open.

        Under the speculative source layer another session's stream can
        complete while this join is mid-probe; from that (virtual) moment the
        remaining probes are in-memory lookups.  Probing a *partial* extent
        is deliberately not attempted — a probe must return all matches, and
        a prefix cannot prove completeness for any key.
        """
        cache = self.context.source_cache
        now = self.context.clock.now
        entry = cache.peek(self.source_name, now, self.context.session_id)
        if entry is None or len(entry.schema) != len(self._right_schema):
            return
        # One real lookup so hit accounting matches the open-time path.
        entry = cache.lookup(self.source_name, now, session=self.context.session_id)
        if entry is not None:
            self._adopt_entry(entry)

    def _build_index(self) -> None:
        """Index the source contents by the bound key (kept at the source side)."""
        index: dict[tuple[Any, ...], list[Row]] = {}
        for row in self._source.relation.qualified():
            index.setdefault(row.key(self.right_keys), []).append(row)
        self._index = index

    def _probe_source(self, key: tuple[Any, ...]) -> list[Row]:
        """One parameterized fetch; memoized so duplicate keys pay latency once."""
        if self._speculative and not self._cached_extent:
            self._try_adopt_cached_extent()
        if self._index is None:
            self._build_index()
        memo = self._memo
        if memo is not None:
            hit = memo.get(key)
            if hit is not None:
                self.cache_hits += 1
                self._stats.cache_hits += 1
                self.context.clock.consume_cpu(CACHE_SERVE_CPU_MS * (1 + len(hit)))
                return hit
        self.probes += 1
        matches = self._index.get(key, []) if self._index else []
        if self._cached_extent:
            # Full extent cached locally: a probe is an in-memory lookup.
            self.context.clock.consume_cpu(CACHE_SERVE_CPU_MS * (1 + len(matches)))
        else:
            profile = self._source.profile
            transfer = sum(profile.transfer_ms(row.size_bytes) for row in matches)
            self.context.clock.consume_cpu(0.0)  # explicit: probe CPU is negligible
            self.context.clock.advance_to(
                self.context.clock.now + profile.initial_latency_ms + transfer
            )
        if memo is not None:
            memo[key] = matches
        return matches

    def _next(self) -> Row | None:
        if self._pending_out is not None:
            # Output left behind by a batch caller on the same operator.
            row = self._pending_out.next_row()
            if row is not None:
                return row
            self._pending_out = None
        while True:
            if self._pending:
                return self._pending.pop(0)
            left_row = self.left.next()
            if left_row is None:
                return None
            key = left_row.key(self.left_keys)
            for match in self._probe_source(key):
                self._pending.append(left_row.concat(match, self.output_schema))

    def _probe_source_columns(self, key: tuple[Any, ...]) -> tuple[list, list[float]]:
        """One probe's matches as transposed ``(columns, arrivals)``.

        Wraps :meth:`_probe_source` (which owns all clock accounting and the
        probe memo) and — only while the probe memo is enabled — caches the
        transposed column view per bind key, so repeated keys feed the
        columnar output assembly without re-transposing the same match rows.
        With ``probe_cache=False`` nothing is retained, honouring the
        no-caching opt-out.
        """
        matches = self._probe_source(key)
        if self._memo is None:
            width = len(self._right_schema)
            return (
                [[row.values[j] for row in matches] for j in range(width)],
                [row.arrival for row in matches],
            )
        cached = self._match_columns.get(key)
        if cached is None:
            # Cached entries live for the whole probe phase, so they store
            # typed/encoded columns (dict codes for strings when encoding is
            # on) — the same footprint discipline the hash tables apply.
            if self._cache_dictionaries is None and self.context.encoded_columns:
                self._cache_dictionaries = make_dictionaries(self._right_schema)
            cached = (
                build_columns(
                    self._right_schema,
                    [[row.values[j] for row in matches] for j in range(len(self._right_schema))],
                    self.context.encoded_columns,
                    self._cache_dictionaries,
                ),
                [row.arrival for row in matches],
            )
            self._match_columns[key] = cached
        return cached

    def _probe_left_batch(self, left_batch: Batch) -> Batch | None:
        """All matches for one left batch; ``None`` when nothing matched.

        Keys come from the batch's key columns when it is columnar; the
        probes themselves stay per-key (each is a parameterized source fetch,
        memo-deduplicated), and the output batch is assembled from cached
        per-key match columns with one gather per column.
        """
        if left_batch.is_columnar:
            keys = left_batch.key_tuples(self._left_binder.indices_in(left_batch.schema))
            width = len(self._right_schema)
            take: list[int] = []
            match_columns: list[list[Any]] = [[] for _ in range(width)]
            match_arrivals: list[float] = []
            aligned = True
            for position, key in enumerate(keys):
                columns, arrivals = self._probe_source_columns(key)
                found = len(arrivals)
                if not found:
                    aligned = False
                    continue
                if found == 1:
                    take.append(position)
                else:
                    aligned = False
                    take.extend([position] * found)
                for acc, column in zip(match_columns, columns):
                    acc.extend(column)
                match_arrivals.extend(arrivals)
            if not take:
                return None
            return gather_join_columns(
                left_batch,
                take,
                match_columns,
                match_arrivals,
                self.output_schema,
                aligned,
            )
        out: list[Row] = []
        schema = self.output_schema
        binder = self._left_binder
        for left_row in left_batch.rows():
            for match in self._probe_source(binder.key(left_row)):
                out.append(left_row.concat(match, schema))
        if not out:
            return None
        return Batch.from_rows(schema, out)

    def _next_batch(self, max_rows: int) -> Batch:
        return self._batched(max_rows, None)

    def _next_batch_bounded(self, max_rows: int, arrival_bound: float) -> Batch:
        return self._batched(max_rows, arrival_bound)

    def _batched(self, max_rows: int, arrival_bound: float | None) -> Batch:
        schema = self.output_schema
        while True:
            if self._pending_out is not None:
                part = self._pending_out.take(max_rows)
                if not self._pending_out:
                    self._pending_out = None
                if part:
                    return part
            if self._pending:
                # Leftovers from a tuple-at-a-time caller on the same operator.
                rows = self._pending[:max_rows]
                del self._pending[:max_rows]
                return Batch.from_rows(schema, rows)
            if arrival_bound is None:
                left_batch = self.left.next_batch(max_rows)
            else:
                left_batch = self.left.next_batch_bounded(max_rows, arrival_bound)
            if not left_batch:
                # Unbounded: left exhausted — end of stream.  Bounded:
                # possibly just the bound; the caller falls back to next().
                return Batch.empty(schema)
            result = self._probe_left_batch(left_batch)
            if result is not None:
                self._pending_out = BatchCursor(result)
