"""The double pipelined hash join (Section 4.2.2) with overflow resolution.

The double pipelined join (DPJ) is symmetric and incremental: each arriving
tuple probes the opposite input's hash table and is then inserted into its
own side's table, so results are produced as soon as matching tuples have
arrived from both inputs.  The original implementation is data-driven via
threads; here the join pulls from whichever child can deliver a tuple at the
earlier virtual time, which yields the same interleaving deterministically.

Two memory-overflow strategies from Section 4.2.3 are implemented:

* **Incremental Left Flush** — on overflow, flush buckets from the left
  input's hash table and switch to draining the right input; resume the left
  input once the right is exhausted.  Output stalls while the right side is
  drained, then resumes (the "abrupt" curve of Figure 4).
* **Incremental Symmetric Flush** — on overflow, pick one bucket and flush it
  from *both* hash tables; both inputs keep streaming, so output continues
  smoothly but the in-memory fraction (and hence the match rate) shrinks.

Correctness with spilling relies on a marking discipline: tuples flushed
while resident are written *unmarked*; tuples that arrive after their bucket
was flushed are written *marked* and are not probed live.  During the final
overflow resolution, every pair is emitted except unmarked-with-unmarked —
those pairs were already produced while both tuples were resident.
"""

from __future__ import annotations

from typing import Any, Iterator

from repro.engine.context import ExecutionContext
from repro.engine.iterators import Operator
from repro.engine.operators.joins.base import JoinOperator
from repro.errors import MemoryOverflowError
from repro.plan.physical import OverflowMethod
from repro.plan.rules import EventType
from repro.storage.batch import Batch
from repro.storage.hash_table import BucketedHashTable, DEFAULT_BUCKET_COUNT, bucket_of
from repro.storage.memory import MemoryBudget
from repro.storage.tuples import Row

#: Side identifiers (also used as indices into per-side lists).
LEFT, RIGHT = 0, 1

#: Maximum rows consumed from one input per arrival-bounded run (batch path).
RUN_LENGTH = 128

#: Virtual-time lookahead allowed when consuming a run (batch path).  The
#: original engine's per-child threads buffered tuples ahead of the join;
#: letting a run overshoot the other side's next arrival by this window models
#: that queueing while keeping consumption deterministic and (at run
#: granularity) data-driven.
RUN_SLACK_MS = 5.0


class DoublePipelinedJoin(JoinOperator):
    """Symmetric, incremental hash join with pluggable overflow resolution."""

    def __init__(
        self,
        operator_id: str,
        context: ExecutionContext,
        left: Operator,
        right: Operator,
        left_keys: list[str],
        right_keys: list[str],
        memory_limit_bytes: int | None = None,
        bucket_count: int = DEFAULT_BUCKET_COUNT,
        overflow_method: OverflowMethod | str = OverflowMethod.LEFT_FLUSH,
        estimated_cardinality: int | None = None,
    ) -> None:
        super().__init__(
            operator_id, context, left, right, left_keys, right_keys, estimated_cardinality
        )
        self.budget: MemoryBudget = context.memory_pool.grant(operator_id, memory_limit_bytes)
        self.bucket_count = bucket_count
        self.overflow_method = OverflowMethod(overflow_method)
        self._tables: list[BucketedHashTable] = []
        self._exhausted = [False, False]
        self._drain_right_first = False
        self._pending: list[Row] = []
        self._cleanup: Iterator[Row] | None = None
        # Batch path only: per-side run buffers (rows already consumed from a
        # child in bulk because they all arrive before the other side's next).
        # When a run arrives as a columnar batch, its join keys are extracted
        # in bulk from the key columns and consumed alongside the rows.
        self._input_buffers: list[list[Row]] = [[], []]
        self._buffer_keys: list[list[tuple[Any, ...]] | None] = [None, None]
        self._buffer_cursors = [0, 0]
        self._popped_key: tuple[Any, ...] | None = None
        self._emitted_output = False
        self.overflow_count = 0

    # -- configuration hooks (rule actions) -------------------------------------------------

    def set_overflow_method(self, method: OverflowMethod | str) -> None:
        """Change the overflow strategy (the ``set overflow method`` rule action)."""
        self.overflow_method = OverflowMethod(method)

    # -- lifecycle -----------------------------------------------------------------------------

    def _do_open(self) -> None:
        self._tables = [
            BucketedHashTable(
                self.left_keys,
                self.budget,
                self.context.disk,
                bucket_count=self.bucket_count,
                name=f"{self.operator_id}-left",
            ),
            BucketedHashTable(
                self.right_keys,
                self.budget,
                self.context.disk,
                bucket_count=self.bucket_count,
                name=f"{self.operator_id}-right",
            ),
        ]

    def _do_close(self) -> None:
        for table in self._tables:
            table.release_all()
        self.context.memory_pool.revoke(self.operator_id)

    # -- child selection (the data-driven behaviour) ---------------------------------------------

    def _child(self, side: int) -> Operator:
        return self.children[side]

    def _choose_side(self) -> int | None:
        """Pick which input to consume next, or ``None`` when both are done.

        Arrivals are taken from the run buffers first (see
        :meth:`_pull_buffered`); with empty buffers — always the case under a
        pure tuple-at-a-time drive — this is the plain data-driven choice over
        the children's ``peek_arrival``.
        """
        if self._exhausted[LEFT] and self._exhausted[RIGHT]:
            return None
        if self._drain_right_first and not self._exhausted[RIGHT]:
            return RIGHT
        if self._exhausted[LEFT]:
            return RIGHT
        if self._exhausted[RIGHT]:
            return LEFT
        left_arrival = self._peek_side(LEFT)
        right_arrival = self._peek_side(RIGHT)
        if left_arrival is None:
            self._exhausted[LEFT] = True
            return RIGHT
        if right_arrival is None:
            self._exhausted[RIGHT] = True
            return LEFT
        # Prefer the input whose next tuple arrives earlier; alternate on ties
        # by favouring the side with fewer tuples consumed so far.
        if left_arrival < right_arrival:
            return LEFT
        if right_arrival < left_arrival:
            return RIGHT
        return LEFT if self._tables[LEFT].total_inserted <= self._tables[RIGHT].total_inserted else RIGHT

    # -- batch-path input runs -----------------------------------------------------------------------

    def _side_has_buffer(self, side: int) -> bool:
        return self._buffer_cursors[side] < len(self._input_buffers[side])

    def _peek_side(self, side: int) -> float | None:
        """Arrival of side's next row, looking at its run buffer first."""
        if self._side_has_buffer(side):
            return self._input_buffers[side][self._buffer_cursors[side]].arrival
        return self._child(side).peek_arrival()

    def _pop_buffered(self, side: int) -> Row | None:
        """Next already-buffered row of ``side``, or ``None`` when none is held.

        Sets :attr:`_popped_key` to the row's precomputed join key when the
        run arrived columnar (``None`` otherwise — the caller computes it).
        """
        cursor = self._buffer_cursors[side]
        buffer = self._input_buffers[side]
        if cursor >= len(buffer):
            self._popped_key = None
            return None
        self._buffer_cursors[side] = cursor + 1
        keys = self._buffer_keys[side]
        self._popped_key = keys[cursor] if keys is not None else None
        return buffer[cursor]

    def _pull_buffered(self, side: int) -> Row | None:
        """Next row of ``side``: run buffer first, then a bulk run, then one step.

        A *run* consumes every row arriving before the other side's next
        arrival plus a small lookahead window (:data:`RUN_SLACK_MS`) — the
        rows the original engine's per-child reader thread would have had
        queued.  When the run comes back empty (an operator without arrival
        knowledge whose next row is past the window), a single
        :meth:`Operator.next` keeps progress exact.
        """
        row = self._pop_buffered(side)
        if row is not None:
            return row
        other = 1 - side
        if self._exhausted[other]:
            bound = float("inf")
        else:
            other_arrival = self._peek_side(other)
            if other_arrival is None:
                bound = float("inf")
            elif self._emitted_output:
                bound = other_arrival + RUN_SLACK_MS
            else:
                # Before the first output the lookahead window stays closed so
                # time-to-first-tuple matches the tuple-at-a-time drive exactly
                # (the paper's headline DPJ metric).
                bound = other_arrival
        # The symmetric pipeline boxes every run row anyway (hash-table
        # inserts), so pull the run row-backed.
        with self.context.row_backed_pulls():
            run = self._child(side).next_batch_bounded(RUN_LENGTH, bound)
        if not run:
            self._popped_key = None
            return self._child(side).next()
        rows = run.rows()
        self._input_buffers[side] = rows
        # Bulk key extraction for the whole run — the per-row KeyBinder
        # lookup is the probe loop's hottest scalar cost.
        binder = self._left_binder if side == LEFT else self._right_binder
        keys = run.key_tuples(binder.indices_in(run.schema))
        self._buffer_keys[side] = keys
        self._buffer_cursors[side] = 1
        self._popped_key = keys[0]
        return rows[0]

    # -- tuple processing ----------------------------------------------------------------------------

    def _bucket_spilled(self, index: int) -> bool:
        return self._tables[LEFT].buckets[index].flushed or self._tables[RIGHT].buckets[index].flushed

    def _spill_arriving(self, side: int, index: int, row: Row, marked: bool = True) -> None:
        """Send an arriving tuple straight to its side's overflow file.

        ``marked=True`` records that the tuple never probed the opposite
        side's resident rows (it arrived after the bucket spilled); the final
        overflow resolution joins marked tuples against everything.  A tuple
        that *did* probe before its bucket spilled is written unmarked so its
        already-emitted pairs are not produced again.
        """
        table = self._tables[side]
        bucket = table.buckets[index]
        table._ensure_overflow(bucket).write(row, marked=marked)
        self._charge_disk_time()

    def _process(self, side: int, row: Row, key: tuple[Any, ...] | None = None) -> None:
        """Probe, emit, and insert one arriving tuple (key may be precomputed)."""
        other = 1 - side
        if key is None:
            key = self.left_key(row) if side == LEFT else self.right_key(row)
        index = bucket_of(key, self.bucket_count)
        tables = self._tables
        if tables[LEFT].buckets[index].flushed or tables[RIGHT].buckets[index].flushed:
            self._spill_arriving(side, index, row)
            return
        # Probe the opposite side's resident rows (both tables share the
        # bucket count, so the bucket index computed above is reusable).
        matches = tables[other].buckets[index].rows.get(key)
        if matches:
            self._emitted_output = True
            schema = self.output_schema
            pending = self._pending
            values = row.values
            arrival = row.arrival
            make = Row.make
            for match in matches:
                joined_values = (
                    values + match.values if side == LEFT else match.values + values
                )
                pending.append(
                    make(
                        schema,
                        joined_values,
                        arrival if arrival >= match.arrival else match.arrival,
                    )
                )
        # Once the opposite input is exhausted there is no need to retain this
        # tuple (footnote 3 of the paper) unless its bucket later spills —
        # which cannot affect it because all of its matches were resident.
        if self._exhausted[other]:
            return
        self._insert_with_overflow(side, row, key, index)

    def _insert_with_overflow(
        self, side: int, row: Row, key: tuple[Any, ...], index: int
    ) -> None:
        table = self._tables[side]
        while True:
            if table.buckets[index].flushed:
                # The overflow strategy spilled this row's bucket while we were
                # trying to insert it.  The row has already probed the opposite
                # side's resident rows, so it spills unmarked — exactly like
                # the resident rows that were just flushed alongside it.
                self._spill_arriving(side, index, row, marked=False)
                return
            if table.insert(row, key=key):
                return
            self._resolve_overflow()

    # -- overflow resolution -------------------------------------------------------------------------------

    def _resolve_overflow(self) -> None:
        """Free memory according to the configured strategy."""
        self.overflow_count += 1
        self._stats.overflow_events += 1
        self.context.emit_event(EventType.OUT_OF_MEMORY, self.operator_id)
        if self.overflow_method == OverflowMethod.FAIL:
            raise MemoryOverflowError(
                f"{self.operator_id}: memory exhausted and overflow resolution disabled"
            )
        if self.overflow_method == OverflowMethod.SYMMETRIC_FLUSH:
            self._symmetric_flush()
        else:
            self._left_flush()
        self._charge_disk_time()

    def _symmetric_flush(self) -> None:
        """Flush the bucket with the most combined resident bytes from both tables."""
        best_index, best_bytes = None, -1
        for index in range(self.bucket_count):
            combined = (
                self._tables[LEFT].buckets[index].resident_bytes
                + self._tables[RIGHT].buckets[index].resident_bytes
            )
            if combined > best_bytes and not self._bucket_spilled(index):
                best_index, best_bytes = index, combined
        if best_index is None or best_bytes <= 0:
            raise MemoryOverflowError(
                f"{self.operator_id}: no resident bucket left to flush symmetrically"
            )
        self._tables[LEFT].flush_bucket(best_index)
        self._tables[RIGHT].flush_bucket(best_index)

    def _left_flush(self) -> None:
        """Flush a left-side bucket (falling back to the right side), pause the left input."""
        self._drain_right_first = True
        flushed = self._tables[LEFT].flush_largest_bucket()
        if flushed is not None:
            return
        flushed = self._tables[RIGHT].flush_largest_bucket()
        if flushed is None:
            raise MemoryOverflowError(
                f"{self.operator_id}: both hash tables are empty yet memory is exhausted"
            )

    # -- overflow resolution output (the final phase) ---------------------------------------------------------

    def _cleanup_pairs(self) -> Iterator[Row]:
        """Join the spilled buckets, skipping pairs already produced live."""
        for index in range(self.bucket_count):
            left_bucket = self._tables[LEFT].buckets[index]
            right_bucket = self._tables[RIGHT].buckets[index]
            has_disk = (left_bucket.overflow is not None and len(left_bucket.overflow) > 0) or (
                right_bucket.overflow is not None and len(right_bucket.overflow) > 0
            )
            if not has_disk:
                continue
            left_entries: list[tuple[Row, bool]] = []
            right_entries: list[tuple[Row, bool]] = []
            if left_bucket.overflow is not None:
                left_entries.extend(left_bucket.overflow.read())
            if right_bucket.overflow is not None:
                right_entries.extend(right_bucket.overflow.read())
            self._charge_disk_time()
            # Resident remnants participate as unmarked entries (no read cost).
            for rows in left_bucket.rows.values():
                left_entries.extend((row, False) for row in rows)
            for rows in right_bucket.rows.values():
                right_entries.extend((row, False) for row in rows)
            right_by_key: dict[tuple[Any, ...], list[tuple[Row, bool]]] = {}
            for row, marked in right_entries:
                right_by_key.setdefault(self.right_key(row), []).append((row, marked))
            for left_row, left_marked in left_entries:
                for right_row, right_marked in right_by_key.get(self.left_key(left_row), ()):
                    if not left_marked and not right_marked:
                        continue  # both were resident when they met: already emitted
                    yield self.join_rows(left_row, right_row)

    # -- iterator -------------------------------------------------------------------------------------------------

    def _next(self) -> Row | None:
        while True:
            if self._pending:
                return self._pending.pop(0)
            if self._cleanup is not None:
                row = next(self._cleanup, None)
                if row is None:
                    return None
                return row
            side = self._choose_side()
            if side is None:
                self._cleanup = self._cleanup_pairs()
                continue
            row = self._pop_buffered(side)
            key = self._popped_key
            if row is None:
                row = self._child(side).next()
            if row is None:
                self._exhausted[side] = True
                if side == RIGHT and self._drain_right_first:
                    # Right side drained: resume reading the paused left input.
                    self._drain_right_first = False
                continue
            self._process(side, row, key)

    def _next_batch(self, max_rows: int) -> Batch:
        return self._produce_batch(max_rows, None)

    def _next_batch_bounded(self, max_rows: int, arrival_bound: float) -> Batch:
        # Mirrors the generic bounded fallback (whose per-pull check is
        # ``peek_arrival() < bound``, and an open join's peek is "now") while
        # keeping the run-buffer machinery engaged for this join's own inputs.
        return self._produce_batch(max_rows, arrival_bound)

    def _produce_batch(self, max_rows: int, arrival_bound: float | None) -> Batch:
        """Batch iteration around the symmetric per-tuple pipeline.

        Inputs are consumed in arrival-ordered *runs* (see
        :meth:`_pull_buffered`): which side to service next is still decided
        by arrival, and every arriving tuple still probes before the next is
        consumed, but consecutive same-side tuples are pulled in bulk (with
        their join keys extracted from the run's key columns when the run is
        columnar) and output rows accumulate into a batch, amortizing the
        per-row driver overhead.  The output batch is row-backed: the
        symmetric pipeline materializes rows anyway to insert them into the
        hash tables.  The batch is cut short when a watched event (e.g.
        ``out_of_memory`` with an overflow-method rule attached) fires, so
        rule actions land at the tuple-accurate point.
        """
        context = self.context
        clock = context.clock
        out: list[Row] = []
        while len(out) < max_rows:
            if arrival_bound is not None and clock.now >= arrival_bound:
                break
            if self._pending:
                needed = max_rows - len(out)
                out.extend(self._pending[:needed])
                del self._pending[:needed]
                if context.batch_interrupt:
                    break
                continue
            if self._cleanup is not None:
                row = next(self._cleanup, None)
                if row is None:
                    break
                out.append(row)
                continue
            side = self._choose_side()
            if side is None:
                self._cleanup = self._cleanup_pairs()
                continue
            # Fast path over _pull_buffered: pop straight from the run buffer.
            cursor = self._buffer_cursors[side]
            buffer = self._input_buffers[side]
            if cursor < len(buffer):
                self._buffer_cursors[side] = cursor + 1
                keys = self._buffer_keys[side]
                key = keys[cursor] if keys is not None else None
                row = buffer[cursor]
            else:
                row = self._pull_buffered(side)
                key = self._popped_key
            if row is None:
                self._exhausted[side] = True
                if side == RIGHT and self._drain_right_first:
                    # Right side drained: resume reading the paused left input.
                    self._drain_right_first = False
                continue
            self._process(side, row, key)
            if context.batch_interrupt and out:
                break
        return Batch.from_rows(self.output_schema, out)
