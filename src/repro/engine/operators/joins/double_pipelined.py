"""The double pipelined hash join (Section 4.2.2) with overflow resolution.

The double pipelined join (DPJ) is symmetric and incremental: each arriving
tuple probes the opposite input's hash table and is then inserted into its
own side's table, so results are produced as soon as matching tuples have
arrived from both inputs.  The original implementation is data-driven via
threads; here the join pulls from whichever child can deliver a tuple at the
earlier virtual time, which yields the same interleaving deterministically.

Two memory-overflow strategies from Section 4.2.3 are implemented:

* **Incremental Left Flush** — on overflow, flush buckets from the left
  input's hash table and switch to draining the right input; resume the left
  input once the right is exhausted.  Output stalls while the right side is
  drained, then resumes (the "abrupt" curve of Figure 4).
* **Incremental Symmetric Flush** — on overflow, pick one bucket and flush it
  from *both* hash tables; both inputs keep streaming, so output continues
  smoothly but the in-memory fraction (and hence the match rate) shrinks.

Correctness with spilling relies on a marking discipline: tuples flushed
while resident are written *unmarked*; tuples that arrive after their bucket
was flushed are written *marked* and are not probed live.  During the final
overflow resolution, every pair is emitted except unmarked-with-unmarked —
those pairs were already produced while both tuples were resident.

Both hash tables store columnar partitions in every drive mode.  Under the
columnar drive the whole pipeline is positional: input runs arrive as
struct-of-arrays batches, arriving tuples probe and insert by column
position, matches are emitted straight into output columns, spills move
column values, and the final overflow resolution joins spill chunks
positionally — no :class:`Row` boxing anywhere.  The row-batch and tuple
drives feed the same tables row by row (the row-spill baseline).
"""

from __future__ import annotations

from typing import Any, Iterator

from repro.engine.context import ExecutionContext
from repro.engine.iterators import Operator
from repro.engine.operators.joins.base import JoinOperator
from repro.errors import MemoryOverflowError
from repro.plan.physical import OverflowMethod
from repro.plan.rules import EventType
from repro.storage.batch import Batch
from repro.storage.columns import (
    DictColumn,
    append_value,
    as_values,
    empty_like,
    extend_column,
)
from repro.storage.hash_table import BucketedHashTable, DEFAULT_BUCKET_COUNT, bucket_of
from repro.storage.memory import MemoryBudget
from repro.storage.tuples import Row

#: Side identifiers (also used as indices into per-side lists).
LEFT, RIGHT = 0, 1

#: Maximum rows consumed from one input per arrival-bounded run (batch path).
RUN_LENGTH = 128

#: Virtual-time lookahead allowed when consuming a run (batch path).  The
#: original engine's per-child threads buffered tuples ahead of the join;
#: letting a run overshoot the other side's next arrival by this window models
#: that queueing while keeping consumption deterministic and (at run
#: granularity) data-driven.
RUN_SLACK_MS = 5.0


class _Run:
    """One consumed input run: a batch plus its bulk-extracted join keys.

    ``movers`` caches, per column, whether the run's column and the output
    accumulator share a dictionary (computed once per run at first emission)
    so the per-tuple emission skips most type checks.  Output columns are
    reset storage-preserving, but another writer to the same slot can still
    degrade it mid-run, so the mover branch re-checks the accumulator type
    and clears its flag on a mismatch.
    """

    __slots__ = ("batch", "keys", "cursor", "movers")

    def __init__(self, batch: Batch, keys: list[tuple[Any, ...]]) -> None:
        self.batch = batch
        self.keys = keys
        self.cursor = 0
        self.movers: list[bool] | None = None

    def __len__(self) -> int:
        return len(self.batch)


class _OutputColumns:
    """Pending columnar join output: per-column accumulators plus arrivals.

    Accumulators start as plain lists; on the first emission the operator
    may *upgrade* slots to dict-encoded accumulators sharing the inputs'
    dictionaries (``adopt_storage``), after which matched string values move
    as raw codes and the output batches stay encoded end to end.
    """

    __slots__ = ("columns", "arrivals", "cursor", "adopted", "plain")

    def __init__(self, width: int) -> None:
        self.columns: list[list[Any]] = [[] for _ in range(width)]
        self.arrivals: list[float] = []
        self.cursor = 0
        self.adopted = False
        #: True when no input column is dict-encoded — the emission then
        #: takes the original branch-free per-match loop.
        self.plain = True

    def __len__(self) -> int:
        return len(self.arrivals) - self.cursor

    def adopt_storage(self, sources: list) -> None:
        """Upgrade empty accumulator slots to the sources' storage classes."""
        self.adopted = True
        for j, source in enumerate(sources):
            if type(source) is DictColumn:
                self.plain = False
                if not len(self.columns[j]):
                    self.columns[j] = DictColumn(source.dictionary)

    def _reset_columns(self) -> None:
        self.columns = [empty_like(column) for column in self.columns]

    def take_batch(self, schema, max_rows: int) -> Batch:
        """Up to ``max_rows`` pending rows as a columnar batch."""
        start = self.cursor
        stop = min(start + max_rows, len(self.arrivals))
        self.cursor = stop
        if start == 0 and stop == len(self.arrivals):
            batch = Batch.from_columns(schema, self.columns, self.arrivals)
            self._reset_columns()
            self.arrivals = []
            self.cursor = 0
            return batch
        columns = [column[start:stop] for column in self.columns]
        batch = Batch.from_columns(schema, columns, self.arrivals[start:stop])
        if self.cursor >= len(self.arrivals):
            self._reset_columns()
            self.arrivals = []
            self.cursor = 0
        return batch


class DoublePipelinedJoin(JoinOperator):
    """Symmetric, incremental hash join with pluggable overflow resolution."""

    def __init__(
        self,
        operator_id: str,
        context: ExecutionContext,
        left: Operator,
        right: Operator,
        left_keys: list[str],
        right_keys: list[str],
        memory_limit_bytes: int | None = None,
        bucket_count: int = DEFAULT_BUCKET_COUNT,
        overflow_method: OverflowMethod | str = OverflowMethod.LEFT_FLUSH,
        estimated_cardinality: int | None = None,
    ) -> None:
        super().__init__(
            operator_id, context, left, right, left_keys, right_keys, estimated_cardinality
        )
        self.budget: MemoryBudget = context.memory_pool.grant(operator_id, memory_limit_bytes)
        self.budget.on_revoke = self._on_lease_revoked
        self.bucket_count = bucket_count
        self.overflow_method = OverflowMethod(overflow_method)
        self._tables: list[BucketedHashTable] = []
        self._exhausted = [False, False]
        self._drain_right_first = False
        self._pending: list[Row] = []
        self._cleanup: Iterator[Row] | None = None
        self._cleanup_batches: Iterator[Batch] | None = None
        # Batch path only: per-side run buffers (rows already consumed from a
        # child in bulk because they all arrive before the other side's next).
        # Join keys are bulk-extracted from the run's key columns; the run
        # batch itself stays in whatever representation the child produced.
        self._runs: list[_Run | None] = [None, None]
        self._out: _OutputColumns | None = None
        self._popped_key: tuple[Any, ...] | None = None
        self._emitted_output = False
        self.overflow_count = 0

    # -- configuration hooks (rule actions) -------------------------------------------------

    def set_overflow_method(self, method: OverflowMethod | str) -> None:
        """Change the overflow strategy (the ``set overflow method`` rule action)."""
        self.overflow_method = OverflowMethod(method)

    # -- lifecycle -----------------------------------------------------------------------------

    def _do_open(self) -> None:
        self._tables = [
            BucketedHashTable(
                self.left_keys,
                self.budget,
                self.context.disk,
                bucket_count=self.bucket_count,
                name=f"{self.operator_id}-left",
                schema=self.left.output_schema,
                encoded=self.context.encoded_columns,
            ),
            BucketedHashTable(
                self.right_keys,
                self.budget,
                self.context.disk,
                bucket_count=self.bucket_count,
                name=f"{self.operator_id}-right",
                schema=self.right.output_schema,
                encoded=self.context.encoded_columns,
            ),
        ]
        self._left_width = len(self.left.output_schema)
        self._right_width = len(self.right.output_schema)
        self._out = _OutputColumns(self._left_width + self._right_width)

    def _do_close(self) -> None:
        try:
            for table in self._tables:
                table.release_all()
        finally:
            # Even if releasing a table raises mid-flush, the pool lease
            # must go back so broker.used == sum(resident_bytes) holds.
            self.context.memory_pool.revoke(self.operator_id)

    # -- child selection (the data-driven behaviour) ---------------------------------------------

    def _child(self, side: int) -> Operator:
        return self.children[side]

    def _choose_side(self) -> int | None:
        """Pick which input to consume next, or ``None`` when both are done.

        Arrivals are taken from the run buffers first (see
        :meth:`_pull_buffered`); with empty buffers — always the case under a
        pure tuple-at-a-time drive — this is the plain data-driven choice over
        the children's ``peek_arrival``.
        """
        if self._exhausted[LEFT] and self._exhausted[RIGHT]:
            return None
        if self._drain_right_first and not self._exhausted[RIGHT]:
            return RIGHT
        if self._exhausted[LEFT]:
            return RIGHT
        if self._exhausted[RIGHT]:
            return LEFT
        left_arrival = self._peek_side(LEFT)
        right_arrival = self._peek_side(RIGHT)
        if left_arrival is None:
            self._exhausted[LEFT] = True
            return RIGHT
        if right_arrival is None:
            self._exhausted[RIGHT] = True
            return LEFT
        # Prefer the input whose next tuple arrives earlier; alternate on ties
        # by favouring the side with fewer tuples consumed so far.
        if left_arrival < right_arrival:
            return LEFT
        if right_arrival < left_arrival:
            return RIGHT
        return LEFT if self._tables[LEFT].total_inserted <= self._tables[RIGHT].total_inserted else RIGHT

    def peek_arrival(self) -> float | None:
        """Earliest time this join could produce or consume its next tuple.

        With output or input rows already buffered, "now"; otherwise the
        earlier of the two inputs' next arrivals.  Side-effect free — used
        by data-driven parents and as the executor's source-wait hint, so a
        join-rooted fragment yields its network stalls to the session
        scheduler instead of sleeping through them.
        """
        if self.state in ("closed", "deactivated"):
            return None
        now = self.context.clock.now
        if self._pending or self._cleanup is not None or self._cleanup_batches is not None:
            return now
        out = self._out
        if out is not None and out.arrivals:
            return now
        if self._side_has_buffer(LEFT) or self._side_has_buffer(RIGHT):
            return now
        arrivals = [
            arrival
            for side in (LEFT, RIGHT)
            if not self._exhausted[side]
            and (arrival := self._child(side).peek_arrival()) is not None
        ]
        if not arrivals:
            return now
        return min(arrivals)

    # -- batch-path input runs -----------------------------------------------------------------------

    def _side_has_buffer(self, side: int) -> bool:
        run = self._runs[side]
        return run is not None and run.cursor < len(run.batch)

    def _peek_side(self, side: int) -> float | None:
        """Arrival of side's next row, looking at its run buffer first."""
        run = self._runs[side]
        if run is not None and run.cursor < len(run.batch):
            return run.batch.arrivals[run.cursor]
        return self._child(side).peek_arrival()

    def _pop_buffered(self, side: int) -> Row | None:
        """Next already-buffered row of ``side``, or ``None`` when none is held.

        Sets :attr:`_popped_key` to the row's precomputed join key (``None``
        when nothing was buffered — the caller computes it).
        """
        run = self._runs[side]
        if run is None or run.cursor >= len(run.batch):
            self._popped_key = None
            return None
        cursor = run.cursor
        run.cursor = cursor + 1
        self._popped_key = run.keys[cursor]
        return run.batch[cursor]

    def _pull_run(self, side: int) -> _Run | None:
        """Consume the next bulk run of ``side``; ``None`` when the run is empty.

        A *run* consumes every row arriving before the other side's next
        arrival plus a small lookahead window (:data:`RUN_SLACK_MS`) — the
        rows the original engine's per-child reader thread would have had
        queued.  The run batch keeps the representation the child produced:
        columnar runs drive the positional pipeline, row-backed runs the
        row-at-a-time one.
        """
        other = 1 - side
        if self._exhausted[other] or (side == RIGHT and self._drain_right_first):
            # No interleaving constraint: the other side is done, or paused by
            # Incremental Left Flush — the tuple drive consumes this side
            # back to back regardless of the other side's arrivals, so an
            # unbounded run matches its consumption order exactly.
            bound = float("inf")
        else:
            other_arrival = self._peek_side(other)
            if other_arrival is None:
                bound = float("inf")
            elif self._emitted_output:
                bound = other_arrival + RUN_SLACK_MS
            else:
                # Before the first output the lookahead window stays closed so
                # time-to-first-tuple matches the tuple-at-a-time drive exactly
                # (the paper's headline DPJ metric).
                bound = other_arrival
        run_batch = self._child(side).next_batch_bounded(RUN_LENGTH, bound)
        if not run_batch:
            return None
        binder = self._left_binder if side == LEFT else self._right_binder
        keys = run_batch.key_tuples(binder.indices_in(run_batch.schema))
        run = _Run(run_batch, keys)
        self._runs[side] = run
        return run

    # -- tuple processing ----------------------------------------------------------------------------

    def _bucket_spilled(self, index: int) -> bool:
        return self._tables[LEFT].buckets[index].flushed or self._tables[RIGHT].buckets[index].flushed

    def _spill_arriving(self, side: int, index: int, row: Row, marked: bool = True) -> None:
        """Send an arriving tuple straight to its side's overflow file.

        ``marked=True`` records that the tuple never probed the opposite
        side's resident rows (it arrived after the bucket spilled); the final
        overflow resolution joins marked tuples against everything.  A tuple
        that *did* probe before its bucket spilled is written unmarked so its
        already-emitted pairs are not produced again.
        """
        table = self._tables[side]
        bucket = table.buckets[index]
        table._ensure_overflow(bucket).write(row, marked=marked)
        self._charge_disk_time()

    def _process(self, side: int, row: Row, key: tuple[Any, ...] | None = None) -> None:
        """Probe, emit, and insert one arriving tuple (key may be precomputed).

        The row-at-a-time pipeline, serving the tuple drive and row-backed
        runs; matches are boxed into output rows on :attr:`_pending`.
        """
        other = 1 - side
        if key is None:
            key = self.left_key(row) if side == LEFT else self.right_key(row)
        index = bucket_of(key, self.bucket_count)
        tables = self._tables
        if tables[LEFT].buckets[index].flushed or tables[RIGHT].buckets[index].flushed:
            self._spill_arriving(side, index, row)
            return
        # Probe the opposite side's resident rows (both tables share the
        # bucket count, so the bucket index computed above is reusable).
        other_bucket = tables[other].buckets[index]
        partition = other_bucket.partition
        matches = partition.positions.get(key) if partition is not None else None
        if matches:
            self._emitted_output = True
            schema = self.output_schema
            pending = self._pending
            values = row.values
            arrival = row.arrival
            arrivals = partition.arrivals
            value_tuple = partition.value_tuple
            make = Row.make
            for position in matches:
                match_values = value_tuple(position)
                joined_values = (
                    values + match_values if side == LEFT else match_values + values
                )
                match_arrival = arrivals[position]
                pending.append(
                    make(
                        schema,
                        joined_values,
                        arrival if arrival >= match_arrival else match_arrival,
                    )
                )
        # Once the opposite input is exhausted there is no need to retain this
        # tuple (footnote 3 of the paper) unless its bucket later spills —
        # which cannot affect it because all of its matches were resident.
        if self._exhausted[other]:
            return
        self._insert_with_overflow(side, row, key, index)

    def _insert_with_overflow(
        self, side: int, row: Row, key: tuple[Any, ...], index: int
    ) -> None:
        table = self._tables[side]
        while True:
            if table.buckets[index].flushed:
                # The overflow strategy spilled this row's bucket while we were
                # trying to insert it.  The row has already probed the opposite
                # side's resident rows, so it spills unmarked — exactly like
                # the resident rows that were just flushed alongside it.
                self._spill_arriving(side, index, row, marked=False)
                return
            if table.insert(row, key=key):
                return
            self._resolve_overflow()

    def _process_position(self, side: int, run: _Run, position: int) -> None:
        """Probe, emit, and insert one arriving tuple by run position.

        The positional twin of :meth:`_process` for columnar runs: the
        arriving tuple is never boxed — its values move from the run's
        columns into hash-table partitions, output columns, or spill files.
        """
        other = 1 - side
        key = run.keys[position]
        index = bucket_of(key, self.bucket_count)
        tables = self._tables
        batch = run.batch
        columns = batch.columns
        arrival = batch.arrivals[position]
        if tables[LEFT].buckets[index].flushed or tables[RIGHT].buckets[index].flushed:
            tables[side].spill_position(index, columns, position, arrival, marked=True)
            self._charge_disk_time()
            return
        other_bucket = tables[other].buckets[index]
        partition = other_bucket.partition
        matches = partition.positions.get(key) if partition is not None else None
        if matches:
            self._emitted_output = True
            out = self._out
            match_columns = partition.columns
            match_arrivals = partition.arrivals
            own_offset = 0 if side == LEFT else self._left_width
            match_offset = self._left_width if side == LEFT else 0
            if not out.adopted:
                # First emission fixes the output storage: dict-encoded
                # inputs get dict-encoded accumulators sharing their
                # dictionaries, so string values below move as raw codes.
                sources = [None] * (self._left_width + self._right_width)
                for j, column in enumerate(columns):
                    sources[own_offset + j] = column
                for j, column in enumerate(match_columns):
                    sources[match_offset + j] = column
                out.adopt_storage(sources)
            out_columns = out.columns
            out_arrivals = out.arrivals
            if out.plain:
                # No dict-encoded input anywhere: the original branch-free
                # per-match emission (the plain-columnar hot path).
                own_width = len(columns)
                for match_position in matches:
                    for j in range(own_width):
                        out_columns[own_offset + j].append(columns[j][position])
                    for j, match_column in enumerate(match_columns):
                        out_columns[match_offset + j].append(
                            match_column[match_position]
                        )
                    match_arrival = match_arrivals[match_position]
                    out_arrivals.append(
                        arrival if arrival >= match_arrival else match_arrival
                    )
            else:
                n_matches = len(matches)
                # Column-major emission: the arriving tuple's values are
                # read once (not once per match); dict-encoded columns move
                # codes into code accumulators, or decode via two C-level
                # subscripts — never a Python call per value.
                movers = run.movers
                if movers is None:
                    movers = run.movers = [
                        type(acc) is DictColumn
                        and type(column) is DictColumn
                        and acc.dictionary is column.dictionary
                        for acc, column in zip(out_columns[own_offset:], columns)
                    ]
                for j, column in enumerate(columns):
                    if movers[j]:
                        acc = out_columns[own_offset + j]
                        # Re-check the accumulator: another writer to this
                        # slot (the opposite side's match emission, a
                        # cleanup extend) may have degraded it to a plain
                        # list since the flags were computed.
                        if type(acc) is DictColumn:
                            acc_codes = acc.codes
                            code = column.codes[position]
                            if n_matches == 1:
                                acc_codes.append(code)
                            else:
                                acc_codes.extend([code] * n_matches)
                            continue
                        movers[j] = False
                    value = column[position]
                    acc = out_columns[own_offset + j]
                    if type(acc) is list:
                        if n_matches == 1:
                            acc.append(value)
                        else:
                            acc.extend([value] * n_matches)
                    elif n_matches == 1:
                        append_value(out_columns, own_offset + j, value)
                    else:
                        extend_column(
                            out_columns,
                            own_offset + j,
                            [value] * n_matches,
                            len(out_arrivals),
                        )
                for j, match_column in enumerate(match_columns):
                    acc = out_columns[match_offset + j]
                    if type(match_column) is DictColumn:
                        if (
                            type(acc) is DictColumn
                            and acc.dictionary is match_column.dictionary
                        ):
                            acc_codes = acc.codes
                            mcodes = match_column.codes
                            for p in matches:
                                acc_codes.append(mcodes[p])
                            continue
                        dvalues = match_column.dictionary.values
                        dcodes = match_column.codes
                        if type(acc) is list:
                            for p in matches:
                                acc.append(dvalues[dcodes[p]])
                        else:
                            extend_column(
                                out_columns,
                                match_offset + j,
                                [dvalues[dcodes[p]] for p in matches],
                                len(out_arrivals),
                            )
                    elif type(acc) is list:
                        for p in matches:
                            acc.append(match_column[p])
                    else:
                        extend_column(
                            out_columns,
                            match_offset + j,
                            [match_column[p] for p in matches],
                            len(out_arrivals),
                        )
                for p in matches:
                    match_arrival = match_arrivals[p]
                    out_arrivals.append(
                        arrival if arrival >= match_arrival else match_arrival
                    )
        if self._exhausted[other]:
            return
        table = tables[side]
        while True:
            if table.buckets[index].flushed:
                # Spilled by the overflow strategy mid-insert: unmarked, as in
                # :meth:`_insert_with_overflow`.
                table.spill_position(index, columns, position, arrival, marked=False)
                self._charge_disk_time()
                return
            if table.insert_position(index, key, columns, position, arrival):
                return
            self._resolve_overflow()

    # -- overflow resolution -------------------------------------------------------------------------------

    def _on_lease_revoked(self, budget: MemoryBudget) -> None:
        """The broker shrank this join's lease under cross-query pressure.

        Runs the configured Section 4.2 overflow resolution until resident
        bytes fit the new allotment — the same bucket flushes to the encoded
        columnar spill path an insert-time overflow triggers, charged to
        this session's own virtual clock.  With resolution disabled
        (``OverflowMethod.FAIL``) nothing happens here: the shrunken limit
        surfaces on the victim's *own* next insert, so the failure lands in
        the right session.
        """
        if not self._tables or self.overflow_method == OverflowMethod.FAIL:
            return
        while budget.limit_bytes is not None and budget.used_bytes > budget.limit_bytes:
            before = budget.used_bytes
            self._resolve_overflow()
            if budget.used_bytes >= before:
                # Nothing left to flush (dictionary/metadata bytes remain);
                # further pressure resolves at the next insert.
                break

    def _resolve_overflow(self) -> None:
        """Free memory according to the configured strategy."""
        self.overflow_count += 1
        self._stats.overflow_events += 1
        self.context.emit_event(EventType.OUT_OF_MEMORY, self.operator_id)
        if self.overflow_method == OverflowMethod.FAIL:
            raise MemoryOverflowError(
                f"{self.operator_id}: memory exhausted and overflow resolution disabled"
            )
        if self.overflow_method == OverflowMethod.SYMMETRIC_FLUSH:
            self._symmetric_flush()
        else:
            self._left_flush()
        self._charge_disk_time()

    def _symmetric_flush(self) -> None:
        """Flush the bucket with the most combined resident bytes from both tables."""
        left_table, right_table = self._tables
        best_index, best_bytes = None, -1
        for index in range(self.bucket_count):
            combined = (
                left_table.buckets[index].resident_count * left_table.row_bytes
                + right_table.buckets[index].resident_count * right_table.row_bytes
            )
            if combined > best_bytes and not self._bucket_spilled(index):
                best_index, best_bytes = index, combined
        if best_index is None or best_bytes <= 0:
            raise MemoryOverflowError(
                f"{self.operator_id}: no resident bucket left to flush symmetrically"
            )
        left_table.flush_bucket(best_index)
        right_table.flush_bucket(best_index)

    def _left_flush(self) -> None:
        """Flush a left-side bucket (falling back to the right side), pause the left input."""
        self._drain_right_first = True
        flushed = self._tables[LEFT].flush_largest_bucket()
        if flushed is not None:
            return
        flushed = self._tables[RIGHT].flush_largest_bucket()
        if flushed is None:
            raise MemoryOverflowError(
                f"{self.operator_id}: both hash tables are empty yet memory is exhausted"
            )

    # -- overflow resolution output (the final phase) ---------------------------------------------------------

    def _spilled_entries(self, side: int, index: int) -> list | None:
        """One bucket side's spilled + resident entries as positional views.

        Returns a list of ``(columns, arrivals, marked_list_or_None, count)``
        quadruples — disk chunks carry their marked column, resident remnants
        are implicitly unmarked (``None``) and charge no read I/O.  ``None``
        when the side holds nothing for this bucket.
        """
        bucket = self._tables[side].buckets[index]
        entries: list = []
        # Dict-encoded columns and RLE arrivals decode once per chunk here
        # (C-level map to the canonical values — no string construction, no
        # Row boxing), so the positional join below indexes plain sequences.
        if bucket.overflow is not None and len(bucket.overflow) > 0:
            for chunk in bucket.overflow.read_chunks():
                if len(chunk):
                    entries.append(
                        (
                            [as_values(c) for c in chunk.columns],
                            as_values(chunk.arrivals),
                            chunk.marked,
                            len(chunk),
                        )
                    )
        partition = bucket.partition
        if partition is not None and partition.arrivals:
            entries.append(
                (
                    [as_values(c) for c in partition.columns],
                    as_values(partition.arrivals),
                    None,
                    len(partition.arrivals),
                )
            )
        return entries or None

    def _cleanup_batches_iter(self) -> Iterator[Batch]:
        """Join the spilled buckets positionally, one output batch per bucket.

        Skips unmarked-with-unmarked pairs (already produced live).  Spilled
        tuples are never boxed: keys come from chunk key columns, matches are
        located through a positional map, and output values move column to
        column.
        """
        left_schema = self._tables[LEFT].schema
        right_schema = self._tables[RIGHT].schema
        left_key_at = self._left_binder.indices_in(left_schema)
        right_key_at = self._right_binder.indices_in(right_schema)
        left_width = self._left_width
        right_width = self._right_width
        schema = self.output_schema
        for index in range(self.bucket_count):
            left_bucket = self._tables[LEFT].buckets[index]
            right_bucket = self._tables[RIGHT].buckets[index]
            has_disk = (
                left_bucket.overflow is not None and len(left_bucket.overflow) > 0
            ) or (right_bucket.overflow is not None and len(right_bucket.overflow) > 0)
            if not has_disk:
                continue
            left_entries = self._spilled_entries(LEFT, index)
            right_entries = self._spilled_entries(RIGHT, index)
            self._charge_disk_time()
            if not left_entries or not right_entries:
                continue
            # Positional map over the right side: key -> (entry columns,
            # arrivals, marked flag, position) per spilled/resident row.
            right_by_key: dict[tuple, list] = {}
            for columns, arrivals, marked, count in right_entries:
                key_columns = [columns[i] for i in right_key_at]
                for position in range(count):
                    key = tuple(column[position] for column in key_columns)
                    is_marked = marked[position] if marked is not None else False
                    right_by_key.setdefault(key, []).append(
                        (columns, arrivals, is_marked, position)
                    )
            out_columns: list[list[Any]] = [[] for _ in range(left_width + right_width)]
            out_arrivals: list[float] = []
            for columns, arrivals, marked, count in left_entries:
                key_columns = [columns[i] for i in left_key_at]
                for position in range(count):
                    key = tuple(column[position] for column in key_columns)
                    found = right_by_key.get(key)
                    if not found:
                        continue
                    left_marked = marked[position] if marked is not None else False
                    left_arrival = arrivals[position]
                    for right_columns, right_arrivals, right_marked, right_position in found:
                        if not left_marked and not right_marked:
                            continue  # both were resident when they met: already emitted
                        for j in range(left_width):
                            out_columns[j].append(columns[j][position])
                        for j in range(right_width):
                            out_columns[left_width + j].append(
                                right_columns[j][right_position]
                            )
                        right_arrival = right_arrivals[right_position]
                        out_arrivals.append(
                            left_arrival
                            if left_arrival >= right_arrival
                            else right_arrival
                        )
            if out_arrivals:
                yield Batch.from_columns(schema, out_columns, out_arrivals)

    def _cleanup_pairs(self) -> Iterator[Row]:
        """Row-at-a-time overflow resolution (tuple and row-batch drives).

        Same pair discipline and identical I/O accounting as
        :meth:`_cleanup_batches_iter`, but every spilled tuple read back from
        disk is boxed into a :class:`Row` and joined tuple-at-a-time — the
        re-boxing cost that makes this the *row-spill baseline* the spill
        benchmark measures the columnar resolution against.
        """
        for index in range(self.bucket_count):
            left_bucket = self._tables[LEFT].buckets[index]
            right_bucket = self._tables[RIGHT].buckets[index]
            has_disk = (
                left_bucket.overflow is not None and len(left_bucket.overflow) > 0
            ) or (right_bucket.overflow is not None and len(right_bucket.overflow) > 0)
            if not has_disk:
                continue
            left_entries: list[tuple[Row, bool]] = []
            right_entries: list[tuple[Row, bool]] = []
            if left_bucket.overflow is not None:
                left_entries.extend(left_bucket.overflow.read())
            if right_bucket.overflow is not None:
                right_entries.extend(right_bucket.overflow.read())
            self._charge_disk_time()
            # Resident remnants participate as unmarked entries (no read cost).
            if left_bucket.partition is not None:
                left_entries.extend((row, False) for row in left_bucket.partition.rows())
            if right_bucket.partition is not None:
                right_entries.extend(
                    (row, False) for row in right_bucket.partition.rows()
                )
            right_by_key: dict[tuple[Any, ...], list[tuple[Row, bool]]] = {}
            for row, marked in right_entries:
                right_by_key.setdefault(self.right_key(row), []).append((row, marked))
            for left_row, left_marked in left_entries:
                for right_row, right_marked in right_by_key.get(
                    self.left_key(left_row), ()
                ):
                    if not left_marked and not right_marked:
                        continue  # both were resident when they met: already emitted
                    yield self.join_rows(left_row, right_row)

    # -- iterator -------------------------------------------------------------------------------------------------

    def _next(self) -> Row | None:
        while True:
            if self._pending:
                return self._pending.pop(0)
            out = self._out
            if out is not None and len(out):
                batch = out.take_batch(self.output_schema, 1)
                return batch[0]
            if self._cleanup_batches is not None:
                # A batch caller started the columnar cleanup; keep draining it.
                batch = next(self._cleanup_batches, None)
                if batch is None:
                    return None
                self._pending.extend(batch.rows())
                continue
            if self._cleanup is not None:
                row = next(self._cleanup, None)
                if row is None:
                    return None
                return row
            side = self._choose_side()
            if side is None:
                self._cleanup = self._cleanup_pairs()
                continue
            row = self._pop_buffered(side)
            key = self._popped_key
            if row is None:
                row = self._child(side).next()
            if row is None:
                self._exhausted[side] = True
                if side == RIGHT and self._drain_right_first:
                    # Right side drained: resume reading the paused left input.
                    self._drain_right_first = False
                continue
            self._process(side, row, key)

    def _next_batch(self, max_rows: int) -> Batch:
        return self._produce_batch(max_rows, None)

    def _next_batch_bounded(self, max_rows: int, arrival_bound: float) -> Batch:
        # Mirrors the generic bounded fallback (whose per-pull check is
        # ``peek_arrival() < bound``, and an open join's peek is "now") while
        # keeping the run-buffer machinery engaged for this join's own inputs.
        return self._produce_batch(max_rows, arrival_bound)

    def _produce_batch(self, max_rows: int, arrival_bound: float | None) -> Batch:
        """Batch iteration around the symmetric per-tuple pipeline.

        Inputs are consumed in arrival-ordered *runs* (see
        :meth:`_pull_run`): which side to service next is still decided by
        arrival, and every arriving tuple still probes before the next is
        consumed, but consecutive same-side tuples are pulled in bulk with
        their join keys extracted from the run's key columns.  Columnar runs
        go through the positional pipeline (:meth:`_process_position`), which
        accumulates output directly into column lists; row-backed runs go
        through the row pipeline.  The batch is cut short when a watched
        event (e.g. ``out_of_memory`` with an overflow-method rule attached)
        fires, so rule actions land at the tuple-accurate point.
        """
        context = self.context
        clock = context.clock
        schema = self.output_schema
        out = self._out
        parts: list[Batch] = []
        count = 0
        # Rows emitted into ``out`` (and leftovers on ``_pending``) count
        # toward the batch but are only sliced into an actual Batch once, on
        # the way out — draining them eagerly would shred the output into
        # per-row parts and pay a concat per column per row.
        while count + len(out) < max_rows:
            if arrival_bound is not None and clock.now >= arrival_bound:
                break
            if self._pending:
                # Leftovers from a tuple-at-a-time caller on the same
                # operator: flush any columnar output first to keep order.
                if len(out):
                    part = out.take_batch(schema, max_rows - count)
                    parts.append(part)
                    count += len(part)
                    if count >= max_rows:
                        break
                needed = max_rows - count
                rows = self._pending[:needed]
                del self._pending[:needed]
                parts.append(Batch.from_rows(schema, rows))
                count += len(rows)
                if context.batch_interrupt:
                    break
                continue
            if self._cleanup_batches is not None:
                batch = next(self._cleanup_batches, None)
                if batch is None:
                    break
                base = len(out.arrivals)
                for position, column in enumerate(batch.columns):
                    extend_column(out.columns, position, column, base)
                out.arrivals.extend(batch.arrivals)
                continue
            if self._cleanup is not None:
                # A tuple-at-a-time caller already started the row-based
                # cleanup; keep draining it row by row.
                row = next(self._cleanup, None)
                if row is None:
                    break
                self._pending.append(row)
                continue
            side = self._choose_side()
            if side is None:
                if context.columnar:
                    self._cleanup_batches = self._cleanup_batches_iter()
                else:
                    self._cleanup = self._cleanup_pairs()
                continue
            run = self._runs[side]
            if run is None or run.cursor >= len(run.batch):
                run = self._pull_run(side)
                if run is None:
                    row = self._child(side).next()
                    if row is None:
                        self._exhausted[side] = True
                        if side == RIGHT and self._drain_right_first:
                            # Right side drained: resume the paused left input.
                            self._drain_right_first = False
                        continue
                    self._process(side, row, None)
                    if context.batch_interrupt and (count or len(out)):
                        break
                    continue
            position = run.cursor
            run.cursor = position + 1
            if run.batch.is_columnar:
                self._process_position(side, run, position)
            else:
                self._process(side, run.batch[position], run.keys[position])
            # Cut the batch at a watched event — but only once some output is
            # actually collectable; rows sitting on ``_pending`` are moved
            # into the batch by the next loop iteration first (an empty
            # return here would read as a spurious end-of-stream).
            if context.batch_interrupt and (count or len(out)):
                break
        if len(out) and count < max_rows:
            part = out.take_batch(schema, max_rows - count)
            parts.append(part)
            count += len(part)
        if not parts:
            return Batch.empty(schema)
        if len(parts) == 1:
            return parts[0]
        return Batch.concat(schema, parts)
