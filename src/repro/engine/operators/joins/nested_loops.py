"""Nested loops join (and its index-free pipelined variant).

Included as a baseline and for the dependent join's bind-and-fetch pattern.
The inner (right) input is fully buffered before the outer is streamed, so it
shares the asymmetric, non-pipelined start-up behaviour the paper attributes
to conventional join algorithms.
"""

from __future__ import annotations

from repro.engine.context import ExecutionContext
from repro.engine.iterators import Operator
from repro.engine.operators.joins.base import JoinOperator
from repro.storage.tuples import Row


class NestedLoopsJoin(JoinOperator):
    """Buffers the inner (right) input, then streams the outer against it."""

    def __init__(
        self,
        operator_id: str,
        context: ExecutionContext,
        left: Operator,
        right: Operator,
        left_keys: list[str],
        right_keys: list[str],
        estimated_cardinality: int | None = None,
    ) -> None:
        super().__init__(
            operator_id, context, left, right, left_keys, right_keys, estimated_cardinality
        )
        self._inner_rows: list[Row] = []
        self._inner_loaded = False
        self._current_outer: Row | None = None
        self._inner_cursor = 0

    def _load_inner(self) -> None:
        while True:
            row = self.right.next()
            if row is None:
                break
            self._inner_rows.append(row)
        self._inner_loaded = True

    def _next(self) -> Row | None:
        if not self._inner_loaded:
            self._load_inner()
        while True:
            if self._current_outer is None:
                self._current_outer = self.left.next()
                self._inner_cursor = 0
                if self._current_outer is None:
                    return None
            outer_key = self.left_key(self._current_outer)
            while self._inner_cursor < len(self._inner_rows):
                inner_row = self._inner_rows[self._inner_cursor]
                self._inner_cursor += 1
                # Comparing every inner tuple costs CPU even on mismatch.
                self.context.clock.consume_cpu(self.context.config.per_tuple_cpu_ms * 0.1)
                if self.right_key(inner_row) == outer_key:
                    return self.join_rows(self._current_outer, inner_row)
            self._current_outer = None
