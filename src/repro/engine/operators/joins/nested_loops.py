"""Nested loops join (and its index-free pipelined variant).

Included as a baseline and for the dependent join's bind-and-fetch pattern.
The inner (right) input is fully buffered before the outer is streamed, so it
shares the asymmetric, non-pipelined start-up behaviour the paper attributes
to conventional join algorithms.

The inner load pulls blocks through ``next_batch`` like the other blocking
operators (the hybrid hash build), so the inner child's per-tuple rule events
are only materialized when a rule actually watches them and blocks are cut at
the tuple-accurate firing points — the earlier implementation looped
``next()``, paying one event object per inner tuple and ignoring the block
protocol entirely.  The batch paths are native: the bounded variant pulls the
outer side through ``next_batch_bounded`` so arrival bounds are honored, and
matching is vectorized while still charging the tuple path's full
compare-every-pair CPU cost (the algorithm being simulated is still a nested
loop; only the wall-clock bookkeeping is bulk).
"""

from __future__ import annotations

from repro.engine.context import ExecutionContext
from repro.engine.iterators import DEFAULT_BATCH_SIZE, Operator
from repro.engine.operators.joins.base import JoinOperator
from repro.storage.batch import Batch, BatchCursor, gather_join_columns
from repro.storage.columns import ColumnarPartition
from repro.storage.tuples import Row

#: Fraction of the per-tuple CPU cost charged for one inner-row comparison.
#: Shared by the tuple path (charged per comparison) and the batch path
#: (charged in bulk per outer block) so their virtual-time totals agree.
COMPARE_CPU_FACTOR = 0.1


class NestedLoopsJoin(JoinOperator):
    """Buffers the inner (right) input, then streams the outer against it."""

    def __init__(
        self,
        operator_id: str,
        context: ExecutionContext,
        left: Operator,
        right: Operator,
        left_keys: list[str],
        right_keys: list[str],
        estimated_cardinality: int | None = None,
    ) -> None:
        super().__init__(
            operator_id, context, left, right, left_keys, right_keys, estimated_cardinality
        )
        self._inner: ColumnarPartition | None = None
        self._inner_row_cache: list[Row] | None = None
        self._inner_loaded = False
        self._current_outer: Row | None = None
        self._inner_cursor = 0
        self._pending_out: BatchCursor | None = None

    def _load_inner(self) -> None:
        """Buffer the entire inner input as a columnar partition.

        Blocks are drained at batch granularity and land in a
        :class:`ColumnarPartition` (typed columns + key index, insertion
        order = scan order, so per-outer-row match order equals the
        sequential scan).  Columnar blocks move as per-column extends with no
        row boxing; the tuple-at-a-time drive boxes the buffer lazily on
        first use (see :attr:`_inner_rows`).
        """
        right = self.right
        partition = ColumnarPartition(
            right.output_schema, encoded=self.context.encoded_columns
        )
        binder = self._right_binder
        while True:
            block = right.next_batch(DEFAULT_BATCH_SIZE)
            if not block:
                break
            keys = block.key_tuples(binder.indices_in(block.schema))
            partition.extend_gather(
                block.columns, block.arrivals, keys, range(len(block))
            )
        self._inner = partition
        self._inner_loaded = True

    @property
    def _inner_rows(self) -> list[Row]:
        """The inner buffer boxed as rows (tuple-at-a-time path only; cached)."""
        if self._inner_row_cache is None:
            self._inner_row_cache = self._inner.rows() if self._inner else []
        return self._inner_row_cache

    def peek_arrival(self) -> float | None:
        if self.state in ("closed", "deactivated"):
            return None
        if self._pending_out or self._current_outer is not None:
            return self.context.clock.now
        if not self._inner_loaded:
            # Nothing can be produced before the inner is drained; its next
            # arrival is a (conservative) lower bound on our first output.
            # ``None`` here means an empty inner — the join produces nothing.
            return self.right.peek_arrival()
        if not self._inner or not len(self._inner):
            return None
        return self.left.peek_arrival()

    def _next(self) -> Row | None:
        if not self._inner_loaded:
            self._load_inner()
        if self._pending_out is not None:
            # Output left behind by a batch caller on the same operator.
            row = self._pending_out.next_row()
            if row is not None:
                return row
            self._pending_out = None
        while True:
            if self._current_outer is None:
                self._current_outer = self.left.next()
                self._inner_cursor = 0
                if self._current_outer is None:
                    return None
            outer_key = self.left_key(self._current_outer)
            while self._inner_cursor < len(self._inner_rows):
                inner_row = self._inner_rows[self._inner_cursor]
                self._inner_cursor += 1
                # Comparing every inner tuple costs CPU even on mismatch.
                self.context.clock.consume_cpu(
                    self.context.config.per_tuple_cpu_ms * COMPARE_CPU_FACTOR
                )
                if self.right_key(inner_row) == outer_key:
                    return self.join_rows(self._current_outer, inner_row)
            self._current_outer = None

    # -- batch paths -------------------------------------------------------------

    def _join_outer_batch(self, outer: Batch) -> Batch | None:
        """All matches for one outer batch; ``None`` when nothing matched.

        Columnar outer batches assemble output from gathered partition
        columns (no row boxing); row-backed batches box each matched inner
        row at the boundary.
        """
        partition = self._inner
        if partition is None or not len(partition):
            return None
        positions_by_key = partition.positions
        if outer.is_columnar:
            keys = outer.key_tuples(self._left_binder.indices_in(outer.schema))
            result = partition.gather_matches(keys)
            if result is None:
                return None
            take, match_columns, match_arrivals, aligned = result
            return gather_join_columns(
                outer, take, match_columns, match_arrivals, self.output_schema, aligned
            )
        out: list[Row] = []
        left_key = self.left_key
        schema = self.output_schema
        make = Row.make
        arrivals = partition.arrivals
        for outer_row in outer.rows():
            found = positions_by_key.get(left_key(outer_row))
            if found:
                values = outer_row.values
                arrival = outer_row.arrival
                for p in found:
                    inner_arrival = arrivals[p]
                    out.append(
                        make(
                            schema,
                            values + partition.value_tuple(p),
                            arrival if arrival >= inner_arrival else inner_arrival,
                        )
                    )
        if not out:
            return None
        return Batch.from_rows(self.output_schema, out)

    def _batched(self, max_rows: int, arrival_bound: float | None) -> Batch:
        if not self._inner_loaded:
            self._load_inner()
        if self._current_outer is not None:
            # A tuple-at-a-time caller left an outer row mid-scan: fall back
            # to the generic per-tuple loop, which finishes it exactly.
            if arrival_bound is None:
                return super()._next_batch(max_rows)
            return super()._next_batch_bounded(max_rows, arrival_bound)
        schema = self.output_schema
        clock = self.context.clock
        cpu_per_compare = self.context.config.per_tuple_cpu_ms * COMPARE_CPU_FACTOR
        inner_count = len(self._inner) if self._inner else 0
        while True:
            if self._pending_out is not None:
                part = self._pending_out.take(max_rows)
                if not self._pending_out:
                    self._pending_out = None
                if part:
                    return part
            wait_before = clock.stats.wait_ms
            if arrival_bound is None:
                outer = self.left.next_batch(max_rows)
            else:
                outer = self.left.next_batch_bounded(max_rows, arrival_bound)
            if not outer:
                # Unbounded: the outer is exhausted — end of stream.  Bounded:
                # possibly just the bound; the caller falls back to next().
                return Batch.empty(schema)
            # The simulated algorithm still compares every (outer, inner)
            # pair; charge the whole block's comparison CPU in one call,
            # overlapped with the waits accrued while the block streamed in —
            # the tuple path interleaves the same charges between arrival
            # waits, hiding them whenever data is the bottleneck.
            if inner_count:
                clock.consume_cpu_overlapped(
                    len(outer) * inner_count * cpu_per_compare,
                    max(0.0, clock.stats.wait_ms - wait_before),
                )
            result = self._join_outer_batch(outer)
            if result is not None:
                self._pending_out = BatchCursor(result)

    def _next_batch(self, max_rows: int) -> Batch:
        return self._batched(max_rows, None)

    def _next_batch_bounded(self, max_rows: int, arrival_bound: float) -> Batch:
        return self._batched(max_rows, arrival_bound)
