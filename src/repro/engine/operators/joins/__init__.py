"""Join operators: nested loops, hybrid hash, double pipelined, dependent."""

from repro.engine.operators.joins.base import JoinOperator
from repro.engine.operators.joins.dependent import DependentJoin
from repro.engine.operators.joins.double_pipelined import DoublePipelinedJoin
from repro.engine.operators.joins.hybrid_hash import HybridHashJoin
from repro.engine.operators.joins.nested_loops import NestedLoopsJoin

__all__ = [
    "DependentJoin",
    "DoublePipelinedJoin",
    "HybridHashJoin",
    "JoinOperator",
    "NestedLoopsJoin",
]
