"""Hybrid hash join: the conventional baseline join (Section 4.2.1).

The inner (right) relation is built into a hash table; the outer (left)
relation then probes it.  When the build exceeds the operator's memory
allotment, buckets are lazily flushed to disk (hybrid hashing); probe tuples
that hash to a flushed bucket are spilled to matching outer overflow files,
and the overflow pairs are joined in a final pass.

The hash table stores columnar partitions in every drive mode; what changes
with the drive is how data reaches and leaves it.  Under the columnar drive
builds append column slices from batch columns, probes return gathered match
columns, outer tuples of flushed buckets spill as column gathers, and the
final overflow pass joins spill chunks positionally — no :class:`Row`
objects anywhere on those paths.  Under the row-batch and tuple drives the
same machinery is fed row by row (boxing at the boundary), which is the
row-spill baseline the spill benchmark measures against.

Because the build phase must consume the *entire* inner input before the
first output tuple, this operator exhibits exactly the delayed
time-to-first-tuple the paper contrasts with the double pipelined join.
"""

from __future__ import annotations

from typing import Any, Iterator

from repro.engine.context import ExecutionContext
from repro.engine.iterators import DEFAULT_BATCH_SIZE, Operator
from repro.engine.operators.joins.base import JoinOperator
from repro.plan.rules import EventType
from repro.storage.batch import Batch, BatchCursor, gather_join_columns
from repro.storage.columns import as_values
from repro.storage.disk import OverflowFile
from repro.storage.hash_table import BucketedHashTable, DEFAULT_BUCKET_COUNT, bucket_of
from repro.storage.memory import MemoryBudget
from repro.storage.tuples import Row


class HybridHashJoin(JoinOperator):
    """Classic hybrid hash join with lazy bucket overflow."""

    def __init__(
        self,
        operator_id: str,
        context: ExecutionContext,
        left: Operator,
        right: Operator,
        left_keys: list[str],
        right_keys: list[str],
        memory_limit_bytes: int | None = None,
        bucket_count: int = DEFAULT_BUCKET_COUNT,
        estimated_cardinality: int | None = None,
    ) -> None:
        super().__init__(
            operator_id, context, left, right, left_keys, right_keys, estimated_cardinality
        )
        self.budget: MemoryBudget = context.memory_pool.grant(operator_id, memory_limit_bytes)
        self.budget.on_revoke = self._on_lease_revoked
        self.bucket_count = bucket_count
        self._inner_table: BucketedHashTable | None = None
        self._outer_overflow: dict[int, OverflowFile] = {}
        self._built = False
        self._probe_matches: list[Row] = []
        self._pending_out: BatchCursor | None = None
        self._overflow_output: Iterator[Row] | None = None
        self._overflow_batches: Iterator[Batch] | None = None

    # -- build phase --------------------------------------------------------------------

    def _do_open(self) -> None:
        self._inner_table = BucketedHashTable(
            self.right_keys,
            self.budget,
            self.context.disk,
            bucket_count=self.bucket_count,
            name=f"{self.operator_id}-inner",
            schema=self.right.output_schema,
            encoded=self.context.encoded_columns,
        )

    def _build_inner(self) -> None:
        assert self._inner_table is not None
        while True:
            row = self.right.next()
            if row is None:
                break
            inserted = self._inner_table.insert(row)
            if not inserted and not self._inner_table.is_bucket_flushed_for(
                self._inner_table.key_for(row)
            ):
                # Memory pressure: lazily flush the largest bucket and retry;
                # if the row's own bucket got flushed the retry spills it.
                self._raise_out_of_memory()
                self._inner_table.flush_largest_bucket()
                self._inner_table.insert(row)
        self._charge_disk_time()
        self._built = True

    def _build_inner_batched(self) -> None:
        """Batch-at-a-time build: bulk columnar inserts with the tuple path's
        overflow recovery.

        ``insert_batch`` moves whole per-bucket column gathers while memory
        lasts and stops at exactly the row where the tuple-at-a-time build
        would have overflowed; the refused suffix is retried after flushing
        the largest bucket, so overflow events and bucket states match the
        tuple drive one for one.
        """
        assert self._inner_table is not None
        table = self._inner_table
        right = self.right
        while True:
            batch = right.next_batch(DEFAULT_BATCH_SIZE)
            if not batch:
                break
            keys = batch.key_tuples(table.key_indices_in(batch.schema))
            position = 0
            n = len(batch)
            while position < n:
                position = table.insert_batch(batch, keys=keys, start=position)
                if position < n:
                    # Memory pressure: flush the largest bucket and retry the
                    # refused suffix (rows whose bucket got flushed spill on
                    # the retry, as in the tuple path).
                    self._raise_out_of_memory()
                    if table.flush_largest_bucket() is None:
                        # Nothing resident to flush; the tuple path's single
                        # retry gives up on such a row, so take one plain
                        # per-row step and move on.
                        key = keys[position]
                        index = bucket_of(key, table.bucket_count)
                        if table.buckets[index].flushed:
                            table.spill_position(
                                index,
                                batch.columns,
                                position,
                                batch.arrivals[position],
                                marked=False,
                            )
                        else:
                            table.insert_position(
                                index,
                                key,
                                batch.columns,
                                position,
                                batch.arrivals[position],
                            )
                        position += 1
        self._charge_disk_time()
        self._built = True

    def _raise_out_of_memory(self) -> None:
        self._stats.overflow_events += 1
        self.context.emit_event(EventType.OUT_OF_MEMORY, self.operator_id)

    def _on_lease_revoked(self, budget: MemoryBudget) -> None:
        """Broker revocation: lazily flush buckets until the new lease fits.

        Mid-build this is exactly the insert-time overflow path (flush the
        largest bucket); mid-probe it is still safe — probe tuples hashing
        to a freshly flushed bucket spill to the outer overflow files and
        join in the final pass, the standard hybrid-hash discipline.
        """
        table = self._inner_table
        if table is None:
            return
        flushed_any = False
        while budget.limit_bytes is not None and budget.used_bytes > budget.limit_bytes:
            # Flush first: a revocation that finds nothing resident (only
            # dictionary/metadata bytes remain) must not emit OUT_OF_MEMORY
            # events that no resolution follows.
            if table.flush_largest_bucket() is None:
                break
            flushed_any = True
            self._raise_out_of_memory()
        if flushed_any:
            self._charge_disk_time()

    # -- probe phase --------------------------------------------------------------------------

    def _outer_overflow_file(self, bucket_index: int) -> OverflowFile:
        if bucket_index not in self._outer_overflow:
            self._outer_overflow[bucket_index] = self.context.disk.create_file(
                f"{self.operator_id}-outer-b{bucket_index}",
                schema=self.left.output_schema,
            )
        return self._outer_overflow[bucket_index]

    def _probe_one(self, outer_row: Row) -> list[Row]:
        assert self._inner_table is not None
        key = self.left_key(outer_row)
        if self._inner_table.is_bucket_flushed_for(key):
            bucket_index = bucket_of(key, self._inner_table.bucket_count)
            self._outer_overflow_file(bucket_index).write(outer_row)
            self._charge_disk_time()
            return []
        schema = self.output_schema
        values = outer_row.values
        arrival = outer_row.arrival
        make = Row.make
        matched = self._inner_table.match_positions(key)
        if matched is None:
            return []
        partition, positions = matched
        out: list[Row] = []
        arrivals = partition.arrivals
        for position in positions:
            inner_arrival = arrivals[position]
            out.append(
                make(
                    schema,
                    values + partition.value_tuple(position),
                    arrival if arrival >= inner_arrival else inner_arrival,
                )
            )
        return out

    def _overflow_pairs(self) -> Iterator[Row]:
        """Row-at-a-time overflow pass: joins spilled pairs, boxing each tuple.

        Serves the tuple and row-batch drives; the columnar drive uses
        :meth:`_overflow_pair_batches` instead and never boxes spilled rows.
        """
        assert self._inner_table is not None
        for bucket_index in self._inner_table.flushed_buckets:
            outer_file = self._outer_overflow.get(bucket_index)
            if outer_file is None:
                continue
            # Reload the inner bucket (charging read I/O) into a transient map.
            inner_by_key: dict[tuple, list[Row]] = {}
            for inner_row, _ in self._inner_table.overflow_rows(bucket_index):
                inner_by_key.setdefault(self.right_key(inner_row), []).append(inner_row)
            self._charge_disk_time()
            for outer_row, _ in outer_file.read():
                for inner_row in inner_by_key.get(self.left_key(outer_row), ()):
                    yield self.join_rows(outer_row, inner_row)
            self._charge_disk_time()

    def _overflow_pair_batches(self) -> Iterator[Batch]:
        """Columnar overflow pass: joins spill chunks positionally, no boxing."""
        assert self._inner_table is not None
        table = self._inner_table
        inner_schema = table.schema
        inner_key_at = self._right_binder.indices_in(inner_schema)
        outer_schema = self.left.output_schema
        outer_key_at = self._left_binder.indices_in(outer_schema)
        schema = self.output_schema
        outer_width = len(outer_schema)
        inner_width = len(inner_schema)
        for bucket_index in table.flushed_buckets:
            outer_file = self._outer_overflow.get(bucket_index)
            if outer_file is None:
                continue
            # Reload the inner bucket into a positional map: key -> list of
            # (chunk columns, chunk arrivals, position).
            inner_by_key: dict[tuple, list] = {}
            for chunk in table.overflow_chunks(bucket_index):
                # Decode dict codes / RLE arrivals once per chunk; the
                # positional map then indexes plain sequences.
                columns = [as_values(c) for c in chunk.columns]
                arrivals = as_values(chunk.arrivals)
                key_columns = [columns[i] for i in inner_key_at]
                for position in range(len(chunk)):
                    key = tuple(column[position] for column in key_columns)
                    inner_by_key.setdefault(key, []).append(
                        (columns, arrivals, position)
                    )
            self._charge_disk_time()
            out_columns: list[list[Any]] = [[] for _ in range(outer_width + inner_width)]
            out_arrivals: list[float] = []
            for chunk in outer_file.read_chunks():
                columns = [as_values(c) for c in chunk.columns]
                arrivals = as_values(chunk.arrivals)
                key_columns = [columns[i] for i in outer_key_at]
                for position in range(len(chunk)):
                    key = tuple(column[position] for column in key_columns)
                    matches = inner_by_key.get(key)
                    if not matches:
                        continue
                    outer_arrival = arrivals[position]
                    for inner_columns, inner_arrivals, inner_position in matches:
                        for j in range(outer_width):
                            out_columns[j].append(columns[j][position])
                        for j in range(inner_width):
                            out_columns[outer_width + j].append(
                                inner_columns[j][inner_position]
                            )
                        inner_arrival = inner_arrivals[inner_position]
                        out_arrivals.append(
                            outer_arrival
                            if outer_arrival >= inner_arrival
                            else inner_arrival
                        )
            self._charge_disk_time()
            if out_arrivals:
                yield Batch.from_columns(schema, out_columns, out_arrivals)

    # -- iterator ----------------------------------------------------------------------------------

    def _next(self) -> Row | None:
        if not self._built:
            self._build_inner()
        while True:
            if self._pending_out is not None:
                row = self._pending_out.next_row()
                if row is not None:
                    return row
                self._pending_out = None
            if self._probe_matches:
                return self._probe_matches.pop()
            if self._overflow_batches is not None:
                # A batch caller already started the columnar overflow pass;
                # keep draining it (restarting the row pass would re-read the
                # spill files and duplicate the already-emitted pairs).
                batch = next(self._overflow_batches, None)
                if batch is None:
                    return None
                self._pending_out = BatchCursor(batch)
                continue
            if self._overflow_output is not None:
                return next(self._overflow_output, None)
            outer_row = self.left.next()
            if outer_row is None:
                self._overflow_output = self._overflow_pairs()
                continue
            self._probe_matches = self._probe_one(outer_row)

    def _probe_outer_batch(self, outer: Batch) -> Batch | None:
        """Probe one outer batch in bulk; ``None`` when nothing matched.

        On the columnar path the probe keys are extracted as column slices
        (one ``zip`` over the key columns), outer tuples of flushed buckets
        are spilled as per-file column gathers, and the output batch is
        assembled from gathered match columns — no per-row key tuples via
        attribute lookup, no :class:`Row` construction, and no per-tuple
        spill writes.  Row-backed outer batches take the per-row path.
        """
        assert self._inner_table is not None
        table = self._inner_table
        if not outer.is_columnar:
            matches: list[Row] = []
            for outer_row in outer.rows():
                matches.extend(self._probe_one(outer_row))
            if not matches:
                return None
            return Batch.from_rows(self.output_schema, matches)
        keys = outer.key_tuples(self._left_binder.indices_in(outer.schema))
        positions: list[int] | None = None
        if table.flushed_count:
            # Split probed positions into live probes and per-bucket spills.
            buckets = table.buckets
            count = table.bucket_count
            positions = []
            spills: dict[int, list[int]] = {}
            for position, key in enumerate(keys):
                index = hash(key) % count
                if buckets[index].flushed:
                    found = spills.get(index)
                    if found is None:
                        spills[index] = [position]
                    else:
                        found.append(position)
                else:
                    positions.append(position)
            if spills:
                columns = outer.columns
                arrivals = outer.arrivals
                for index, spill_positions in spills.items():
                    self._outer_overflow_file(index).write_gather(
                        columns, arrivals, spill_positions
                    )
                self._charge_disk_time()
        result = table.gather_matches(keys, positions)
        if result is None:
            return None
        take, match_columns, match_arrivals, aligned = result
        return gather_join_columns(
            outer, take, match_columns, match_arrivals, self.output_schema, aligned
        )

    def _next_batch(self, max_rows: int) -> Batch:
        if not self._built:
            self._build_inner_batched()
        context = self.context
        schema = self.output_schema
        parts: list[Batch] = []
        count = 0
        while count < max_rows:
            if self._pending_out is not None:
                part = self._pending_out.take(max_rows - count)
                if not self._pending_out:
                    self._pending_out = None
                if part:
                    parts.append(part)
                    count += len(part)
                continue
            if self._probe_matches:
                # Leftovers from a tuple-at-a-time caller on the same operator.
                needed = max_rows - count
                rows = self._probe_matches[:needed]
                del self._probe_matches[:needed]
                parts.append(Batch.from_rows(schema, rows))
                count += len(rows)
                continue
            if self._overflow_batches is not None:
                batch = next(self._overflow_batches, None)
                if batch is None:
                    break
                self._pending_out = BatchCursor(batch)
                continue
            if self._overflow_output is not None:
                rows = []
                needed = max_rows - count
                for row in self._overflow_output:
                    rows.append(row)
                    if len(rows) >= needed:
                        break
                if not rows:
                    break
                parts.append(Batch.from_rows(schema, rows))
                count += len(rows)
                continue
            outer = self.left.next_batch(max_rows)
            if not outer:
                if context.columnar:
                    self._overflow_batches = self._overflow_pair_batches()
                else:
                    self._overflow_output = self._overflow_pairs()
                continue
            result = self._probe_outer_batch(outer)
            if result is not None:
                self._pending_out = BatchCursor(result)
            if context.batch_interrupt and count:
                break
        return Batch.concat(schema, parts)

    def _do_close(self) -> None:
        try:
            if self._inner_table is not None:
                self._inner_table.release_all()
        finally:
            # Even if releasing the table raises mid-flush, the pool lease
            # must go back so broker.used == sum(resident_bytes) holds.
            self.context.memory_pool.revoke(self.operator_id)
