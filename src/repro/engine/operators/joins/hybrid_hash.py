"""Hybrid hash join: the conventional baseline join (Section 4.2.1).

The inner (right) relation is built into a hash table; the outer (left)
relation then probes it.  When the build exceeds the operator's memory
allotment, buckets are lazily flushed to disk (hybrid hashing); probe tuples
that hash to a flushed bucket are spilled to matching outer overflow files,
and the overflow pairs are joined in a final pass.

Because the build phase must consume the *entire* inner input before the
first output tuple, this operator exhibits exactly the delayed
time-to-first-tuple the paper contrasts with the double pipelined join.
"""

from __future__ import annotations

from typing import Iterator

from repro.engine.context import ExecutionContext
from repro.engine.iterators import DEFAULT_BATCH_SIZE, Operator
from repro.engine.operators.joins.base import JoinOperator
from repro.plan.rules import EventType
from repro.storage.batch import Batch, BatchCursor, collect_matches, gather_join
from repro.storage.disk import OverflowFile
from repro.storage.hash_table import BucketedHashTable, DEFAULT_BUCKET_COUNT, bucket_of
from repro.storage.memory import MemoryBudget
from repro.storage.tuples import Row


class HybridHashJoin(JoinOperator):
    """Classic hybrid hash join with lazy bucket overflow."""

    def __init__(
        self,
        operator_id: str,
        context: ExecutionContext,
        left: Operator,
        right: Operator,
        left_keys: list[str],
        right_keys: list[str],
        memory_limit_bytes: int | None = None,
        bucket_count: int = DEFAULT_BUCKET_COUNT,
        estimated_cardinality: int | None = None,
    ) -> None:
        super().__init__(
            operator_id, context, left, right, left_keys, right_keys, estimated_cardinality
        )
        self.budget: MemoryBudget = context.memory_pool.grant(operator_id, memory_limit_bytes)
        self.bucket_count = bucket_count
        self._inner_table: BucketedHashTable | None = None
        self._outer_overflow: dict[int, OverflowFile] = {}
        self._built = False
        self._probe_matches: list[Row] = []
        self._pending_out: BatchCursor | None = None
        self._overflow_output: Iterator[Row] | None = None

    # -- build phase --------------------------------------------------------------------

    def _do_open(self) -> None:
        self._inner_table = BucketedHashTable(
            self.right_keys,
            self.budget,
            self.context.disk,
            bucket_count=self.bucket_count,
            name=f"{self.operator_id}-inner",
        )

    def _build_inner(self) -> None:
        assert self._inner_table is not None
        while True:
            row = self.right.next()
            if row is None:
                break
            inserted = self._inner_table.insert(row)
            if not inserted and not self._inner_table.is_bucket_flushed_for(
                self._inner_table.key_for(row)
            ):
                # Memory pressure: lazily flush the largest bucket and retry;
                # if the row's own bucket got flushed the retry spills it.
                self._raise_out_of_memory()
                self._inner_table.flush_largest_bucket()
                self._inner_table.insert(row)
        self._charge_disk_time()
        self._built = True

    def _build_inner_batched(self) -> None:
        """Batch-at-a-time build: bulk inserts with the tuple path's overflow recovery."""
        assert self._inner_table is not None
        table = self._inner_table
        right = self.right
        # The build side is buffered as Row objects either way (the hash
        # table stores and memory-accounts rows), so ask the subtree for
        # row-backed batches.
        with self.context.row_backed_pulls():
            while True:
                batch = right.next_batch(DEFAULT_BATCH_SIZE)
                if not batch:
                    break
                rows = batch.rows()
                while rows:
                    rows = table.insert_batch(rows)
                    if rows:
                        # Memory pressure: flush the largest bucket and retry
                        # the refused suffix (rows whose bucket got flushed
                        # spill on the retry, as in the tuple path).
                        self._raise_out_of_memory()
                        if table.flush_largest_bucket() is None:
                            # Nothing resident to flush; the tuple path's
                            # single retry gives up on such a row, so route it
                            # through one plain insert and move on.
                            table.insert(rows[0])
                            rows = rows[1:]
        self._charge_disk_time()
        self._built = True

    def _raise_out_of_memory(self) -> None:
        self._stats.overflow_events += 1
        self.context.emit_event(EventType.OUT_OF_MEMORY, self.operator_id)

    # -- probe phase --------------------------------------------------------------------------

    def _outer_overflow_file(self, bucket_index: int) -> OverflowFile:
        if bucket_index not in self._outer_overflow:
            self._outer_overflow[bucket_index] = self.context.disk.create_file(
                f"{self.operator_id}-outer-b{bucket_index}"
            )
        return self._outer_overflow[bucket_index]

    def _probe_one(self, outer_row: Row) -> list[Row]:
        assert self._inner_table is not None
        key = self.left_key(outer_row)
        if self._inner_table.is_bucket_flushed_for(key):
            bucket_index = bucket_of(key, self._inner_table.bucket_count)
            self._outer_overflow_file(bucket_index).write(outer_row)
            self._charge_disk_time()
            return []
        return [
            self.join_rows(outer_row, inner_row)
            for inner_row in self._inner_table.probe(key)
        ]

    def _overflow_pairs(self) -> Iterator[Row]:
        """Join the spilled inner buckets against the matching outer spill files."""
        assert self._inner_table is not None
        for bucket_index in self._inner_table.flushed_buckets:
            outer_file = self._outer_overflow.get(bucket_index)
            if outer_file is None:
                continue
            # Reload the inner bucket (charging read I/O) into a transient map.
            inner_by_key: dict[tuple, list[Row]] = {}
            for inner_row, _ in self._inner_table.overflow_rows(bucket_index):
                inner_by_key.setdefault(self.right_key(inner_row), []).append(inner_row)
            self._charge_disk_time()
            for outer_row, _ in outer_file.read():
                for inner_row in inner_by_key.get(self.left_key(outer_row), ()):
                    yield self.join_rows(outer_row, inner_row)
            self._charge_disk_time()

    # -- iterator ----------------------------------------------------------------------------------

    def _next(self) -> Row | None:
        if not self._built:
            self._build_inner()
        while True:
            if self._pending_out is not None:
                row = self._pending_out.next_row()
                if row is not None:
                    return row
                self._pending_out = None
            if self._probe_matches:
                return self._probe_matches.pop()
            if self._overflow_output is not None:
                return next(self._overflow_output, None)
            outer_row = self.left.next()
            if outer_row is None:
                self._overflow_output = self._overflow_pairs()
                continue
            self._probe_matches = self._probe_one(outer_row)

    def _probe_outer_batch(self, outer: Batch) -> Batch | None:
        """Probe one outer batch in bulk; ``None`` when nothing matched.

        On the columnar path the probe keys are extracted as column slices
        (one ``zip`` over the key columns) and the output batch is assembled
        with per-column gathers — no per-row key tuples via attribute lookup
        and no per-match :class:`Row` construction.  Once any bucket has
        spilled, probing falls back to the per-row path, which routes outer
        tuples of flushed buckets to their overflow files.
        """
        assert self._inner_table is not None
        table = self._inner_table
        if table.flushed_buckets or not outer.is_columnar:
            matches: list[Row] = []
            for outer_row in outer.rows():
                matches.extend(self._probe_one(outer_row))
            if not matches:
                return None
            return Batch.from_rows(self.output_schema, matches)
        keys = outer.key_tuples(self._left_binder.indices_in(outer.schema))
        take, inner_rows, aligned = collect_matches(table.probe_batch(keys))
        if not inner_rows:
            return None
        return gather_join(outer, take, inner_rows, self.output_schema, aligned=aligned)

    def _next_batch(self, max_rows: int) -> Batch:
        if not self._built:
            self._build_inner_batched()
        context = self.context
        schema = self.output_schema
        parts: list[Batch] = []
        count = 0
        while count < max_rows:
            if self._pending_out is not None:
                part = self._pending_out.take(max_rows - count)
                if not self._pending_out:
                    self._pending_out = None
                if part:
                    parts.append(part)
                    count += len(part)
                continue
            if self._probe_matches:
                # Leftovers from a tuple-at-a-time caller on the same operator.
                needed = max_rows - count
                rows = self._probe_matches[:needed]
                del self._probe_matches[:needed]
                parts.append(Batch.from_rows(schema, rows))
                count += len(rows)
                continue
            if self._overflow_output is not None:
                rows = []
                needed = max_rows - count
                for row in self._overflow_output:
                    rows.append(row)
                    if len(rows) >= needed:
                        break
                if not rows:
                    break
                parts.append(Batch.from_rows(schema, rows))
                count += len(rows)
                continue
            outer = self.left.next_batch(max_rows)
            if not outer:
                self._overflow_output = self._overflow_pairs()
                continue
            result = self._probe_outer_batch(outer)
            if result is not None:
                self._pending_out = BatchCursor(result)
            if context.batch_interrupt and count:
                break
        return Batch.concat(schema, parts)

    def _do_close(self) -> None:
        if self._inner_table is not None:
            self._inner_table.release_all()
        self.context.memory_pool.revoke(self.operator_id)
