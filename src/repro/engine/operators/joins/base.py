"""Shared machinery for join operators."""

from __future__ import annotations

from repro.engine.context import ExecutionContext
from repro.engine.iterators import Operator
from repro.errors import PlanError
from repro.storage.schema import Schema
from repro.storage.tuples import KeyBinder, Row


class JoinOperator(Operator):
    """Base class for binary equi-join operators.

    ``left_keys`` / ``right_keys`` are attribute names (qualified or base)
    resolved against the left and right child schemas respectively.
    """

    def __init__(
        self,
        operator_id: str,
        context: ExecutionContext,
        left: Operator,
        right: Operator,
        left_keys: list[str],
        right_keys: list[str],
        estimated_cardinality: int | None = None,
    ) -> None:
        if len(left_keys) != len(right_keys):
            raise PlanError("join key lists must have the same length")
        if not left_keys:
            raise PlanError("equi-join requires at least one key pair")
        super().__init__(
            operator_id,
            context,
            children=[left, right],
            estimated_cardinality=estimated_cardinality,
        )
        self.left_keys = list(left_keys)
        self.right_keys = list(right_keys)
        self._schema: Schema | None = None
        self._left_binder = KeyBinder(left_keys)
        self._right_binder = KeyBinder(right_keys)

    @property
    def left(self) -> Operator:
        return self.children[0]

    @property
    def right(self) -> Operator:
        return self.children[1]

    @property
    def output_schema(self) -> Schema:
        if self._schema is None:
            self._schema = self.left.output_schema.join(self.right.output_schema)
        return self._schema

    def join_rows(self, left_row: Row, right_row: Row) -> Row:
        """Concatenate a matching pair in left-then-right attribute order."""
        return left_row.concat(right_row, self.output_schema)

    def left_key(self, row: Row):
        return self._left_binder.key(row)

    def right_key(self, row: Row):
        return self._right_binder.key(row)

    def _charge_disk_time(self) -> None:
        """Convert disk page I/O performed since the last call into virtual time."""
        disk = self.context.disk
        if not hasattr(self, "_disk_baseline"):
            self._disk_baseline = disk.stats.snapshot()
        elapsed = disk.io_time_ms(self._disk_baseline)
        if elapsed > 0:
            self.context.clock.consume_io(elapsed)
            self._disk_baseline = disk.stats.snapshot()
