"""The dynamic collector (Section 4.1).

A collector computes a union over a set of overlapping or mirrored sources
under a *policy*: it contacts some of its children, monitors their progress,
activates fallback sources when a child fails or times out, and can drop
slow mirrors once enough data has been obtained.  Child activation and
deactivation can also be driven externally by ECA rules (the ``activate`` /
``deactivate`` rule actions), which is how optimizer-generated policies are
expressed.
"""

from __future__ import annotations

from typing import Any

from repro.engine.context import ExecutionContext
from repro.engine.iterators import Operator
from repro.errors import ExecutionError, SourceTimeoutError, SourceUnavailableError
from repro.plan.rules import EventType
from repro.storage.batch import Batch
from repro.storage.columns import as_values
from repro.storage.disk import OverflowFile
from repro.storage.schema import Schema, merge_union_schema
from repro.storage.tuples import KeyBinder, Row

#: Per-key tuple/set-slot overhead charged for one remembered dedup key.
DEDUP_KEY_OVERHEAD_BYTES = 16

#: Bytes charged per spilled key for its retained in-memory hash digest
#: (one 64-bit hash — the summary that lets fresh keys skip the spill-file
#: scan entirely; an actual hit still confirms against the file).
DEDUP_DIGEST_BYTES = 8


class DynamicCollector(Operator):
    """Policy-driven union over overlapping sources.

    Parameters
    ----------
    children:
        Child operators, typically wrapper scans over mirrors of one mediated
        relation.  Children are addressed by their operator id.
    initially_active:
        Operator ids to contact when the collector opens.  ``None`` activates
        every child (the plain-union-like default).
    fallback_on_failure:
        When true, a failed or timed-out child causes the next inactive child
        to be activated automatically (in declaration order).
    dedup_keys:
        Attribute names used to suppress duplicates coming from overlapping
        sources; ``None`` disables deduplication.
    dedup_budget_bytes:
        Allotment for the dedup key set; ``None`` (the default) grants an
        unbounded budget, the paper's behaviour.

    Dedup state is *byte-accounted*: every remembered key charges its
    estimated footprint (key attribute sizes plus tuple/set-slot overhead)
    to a budget carved from the query's memory pool, so the §4 invariant —
    memory an operator holds is memory the pool knows about — extends to
    dedup plans, and its usage is visible to rule conditions via
    ``operator_memory``.  When the budget is bounded — an explicit
    ``dedup_budget_bytes``, or a broker lease revoked under cross-query
    pressure — an over-limit key set **spills**: the resident keys move to
    an :class:`~repro.storage.disk.OverflowFile` (one columnar chunk, bytes
    released), and later membership tests consult the spilled portion by
    re-reading the file with real I/O charges — duplicate suppression stays
    exact, and the cost of insufficient memory shows up in virtual time
    instead of a silently growing key set.
    """

    def __init__(
        self,
        operator_id: str,
        context: ExecutionContext,
        children: list[Operator],
        initially_active: list[str] | None = None,
        fallback_on_failure: bool = True,
        dedup_keys: list[str] | None = None,
        estimated_cardinality: int | None = None,
        dedup_budget_bytes: int | None = None,
    ) -> None:
        if not children:
            raise ExecutionError("collector requires at least one child")
        super().__init__(
            operator_id, context, children=children, estimated_cardinality=estimated_cardinality
        )
        self._child_by_id = {child.operator_id: child for child in children}
        if len(self._child_by_id) != len(children):
            raise ExecutionError("collector children must have unique operator ids")
        self.fallback_on_failure = fallback_on_failure
        self.dedup_keys = list(dedup_keys) if dedup_keys else None
        if initially_active is None:
            self._initially_active = [child.operator_id for child in children]
        else:
            unknown = set(initially_active) - set(self._child_by_id)
            if unknown:
                raise ExecutionError(f"unknown collector children: {sorted(unknown)}")
            self._initially_active = list(initially_active)
        self._active: list[str] = []
        self._finished: set[str] = set()
        self._failed: set[str] = set()
        self._never_started: list[str] = []
        self._seen_keys: set[tuple[Any, ...]] = set()
        self._schema: Schema | None = None
        self.tuples_per_child: dict[str, int] = {c.operator_id: 0 for c in children}
        self._dedup_binder = KeyBinder(self.dedup_keys) if self.dedup_keys else None
        #: Budget charged for the dedup key set (see the class docstring).
        self.budget = context.memory_pool.grant(f"{operator_id}-dedup", dedup_budget_bytes)
        self.budget.on_revoke = self._on_dedup_revoked
        self._key_bytes: int | None = None
        self._spilled_keys_file: OverflowFile | None = None
        self._spilled_key_count = 0
        #: Hashes of every spilled key (budget-charged at
        #: :data:`DEDUP_DIGEST_BYTES` each): a digest miss proves a key was
        #: never spilled without touching the file, so only genuine
        #: duplicates (and vanishingly rare hash collisions) pay the
        #: confirm-by-scan I/O.
        self._spilled_digest: set[int] = set()
        self.dedup_spills = 0
        self._disk_baseline = None

    def _dedup_key_bytes(self) -> int:
        """Estimated bytes one remembered dedup key occupies."""
        size = self._key_bytes
        if size is None:
            schema = self.output_schema
            size = DEDUP_KEY_OVERHEAD_BYTES + sum(
                schema.attributes[i].avg_size + 8
                for i in self._dedup_binder.indices_in(schema)
            )
            self._key_bytes = size
        return size

    # -- dedup key-set spilling ----------------------------------------------------------

    def _charge_disk_time(self) -> None:
        """Convert key-set spill I/O performed since the last call into virtual time."""
        disk = self.context.disk
        if self._disk_baseline is None:
            self._disk_baseline = disk.stats.snapshot()
        elapsed = disk.io_time_ms(self._disk_baseline)
        if elapsed > 0:
            self.context.clock.consume_io(elapsed)
            self._disk_baseline = disk.stats.snapshot()

    def _key_schema(self) -> Schema:
        schema = self.output_schema
        return Schema(
            tuple(schema.attributes[i] for i in self._dedup_binder.indices_in(schema))
        )

    def _reserve_dedup_keys(self, added: int) -> None:
        """Charge freshly remembered keys; spill the set when over the limit.

        Key growth cannot be refused key by key (forgetting a key breaks
        duplicate suppression), so the charge is forced and the overflow
        signal — usage past a bounded limit — resolves by moving the whole
        resident set to disk, the same flush-don't-fail discipline the
        hash-table buckets follow.
        """
        if added <= 0:
            return
        budget = self.budget
        budget.force_reserve(added * self._dedup_key_bytes())
        if budget.limit_bytes is not None and budget.used_bytes > budget.limit_bytes:
            self._spill_seen_keys()

    def _on_dedup_revoked(self, budget) -> None:
        """Broker revocation mid-query: the key set spills immediately."""
        self._spill_seen_keys()

    def _spill_seen_keys(self) -> None:
        """Move the resident key set to the overflow file and release its bytes."""
        keys = self._seen_keys
        if not keys:
            return
        if self._disk_baseline is None:
            # Baseline *before* the first write, so the first spill's I/O is
            # charged like every later one.
            self._disk_baseline = self.context.disk.stats.snapshot()
        if self._spilled_keys_file is None:
            self._spilled_keys_file = self.context.disk.create_file(
                f"{self.operator_id}-dedup", schema=self._key_schema()
            )
        ordered = list(keys)
        columns = [list(column) for column in zip(*ordered)]
        # Keys carry no arrival of their own; a constant stamp keeps the
        # chunk's arrival column one run in encoded mode.
        self._spilled_keys_file.write_columns(
            columns, [self.context.clock.now] * len(ordered)
        )
        self._spilled_key_count += len(ordered)
        digest = self._spilled_digest
        before = len(digest)
        digest.update(hash(key) for key in ordered)
        self._seen_keys = set()
        # The payload bytes leave memory; the retained digest is charged at
        # its real footprint, so the budget stays an honest total (a limit
        # smaller than the digest itself simply keeps the resident set
        # near-empty — thrashy but exact).
        self.budget.release(len(ordered) * self._dedup_key_bytes())
        added = len(digest) - before
        if added:
            self.budget.force_reserve(added * DEDUP_DIGEST_BYTES)
        self.dedup_spills += 1
        self._charge_disk_time()

    def _spilled_hits(self, keys) -> frozenset:
        """Which of ``keys`` were spilled earlier (digest filter, then scan).

        The spilled portion of the key set lives on disk only.  The
        in-memory digest of spilled-key hashes rules out fresh keys for
        free; probes that survive it re-read the file chunk by chunk with
        the standard page-count charges to confirm exactly — so the
        virtual-time price of deduplicating in less memory than the key
        set needs is paid per genuine duplicate, not per row.
        """
        file = self._spilled_keys_file
        if file is None or len(file) == 0:
            return frozenset()
        digest = self._spilled_digest
        probe = {key for key in keys if hash(key) in digest}
        if not probe:
            return frozenset()
        hits = set()
        for chunk in file.read_chunks():
            columns = [as_values(column) for column in chunk.columns]
            for position in range(len(chunk)):
                key = tuple(column[position] for column in columns)
                if key in probe:
                    hits.add(key)
        self._charge_disk_time()
        return frozenset(hits)

    # -- schema -------------------------------------------------------------------------

    @property
    def output_schema(self) -> Schema:
        if self._schema is None:
            schema = self.children[0].output_schema
            for child in self.children[1:]:
                schema = merge_union_schema(schema, child.output_schema)
            self._schema = schema
        return self._schema

    # -- activation control (used by rule actions and policies) -----------------------------

    def open(self) -> None:  # noqa: D102 - overrides to defer child opening to activation
        if self.state == "open":
            return
        self._never_started = [
            child.operator_id
            for child in self.children
            if child.operator_id not in self._initially_active
        ]
        self.state = "open"
        self._stats.state = "open"
        self.context.emit_event(EventType.OPENED, self.operator_id)
        for child_id in self._initially_active:
            self.activate_child(child_id)

    def activate_child(self, child_id: str) -> None:
        """Contact one child source (idempotent)."""
        if child_id in self._active or child_id in self._finished or child_id in self._failed:
            return
        child = self._require_child(child_id)
        child.open()
        self.context.reactivate(child_id)
        self._active.append(child_id)
        if child_id in self._never_started:
            self._never_started.remove(child_id)

    def deactivate_child(self, child_id: str) -> None:
        """Stop reading from one child (its rules become inactive too)."""
        child = self._require_child(child_id)
        if child_id in self._active:
            self._active.remove(child_id)
        self._finished.add(child_id)
        child.deactivate()

    def _require_child(self, child_id: str) -> Operator:
        try:
            return self._child_by_id[child_id]
        except KeyError:
            raise ExecutionError(
                f"collector {self.operator_id!r} has no child {child_id!r}"
            ) from None

    @property
    def active_children(self) -> list[str]:
        return list(self._active)

    @property
    def contacted_children(self) -> list[str]:
        """Children that were ever activated."""
        return [
            child.operator_id
            for child in self.children
            if child.operator_id not in self._never_started
        ]

    # -- failure handling -----------------------------------------------------------------------

    def _handle_child_failure(self, child_id: str) -> None:
        if child_id in self._active:
            self._active.remove(child_id)
        self._failed.add(child_id)
        if self.fallback_on_failure:
            for child in self.children:
                cid = child.operator_id
                if cid not in self._active and cid not in self._finished and cid not in self._failed:
                    self.activate_child(cid)
                    break

    # -- iteration ----------------------------------------------------------------------------------

    def _pick_child(self) -> str | None:
        """Active child with the earliest next arrival; ``None`` when all are done."""
        best_id, best_arrival = None, None
        for child_id in list(self._active):
            child = self._child_by_id[child_id]
            arrival = child.peek_arrival()
            if arrival is None:
                self._active.remove(child_id)
                self._finished.add(child_id)
                continue
            if best_arrival is None or arrival < best_arrival:
                best_id, best_arrival = child_id, arrival
        return best_id

    def _next(self) -> Row | None:
        schema = self.output_schema
        while True:
            child_id = self._pick_child()
            if child_id is None:
                return None
            child = self._child_by_id[child_id]
            try:
                row = child.next()
            except (SourceTimeoutError, SourceUnavailableError):
                self._handle_child_failure(child_id)
                continue
            if row is None:
                self._active.remove(child_id)
                self._finished.add(child_id)
                continue
            self.tuples_per_child[child_id] += 1
            self.context.emit_event(
                EventType.THRESHOLD, child_id, value=self.tuples_per_child[child_id]
            )
            if self.dedup_keys is not None:
                key = row.key(self.dedup_keys)
                if key in self._seen_keys or (
                    self._spilled_key_count and self._spilled_hits((key,))
                ):
                    continue
                self._seen_keys.add(key)
                self._reserve_dedup_keys(1)
            return Row(schema, row.values, row.arrival)

    def _next_batch(self, max_rows: int) -> Batch:
        """Batch iteration: bounded child runs with columnar deduplication.

        Which input to service next is still the collector's data-driven
        policy, but consecutive tuples of the chosen child are consumed as
        one *bounded run* — every row arriving strictly before the next-best
        child's arrival, exactly the rows a tuple-at-a-time drive would have
        pulled back to back.  Dedup keys are then extracted from the run's
        column slices in bulk and fresh rows kept with one index-take — no
        :class:`~repro.storage.tuples.Row` is boxed per tuple to call
        ``row.key``.  When a rule watches any child's THRESHOLD events the
        per-tuple path runs instead, so per-tuple events (and the rule
        actions they trigger) land at the tuple-accurate cut points.
        """
        context = self.context
        if any(
            context.event_watched(EventType.THRESHOLD, child.operator_id)
            for child in self.children
        ):
            return self._next_batch_tuplewise(max_rows)
        schema = self.output_schema
        parts: list[Batch] = []
        count = 0
        while count < max_rows:
            child_id = self._pick_child()
            if child_id is None:
                break
            child = self._child_by_id[child_id]
            bound = self._second_best_arrival(child_id)
            try:
                run = child.next_batch_bounded(max_rows - count, bound)
                if not run:
                    # Bound reached with nothing buffered (the tie case) or
                    # end of stream: take one exact per-tuple step.
                    row = child.next()
                    if row is None:
                        self._active.remove(child_id)
                        self._finished.add(child_id)
                        continue
                    run = Batch.from_rows(child.output_schema, [row])
            except (SourceTimeoutError, SourceUnavailableError):
                self._handle_child_failure(child_id)
                continue
            self.tuples_per_child[child_id] += len(run)
            if self.dedup_keys is not None:
                run = self._dedup_batch(run)
            if run:
                parts.append(run.with_schema(schema))
                count += len(run)
            if context.batch_interrupt and count:
                break
        return Batch.concat(schema, parts)

    def _second_best_arrival(self, chosen_id: str) -> float:
        """Earliest arrival any *other* active child could deliver."""
        best = float("inf")
        for child_id in self._active:
            if child_id == chosen_id:
                continue
            arrival = self._child_by_id[child_id].peek_arrival()
            if arrival is not None and arrival < best:
                best = arrival
        return best

    def _dedup_batch(self, run: Batch) -> Batch:
        """Drop already-seen keys from ``run`` with one index-take.

        Keys come from the run's column slices (dict-encoded columns decode
        to their dictionaries' canonical strings, so key hashing hits the
        cached-hash fast path); intra-run duplicates are suppressed too,
        matching the per-tuple discipline.
        """
        keys = run.key_tuples(self._dedup_binder.indices_in(run.schema))
        spilled = self._spilled_hits(keys) if self._spilled_key_count else frozenset()
        seen = self._seen_keys
        before = len(seen)
        if spilled:
            fresh = [
                position
                for position, key in enumerate(keys)
                if key not in spilled and key not in seen and not seen.add(key)
            ]
        else:
            fresh = [
                position
                for position, key in enumerate(keys)
                if key not in seen and not seen.add(key)
            ]
        added = len(seen) - before
        if added:
            self._reserve_dedup_keys(added)
        if len(fresh) == len(keys):
            return run
        if not fresh:
            return Batch.empty(run.schema)
        return run.take(fresh)

    def _next_batch_tuplewise(self, max_rows: int) -> Batch:
        """Per-row child selection with tuple-accurate THRESHOLD events.

        The pre-columnar batch path, kept for plans whose rules watch child
        thresholds: the batch is cut short as soon as a watched event fires
        so rule actions (activate/deactivate) take effect at the exact
        tuple.  The output batch is row-backed (rows are created here
        regardless); downstream columnar operators convert lazily.
        """
        schema = self.output_schema
        context = self.context
        out: list[Row] = []
        while len(out) < max_rows:
            child_id = self._pick_child()
            if child_id is None:
                break
            child = self._child_by_id[child_id]
            try:
                row = child.next()
            except (SourceTimeoutError, SourceUnavailableError):
                self._handle_child_failure(child_id)
                continue
            if row is None:
                self._active.remove(child_id)
                self._finished.add(child_id)
                continue
            count = self.tuples_per_child[child_id] + 1
            self.tuples_per_child[child_id] = count
            if context.event_watched(EventType.THRESHOLD, child_id):
                context.emit_event(EventType.THRESHOLD, child_id, value=count)
            if self.dedup_keys is not None:
                key = row.key(self.dedup_keys)
                if key in self._seen_keys or (
                    self._spilled_key_count and self._spilled_hits((key,))
                ):
                    if context.batch_interrupt and out:
                        break
                    continue
                self._seen_keys.add(key)
                self._reserve_dedup_keys(1)
            out.append(Row.make(schema, row.values, row.arrival))
            if context.batch_interrupt:
                break
        return Batch.from_rows(schema, out)

    def _do_close(self) -> None:
        try:
            if self.budget.used_bytes:
                self.budget.release(self.budget.used_bytes)
        finally:
            # Even if the release raises, the dedup lease must go back so
            # broker.used == sum(resident_bytes) holds.
            self._seen_keys = set()
            self._spilled_digest = set()
            self.context.memory_pool.revoke(f"{self.operator_id}-dedup")
