"""Partition-parallel execution: the ``Exchange`` / ``ExchangeSource`` pair.

An :class:`Exchange` hash-partitions its input streams by key across N worker
*lanes*.  Each lane is an independent operator subtree (built by a factory the
planner supplies) running on its own worker clock registered on the server's
shared virtual timeline, exactly like a session: the exchange steps whichever
lane has the earliest next event, so the interleaving — and with it every
result and every virtual-time statistic — is fully deterministic.  Producer
subtrees likewise run on their own worker clocks, so scan and network time is
overlapped with lane CPU instead of serialized in front of it on the virtual
timeline.

Producers drain *at open*: every input is pumped to completion and routed
before the first lane steps.  Virtual time cannot tell the difference —
producer clocks advance only through the fixed pump sequence, lane clocks
only through serves and processing — but it makes each lane a pure function
of its own routed queues (and makes ``ExchangeSource.peek_arrival``
effect-free).  That purity is the foundation of the pluggable lane
*backend* (``EngineConfig.exchange_backend``): the default ``inline``
backend steps lanes in this process, while the ``process`` backend
(:mod:`repro.parallel.backend`) runs each lane's subtree in its own OS
process over a columnar wire format and must produce identical result
multisets *and* identical virtual-time accounting.

Data movement stays encoded end to end: the producer routes a batch by
hashing the *canonical* key values (per-side dictionaries assign different
codes to the same string, so codes themselves cannot be hashed), then ships
per-lane slices built with :meth:`Batch.take` — a per-column gather of codes;
strings never cross the lane boundary.  The merge side re-interleaves lane
outputs by arrival stamp, earliest first, with the lane index as the
deterministic tie-break.

Causality on the timeline:

* a routed batch becomes *available* to a lane at the producer clock's time
  when it was routed; the lane's :class:`ExchangeSource` advances the lane
  clock to that stamp before serving it (a lane cannot read data from its
  producer's future);
* a merged batch carries the lane clock's time when the lane emitted it; the
  exchange advances the consumer clock to that stamp before handing it on;
* at end of stream the consumer clock advances to the *makespan* — the
  maximum over all producer and lane clocks — because the exchange is not
  done until its slowest worker is.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Iterator, Sequence

from repro.engine.context import EXCHANGE_BACKENDS, ExecutionContext
from repro.engine.iterators import DEFAULT_BATCH_SIZE, Operator
from repro.errors import ExecutionError
from repro.storage.batch import Batch, BatchCursor
from repro.storage.hash_table import stable_bucket_of
from repro.storage.schema import Schema
from repro.storage.tuples import KeyBinder, Row

#: CPU charge per routed row, as a fraction of the configured per-tuple cost.
#: Routing hashes one key tuple and appends one index per row — cheaper than
#: an operator that materializes or transforms the row, but not free; it is
#: charged on the *producer's* clock, where the routing work happens.
ROUTE_CPU_FACTOR = 0.25


def _wait_hint(root: Operator, clock) -> float | None:
    """Arrival time ``root``'s next pull would block for; ``None`` if ready.

    Local twin of :func:`repro.engine.executor.wait_hint` (importing the
    executor here would be circular: executor -> builder -> exchange).
    """
    arrival = root.peek_arrival()
    if arrival is None:
        return None
    if arrival > clock.now and arrival != float("inf"):
        return arrival
    return None


class ExchangeSource(Operator):
    """Lane-side leaf: serves the batches routed to one lane from one input.

    Producers are fully drained (and their batches routed) when the exchange
    opens, so by the time a lane pulls, everything routed to it is already
    queued: an empty queue with a finished producer is this lane's end of
    stream for that input, and ``peek_arrival`` is a pure read of the queue
    head — the effect-free peek contract the scheduler analysis enforces.

    ``feed`` is the exchange itself for inline lanes; in a lane worker
    process it is a stand-in satisfying the same three-method protocol
    (``producer_done`` / ``producer_error`` / ``await_routed``) whose
    ``await_routed`` blocks on the parent pipe until the in-flight routed
    data becomes observable — a wall-clock wait, invisible to virtual time.
    """

    def __init__(
        self,
        operator_id: str,
        context: ExecutionContext,
        feed: "Exchange",
        input_index: int,
        schema: Schema,
    ) -> None:
        super().__init__(operator_id, context)
        self._feed = feed
        self._input_index = input_index
        self._schema = schema
        #: queued (available_ms, batch) pairs; available_ms is monotone
        #: because the producer clock only moves forward between routings.
        self._queue: deque[tuple[float, Batch]] = deque()

    @property
    def output_schema(self) -> Schema:
        return self._schema

    def enqueue(self, available_ms: float, batch: Batch) -> None:
        self._queue.append((available_ms, batch))

    def peek_arrival(self) -> float | None:
        if self.state in ("closed", "deactivated"):
            return None
        while True:
            if self._queue:
                return self._queue[0][0]
            if self._feed.producer_done(self._input_index):
                if self._feed.producer_error(self._input_index) is not None:
                    # A failed producer looks ready so the consumer pulls —
                    # and the pull raises; errors never surface from a peek.
                    return self.context.clock.now
                return None
            self._feed.await_routed(self._input_index)

    def _ensure_queued(self) -> bool:
        """Wait until this lane has data queued or the stream has ended.

        Every lane sees the same producer failure: a recorded pump error
        re-raises on each lane's pull of that input, so per-lane collectors
        take their fallback path consistently.
        """
        feed = self._feed
        while not self._queue:
            if feed.producer_done(self._input_index):
                error = feed.producer_error(self._input_index)
                if error is not None:
                    raise error
                return False
            feed.await_routed(self._input_index)
        return True

    def _serve(self, max_rows: int) -> Batch:
        available, batch = self._queue.popleft()
        if len(batch) > max_rows:
            self._queue.appendleft((available, batch.slice(max_rows, len(batch))))
            batch = batch.slice(0, max_rows)
        self.context.clock.advance_to(available)
        return batch

    def _next(self) -> Row | None:
        if not self._ensure_queued():
            return None
        return self._serve(1)[0]

    def _next_batch(self, max_rows: int) -> Batch:
        if not self._ensure_queued():
            return Batch.empty(self._schema)
        return self._serve(max_rows)

    def _next_batch_bounded(self, max_rows: int, arrival_bound: float) -> Batch:
        if not self._ensure_queued():
            return Batch.empty(self._schema)
        available, batch = self._queue[0]
        if available >= arrival_bound:
            return Batch.empty(self._schema)  # not end of stream: tie-break case
        take = 0
        for arrival in batch.arrivals:
            if take >= max_rows or max(arrival, available) >= arrival_bound:
                break
            take += 1
        if take == 0:
            return Batch.empty(self._schema)
        if take == len(batch):
            return self._serve(take)
        self._queue.popleft()
        self._queue.appendleft((available, batch.slice(take, len(batch))))
        self.context.clock.advance_to(available)
        return batch.slice(0, take)


class _ProducerDriver:
    """One input stream: its operator root (on a worker clock) and routing keys."""

    __slots__ = ("root", "binder", "done", "error")

    def __init__(self, root: Operator, keys: Sequence[str]) -> None:
        self.root = root
        self.binder = KeyBinder(list(keys))
        self.done = False
        self.error: Exception | None = None


class _Lane:
    """One worker lane: its context, sources, subtree root, and step state."""

    __slots__ = ("index", "context", "sources", "root", "steps", "next_event_ms", "finished", "output")

    def __init__(self, index: int, context: ExecutionContext) -> None:
        self.index = index
        self.context = context
        self.sources: list[ExchangeSource] = []
        self.root: Operator | None = None
        self.steps: Iterator[float] | None = None
        self.next_event_ms = context.clock.now
        self.finished = False
        #: (produced_at_ms, batch) pairs awaiting the merge side.
        self.output: deque[tuple[float, Batch]] = deque()


class Exchange(Operator):
    """Partition / parallel-execute / merge, on the shared virtual timeline.

    ``children`` are the producer roots, each built on its own worker clock
    (the builder derives those contexts).  ``build_lane(index, lane_context,
    sources)`` constructs one lane's subtree over its :class:`ExchangeSource`
    leaves — the planner decides what runs inside a lane (a hash join, a
    deduplicating collector); the exchange only owns routing, stepping, and
    merging.  ``partition_keys[i]`` names the key columns of input ``i``; a
    row's lane is ``bucket_of(canonical key values, lanes)``, identical
    across inputs so matching rows always meet in the same lane.

    The merge is a pure handoff of already-produced batches (no per-value
    work), hence ``PER_TUPLE_CPU_FACTOR = 0``: the per-tuple cost of the
    parallelized work is paid on producer and lane clocks instead.
    """

    PER_TUPLE_CPU_FACTOR = 0.0

    def __init__(
        self,
        operator_id: str,
        context: ExecutionContext,
        producers: list[Operator],
        partition_keys: Sequence[Sequence[str]],
        lanes: int,
        build_lane: Callable[[int, ExecutionContext, list[ExchangeSource]], Operator],
        output_schema: Schema,
        estimated_cardinality: int | None = None,
        lane_spec=None,
        backend: str | None = None,
    ) -> None:
        if lanes < 1:
            raise ExecutionError(f"exchange {operator_id!r} needs at least one lane, got {lanes}")
        if len(partition_keys) != len(producers):
            raise ExecutionError(
                f"exchange {operator_id!r}: {len(producers)} inputs but "
                f"{len(partition_keys)} partition key lists"
            )
        # A per-plan backend choice overrides the engine-wide default.
        backend = backend or context.config.exchange_backend
        if backend not in EXCHANGE_BACKENDS:
            raise ExecutionError(
                f"exchange {operator_id!r}: unknown backend {backend!r} "
                f"(known: {', '.join(EXCHANGE_BACKENDS)})"
            )
        super().__init__(
            operator_id, context, children=producers, estimated_cardinality=estimated_cardinality
        )
        self.lane_count = lanes
        #: A single lane is pure pass-through — no routing, nothing to
        #: parallelize — so it always runs inline regardless of the backend.
        self.backend_name = backend if lanes > 1 else "inline"
        self._build_lane = build_lane
        #: Picklable description of the lane subtrees (what a worker process
        #: rebuilds); required by the process backend, ignored inline.
        self.lane_spec = lane_spec
        self._schema = output_schema
        self._producers = [
            _ProducerDriver(root, keys) for root, keys in zip(producers, partition_keys)
        ]
        self._route_cpu_ms = context.config.per_tuple_cpu_ms * ROUTE_CPU_FACTOR
        self._lanes: list[_Lane] | None = None
        self._backend = None
        self._cursor: BatchCursor | None = None
        self._drained = False
        #: Per-lane wire shipping counters, populated by the process backend
        #: (``None`` inline); survives close for benchmark reporting.
        self.wire_report: list[dict] | None = None

    # -- schema / introspection ----------------------------------------------------

    @property
    def output_schema(self) -> Schema:
        return self._schema

    @property
    def lane_operators(self) -> list[Operator]:
        """The lane subtree roots (for tests and broker-invariant checks)."""
        if self._lanes is None:
            return []
        return [lane.root for lane in self._lanes if lane.root is not None]

    # -- producer side (called by ExchangeSource) ----------------------------------

    def producer_done(self, input_index: int) -> bool:
        return self._producers[input_index].done

    def producer_error(self, input_index: int) -> Exception | None:
        """The recorded pump failure of input ``input_index`` (``None`` if clean)."""
        return self._producers[input_index].error

    def await_routed(self, input_index: int) -> None:
        """Block until routed data for ``input_index`` is observable.

        Inline this is unreachable: producers drain completely at open, so a
        lane's empty queue always coincides with a finished producer.  The
        worker-process feed overrides this with a pipe read (see
        :class:`ExchangeSource`)."""
        raise ExecutionError(
            f"exchange {self.operator_id!r}: input {input_index} has no data in "
            f"flight — producers drain at open"
        )

    def pump(self, input_index: int) -> None:
        """Pull one batch from input ``input_index`` and route it to the lanes.

        The first pump to raise stores the exception on the driver (and
        re-raises); lanes re-raise it from every pull of that input.
        """
        driver = self._producers[input_index]
        if driver.error is not None:
            raise driver.error
        if driver.done:
            return
        root = driver.root
        try:
            batch = root.next_batch(DEFAULT_BATCH_SIZE)
        except Exception as exc:
            driver.error = exc
            driver.done = True
            raise
        if not batch:
            driver.done = True
            return
        clock = root.context.clock
        clock.consume_cpu(len(batch) * self._route_cpu_ms)
        available = clock.now
        lanes = self._lanes
        assert lanes is not None, "pump before open"
        if self.lane_count == 1:
            lanes[0].sources[input_index].enqueue(available, batch)
            return
        keys = batch.key_tuples(driver.binder.indices_in(batch.schema))
        routed: list[list[int] | None] = [None] * self.lane_count
        for position, key in enumerate(keys):
            # Routing must agree between the parent and lane worker
            # *processes*, so it uses the PYTHONHASHSEED-independent hash
            # (builtin hash randomizes strings per process).
            lane_index = stable_bucket_of(key, self.lane_count)
            positions = routed[lane_index]
            if positions is None:
                routed[lane_index] = [position]
            else:
                positions.append(position)
        for lane_index, positions in enumerate(routed):
            if positions is None:
                continue
            part = batch if len(positions) == len(keys) else batch.take(positions)
            lanes[lane_index].sources[input_index].enqueue(available, part)

    # -- lifecycle -----------------------------------------------------------------

    def _do_open(self) -> None:
        lanes = [
            _Lane(index, self.context.derive_worker(f"{self.operator_id}.lane{index}"))
            for index in range(self.lane_count)
        ]
        self._lanes = lanes
        if self.backend_name == "process":
            from repro.parallel.backend import ProcessLanes

            self._backend = ProcessLanes(self, lanes)
            self._backend.open()
            return
        for lane in lanes:
            lane.sources = [
                ExchangeSource(
                    f"{self.operator_id}.in{input_index}.lane{lane.index}",
                    lane.context,
                    self,
                    input_index,
                    driver.root.output_schema,
                )
                for input_index, driver in enumerate(self._producers)
            ]
            lane.root = self._build_lane(lane.index, lane.context, lane.sources)
        for lane in lanes:
            lane.root.open()
            lane.steps = self._lane_steps(lane)
            lane.next_event_ms = lane.context.clock.now
        self._drain_producers()

    def _drain_producers(self) -> None:
        """Pump every producer to completion, routing everything up front.

        Virtual time is indifferent to *when* pumps physically execute:
        producer clocks advance only through pumps (a fixed sequence), lane
        clocks only through serves and processing, and no information flows
        from lanes back into producers.  Draining at open therefore yields
        the same stamps as demand-driven pumping — while making every lane a
        pure function of its own routed queues, which is what lets a lane
        run unchanged inside a worker process and still match inline
        bit for bit.  A pump failure is recorded on its driver and
        swallowed here; it re-raises on every lane's pull of that input.
        """
        for input_index, driver in enumerate(self._producers):
            while not driver.done:
                try:
                    self.pump(input_index)
                except Exception:
                    if driver.error is None:
                        raise
                    break

    def _lane_steps(self, lane: _Lane) -> Iterator[float]:
        """Session-style step generator: one yield per wait or output batch.

        Mirrors the server session's operator-tree drive: start with a small
        batch (time-to-first-tuple), grow geometrically, and surface a wait
        event (yielding the arrival time) before any pull that would block —
        that is what the earliest-event-first merge loop schedules on.
        """
        root = lane.root
        clock = lane.context.clock
        size = 1
        while True:
            wait_until = _wait_hint(root, clock)
            if wait_until is not None:
                yield wait_until
            batch = root.next_batch(size)
            if not batch:
                return
            lane.output.append((clock.now, batch))
            size = min(size * 4, DEFAULT_BATCH_SIZE)
            yield clock.now

    def _step_lane(self, lane: _Lane) -> None:
        try:
            lane.next_event_ms = next(lane.steps)
        except StopIteration:
            lane.finished = True
            lane.next_event_ms = lane.context.clock.now

    # -- merge side ----------------------------------------------------------------

    def _run_lanes(self) -> None:
        """Step lanes, earliest next event first, until every lane has output
        buffered or is finished.  Ties break on the lane index, so the
        interleaving is deterministic."""
        lanes = self._lanes
        while True:
            needy = [lane for lane in lanes if not lane.finished and not lane.output]
            if not needy:
                return
            self._step_lane(min(needy, key=lambda lane: (lane.next_event_ms, lane.index)))

    def _worker_makespan(self) -> float:
        clocks = [driver.root.context.clock.now for driver in self._producers]
        clocks.extend(lane.context.clock.now for lane in self._lanes)
        return max(clocks)

    def _merge_batch(self, max_rows: int) -> Batch:
        if self._drained:
            return Batch.empty(self._schema)
        self._run_lanes()
        ready = [lane for lane in self._lanes if lane.output]
        if not ready:
            # All lanes done and drained: the exchange completes when its
            # slowest worker does.
            self._drained = True
            self.context.clock.advance_to(self._worker_makespan())
            return Batch.empty(self._schema)
        lane = min(ready, key=lambda lane: (lane.output[0][1].arrivals[0], lane.index))
        produced_at, batch = lane.output.popleft()
        if len(batch) > max_rows:
            lane.output.appendleft((produced_at, batch.slice(max_rows, len(batch))))
            batch = batch.slice(0, max_rows)
        self.context.clock.advance_to(produced_at)
        return batch.with_schema(self._schema)

    def _next_batch(self, max_rows: int) -> Batch:
        cursor = self._cursor
        if cursor is not None:
            if cursor:
                return cursor.take(max_rows)
            self._cursor = None
        return self._merge_batch(max_rows)

    def _next(self) -> Row | None:
        cursor = self._cursor
        if cursor is None or not cursor:
            batch = self._merge_batch(DEFAULT_BATCH_SIZE)
            if not batch:
                return None
            cursor = self._cursor = BatchCursor(batch)
        return cursor.next_row()

    def peek_arrival(self) -> float | None:
        if self.state in ("closed", "deactivated"):
            return None
        if self._cursor is not None and self._cursor:
            return self.context.clock.now
        if self._lanes is None:
            return self.context.clock.now
        best: float | None = None
        for lane in self._lanes:
            if lane.output:
                candidate = lane.output[0][0]
            elif not lane.finished:
                candidate = lane.next_event_ms
            else:
                continue
            if best is None or candidate < best:
                best = candidate
        return best

    def _do_close(self) -> None:
        lanes = self._lanes or []
        error: Exception | None = None
        try:
            if self._backend is not None:
                self._backend.close()
                return
            for lane in lanes:
                if lane.root is None:
                    continue
                try:
                    lane.root.close()
                except Exception as exc:  # keep closing the other lanes
                    if error is None:
                        error = exc
            if error is not None:
                raise error
        finally:
            # Release every worker clock from the timeline — a stuck lane
            # clock would pin the server frontier forever.
            for clock in [d.root.context.clock for d in self._producers] + [
                lane.context.clock for lane in lanes
            ]:
                server = getattr(clock, "server", None)
                if server is not None:
                    server.finish(clock.session_id)
