"""Partition-parallel execution: the ``Exchange`` / ``ExchangeSource`` pair.

An :class:`Exchange` hash-partitions its input streams by key across N worker
*lanes*.  Each lane is an independent operator subtree (built by a factory the
planner supplies) running on its own worker clock registered on the server's
shared virtual timeline, exactly like a session: the exchange steps whichever
lane has the earliest next event, so the interleaving — and with it every
result and every virtual-time statistic — is fully deterministic.  Producer
subtrees likewise run on their own worker clocks, so scan and network time is
overlapped with lane CPU instead of serialized in front of it.

Data movement stays encoded end to end: the producer routes a batch by
hashing the *canonical* key values (per-side dictionaries assign different
codes to the same string, so codes themselves cannot be hashed), then ships
per-lane slices built with :meth:`Batch.take` — a per-column gather of codes;
strings never cross the lane boundary.  The merge side re-interleaves lane
outputs by arrival stamp, earliest first, with the lane index as the
deterministic tie-break.

Causality on the timeline:

* a routed batch becomes *available* to a lane at the producer clock's time
  when it was routed; the lane's :class:`ExchangeSource` advances the lane
  clock to that stamp before serving it (a lane cannot read data from its
  producer's future);
* a merged batch carries the lane clock's time when the lane emitted it; the
  exchange advances the consumer clock to that stamp before handing it on;
* at end of stream the consumer clock advances to the *makespan* — the
  maximum over all producer and lane clocks — because the exchange is not
  done until its slowest worker is.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Iterator, Sequence

from repro.engine.context import ExecutionContext
from repro.engine.iterators import DEFAULT_BATCH_SIZE, Operator
from repro.errors import ExecutionError
from repro.storage.batch import Batch, BatchCursor
from repro.storage.hash_table import bucket_of
from repro.storage.schema import Schema
from repro.storage.tuples import KeyBinder, Row

#: CPU charge per routed row, as a fraction of the configured per-tuple cost.
#: Routing hashes one key tuple and appends one index per row — cheaper than
#: an operator that materializes or transforms the row, but not free; it is
#: charged on the *producer's* clock, where the routing work happens.
ROUTE_CPU_FACTOR = 0.25


def _wait_hint(root: Operator, clock) -> float | None:
    """Arrival time ``root``'s next pull would block for; ``None`` if ready.

    Local twin of :func:`repro.engine.executor.wait_hint` (importing the
    executor here would be circular: executor -> builder -> exchange).
    """
    arrival = root.peek_arrival()
    if arrival is None:
        return None
    if arrival > clock.now and arrival != float("inf"):
        return arrival
    return None


class ExchangeSource(Operator):
    """Lane-side leaf: serves the batches routed to one lane from one input.

    Pull-driven like every other operator — when its queue is empty and the
    producer still has data, serving a pull *pumps* the exchange's producer
    driver (which routes the resulting batch to all lanes, not just this
    one).  An empty queue with a finished producer is this lane's end of
    stream for that input.
    """

    def __init__(
        self,
        operator_id: str,
        context: ExecutionContext,
        exchange: "Exchange",
        input_index: int,
        schema: Schema,
    ) -> None:
        super().__init__(operator_id, context)
        self._exchange = exchange
        self._input_index = input_index
        self._schema = schema
        #: queued (available_ms, batch) pairs; available_ms is monotone
        #: because the producer clock only moves forward between routings.
        self._queue: deque[tuple[float, Batch]] = deque()

    @property
    def output_schema(self) -> Schema:
        return self._schema

    def enqueue(self, available_ms: float, batch: Batch) -> None:
        self._queue.append((available_ms, batch))

    def peek_arrival(self) -> float | None:
        if self.state in ("closed", "deactivated"):
            return None
        if self._queue:
            return self._queue[0][0]
        if self._exchange.producer_done(self._input_index):
            return None
        # Lower bound: the producer cannot route anything before its own next
        # arrival.  Side-effect free — peeking never pumps.
        return self._exchange.producer_peek(self._input_index)

    def _ensure_queued(self) -> bool:
        """Pump the producer until this lane has data or the stream ends."""
        exchange = self._exchange
        while not self._queue:
            if exchange.producer_done(self._input_index):
                return False
            exchange.pump(self._input_index)
        return True

    def _serve(self, max_rows: int) -> Batch:
        available, batch = self._queue.popleft()
        if len(batch) > max_rows:
            self._queue.appendleft((available, batch.slice(max_rows, len(batch))))
            batch = batch.slice(0, max_rows)
        self.context.clock.advance_to(available)
        return batch

    def _next(self) -> Row | None:
        if not self._ensure_queued():
            return None
        return self._serve(1)[0]

    def _next_batch(self, max_rows: int) -> Batch:
        if not self._ensure_queued():
            return Batch.empty(self._schema)
        return self._serve(max_rows)

    def _next_batch_bounded(self, max_rows: int, arrival_bound: float) -> Batch:
        if not self._ensure_queued():
            return Batch.empty(self._schema)
        available, batch = self._queue[0]
        if available >= arrival_bound:
            return Batch.empty(self._schema)  # not end of stream: tie-break case
        take = 0
        for arrival in batch.arrivals:
            if take >= max_rows or max(arrival, available) >= arrival_bound:
                break
            take += 1
        if take == 0:
            return Batch.empty(self._schema)
        if take == len(batch):
            return self._serve(take)
        self._queue.popleft()
        self._queue.appendleft((available, batch.slice(take, len(batch))))
        self.context.clock.advance_to(available)
        return batch.slice(0, take)


class _ProducerDriver:
    """One input stream: its operator root (on a worker clock) and routing keys."""

    __slots__ = ("root", "binder", "done", "error")

    def __init__(self, root: Operator, keys: Sequence[str]) -> None:
        self.root = root
        self.binder = KeyBinder(list(keys))
        self.done = False
        self.error: Exception | None = None


class _Lane:
    """One worker lane: its context, sources, subtree root, and step state."""

    __slots__ = ("index", "context", "sources", "root", "steps", "next_event_ms", "finished", "output")

    def __init__(self, index: int, context: ExecutionContext) -> None:
        self.index = index
        self.context = context
        self.sources: list[ExchangeSource] = []
        self.root: Operator | None = None
        self.steps: Iterator[float] | None = None
        self.next_event_ms = context.clock.now
        self.finished = False
        #: (produced_at_ms, batch) pairs awaiting the merge side.
        self.output: deque[tuple[float, Batch]] = deque()


class Exchange(Operator):
    """Partition / parallel-execute / merge, on the shared virtual timeline.

    ``children`` are the producer roots, each built on its own worker clock
    (the builder derives those contexts).  ``build_lane(index, lane_context,
    sources)`` constructs one lane's subtree over its :class:`ExchangeSource`
    leaves — the planner decides what runs inside a lane (a hash join, a
    deduplicating collector); the exchange only owns routing, stepping, and
    merging.  ``partition_keys[i]`` names the key columns of input ``i``; a
    row's lane is ``bucket_of(canonical key values, lanes)``, identical
    across inputs so matching rows always meet in the same lane.

    The merge is a pure handoff of already-produced batches (no per-value
    work), hence ``PER_TUPLE_CPU_FACTOR = 0``: the per-tuple cost of the
    parallelized work is paid on producer and lane clocks instead.
    """

    PER_TUPLE_CPU_FACTOR = 0.0

    def __init__(
        self,
        operator_id: str,
        context: ExecutionContext,
        producers: list[Operator],
        partition_keys: Sequence[Sequence[str]],
        lanes: int,
        build_lane: Callable[[int, ExecutionContext, list[ExchangeSource]], Operator],
        output_schema: Schema,
        estimated_cardinality: int | None = None,
    ) -> None:
        if lanes < 1:
            raise ExecutionError(f"exchange {operator_id!r} needs at least one lane, got {lanes}")
        if len(partition_keys) != len(producers):
            raise ExecutionError(
                f"exchange {operator_id!r}: {len(producers)} inputs but "
                f"{len(partition_keys)} partition key lists"
            )
        super().__init__(
            operator_id, context, children=producers, estimated_cardinality=estimated_cardinality
        )
        self.lane_count = lanes
        self._build_lane = build_lane
        self._schema = output_schema
        self._producers = [
            _ProducerDriver(root, keys) for root, keys in zip(producers, partition_keys)
        ]
        self._route_cpu_ms = context.config.per_tuple_cpu_ms * ROUTE_CPU_FACTOR
        self._lanes: list[_Lane] | None = None
        self._cursor: BatchCursor | None = None
        self._drained = False

    # -- schema / introspection ----------------------------------------------------

    @property
    def output_schema(self) -> Schema:
        return self._schema

    @property
    def lane_operators(self) -> list[Operator]:
        """The lane subtree roots (for tests and broker-invariant checks)."""
        if self._lanes is None:
            return []
        return [lane.root for lane in self._lanes if lane.root is not None]

    # -- producer side (called by ExchangeSource) ----------------------------------

    def producer_done(self, input_index: int) -> bool:
        return self._producers[input_index].done

    def producer_peek(self, input_index: int) -> float | None:
        return self._producers[input_index].root.peek_arrival()

    def pump(self, input_index: int) -> None:
        """Pull one batch from input ``input_index`` and route it to the lanes.

        Every lane sees the same producer failure: the first pump to raise
        stores the exception and every later pump of that input re-raises it,
        so per-lane collectors take their fallback path consistently.
        """
        driver = self._producers[input_index]
        if driver.error is not None:
            raise driver.error
        if driver.done:
            return
        root = driver.root
        try:
            batch = root.next_batch(DEFAULT_BATCH_SIZE)
        except Exception as exc:
            driver.error = exc
            driver.done = True
            raise
        if not batch:
            driver.done = True
            return
        clock = root.context.clock
        clock.consume_cpu(len(batch) * self._route_cpu_ms)
        available = clock.now
        lanes = self._lanes
        assert lanes is not None, "pump before open"
        if self.lane_count == 1:
            lanes[0].sources[input_index].enqueue(available, batch)
            return
        keys = batch.key_tuples(driver.binder.indices_in(batch.schema))
        routed: list[list[int] | None] = [None] * self.lane_count
        for position, key in enumerate(keys):
            lane_index = bucket_of(key, self.lane_count)
            positions = routed[lane_index]
            if positions is None:
                routed[lane_index] = [position]
            else:
                positions.append(position)
        for lane_index, positions in enumerate(routed):
            if positions is None:
                continue
            part = batch if len(positions) == len(keys) else batch.take(positions)
            lanes[lane_index].sources[input_index].enqueue(available, part)

    # -- lifecycle -----------------------------------------------------------------

    def _do_open(self) -> None:
        lanes: list[_Lane] = []
        for index in range(self.lane_count):
            lane = _Lane(index, self.context.derive_worker(f"{self.operator_id}.lane{index}"))
            lane.sources = [
                ExchangeSource(
                    f"{self.operator_id}.in{input_index}.lane{index}",
                    lane.context,
                    self,
                    input_index,
                    driver.root.output_schema,
                )
                for input_index, driver in enumerate(self._producers)
            ]
            lane.root = self._build_lane(index, lane.context, lane.sources)
            lanes.append(lane)
        self._lanes = lanes
        for lane in lanes:
            lane.root.open()
            lane.steps = self._lane_steps(lane)
            lane.next_event_ms = lane.context.clock.now

    def _lane_steps(self, lane: _Lane) -> Iterator[float]:
        """Session-style step generator: one yield per wait or output batch.

        Mirrors the server session's operator-tree drive: start with a small
        batch (time-to-first-tuple), grow geometrically, and surface a wait
        event (yielding the arrival time) before any pull that would block —
        that is what the earliest-event-first merge loop schedules on.
        """
        root = lane.root
        clock = lane.context.clock
        size = 1
        while True:
            wait_until = _wait_hint(root, clock)
            if wait_until is not None:
                yield wait_until
            batch = root.next_batch(size)
            if not batch:
                return
            lane.output.append((clock.now, batch))
            size = min(size * 4, DEFAULT_BATCH_SIZE)
            yield clock.now

    def _step_lane(self, lane: _Lane) -> None:
        try:
            lane.next_event_ms = next(lane.steps)
        except StopIteration:
            lane.finished = True
            lane.next_event_ms = lane.context.clock.now

    # -- merge side ----------------------------------------------------------------

    def _run_lanes(self) -> None:
        """Step lanes, earliest next event first, until every lane has output
        buffered or is finished.  Ties break on the lane index, so the
        interleaving is deterministic."""
        lanes = self._lanes
        while True:
            needy = [lane for lane in lanes if not lane.finished and not lane.output]
            if not needy:
                return
            self._step_lane(min(needy, key=lambda lane: (lane.next_event_ms, lane.index)))

    def _worker_makespan(self) -> float:
        clocks = [driver.root.context.clock.now for driver in self._producers]
        clocks.extend(lane.context.clock.now for lane in self._lanes)
        return max(clocks)

    def _merge_batch(self, max_rows: int) -> Batch:
        if self._drained:
            return Batch.empty(self._schema)
        self._run_lanes()
        ready = [lane for lane in self._lanes if lane.output]
        if not ready:
            # All lanes done and drained: the exchange completes when its
            # slowest worker does.
            self._drained = True
            self.context.clock.advance_to(self._worker_makespan())
            return Batch.empty(self._schema)
        lane = min(ready, key=lambda lane: (lane.output[0][1].arrivals[0], lane.index))
        produced_at, batch = lane.output.popleft()
        if len(batch) > max_rows:
            lane.output.appendleft((produced_at, batch.slice(max_rows, len(batch))))
            batch = batch.slice(0, max_rows)
        self.context.clock.advance_to(produced_at)
        return batch.with_schema(self._schema)

    def _next_batch(self, max_rows: int) -> Batch:
        cursor = self._cursor
        if cursor is not None:
            if cursor:
                return cursor.take(max_rows)
            self._cursor = None
        return self._merge_batch(max_rows)

    def _next(self) -> Row | None:
        cursor = self._cursor
        if cursor is None or not cursor:
            batch = self._merge_batch(DEFAULT_BATCH_SIZE)
            if not batch:
                return None
            cursor = self._cursor = BatchCursor(batch)
        return cursor.next_row()

    def peek_arrival(self) -> float | None:
        if self.state in ("closed", "deactivated"):
            return None
        if self._cursor is not None and self._cursor:
            return self.context.clock.now
        if self._lanes is None:
            return self.context.clock.now
        best: float | None = None
        for lane in self._lanes:
            if lane.output:
                candidate = lane.output[0][0]
            elif not lane.finished:
                candidate = lane.next_event_ms
            else:
                continue
            if best is None or candidate < best:
                best = candidate
        return best

    def _do_close(self) -> None:
        lanes = self._lanes or []
        error: Exception | None = None
        try:
            for lane in lanes:
                if lane.root is None:
                    continue
                try:
                    lane.root.close()
                except Exception as exc:  # keep closing the other lanes
                    if error is None:
                        error = exc
            if error is not None:
                raise error
        finally:
            # Release every worker clock from the timeline — a stuck lane
            # clock would pin the server frontier forever.
            for clock in [d.root.context.clock for d in self._producers] + [
                lane.context.clock for lane in lanes
            ]:
                server = getattr(clock, "server", None)
                if server is not None:
                    server.finish(clock.session_id)
