"""The event queue.

The execution system may generate an event at any time; events are fed into a
queue which imposes an ordering on rule evaluation (Section 3.3).  The queue
is FIFO; all actions of a fired rule run before the next event is dequeued.
"""

from __future__ import annotations

from collections import deque

from repro.plan.rules import Event, EventType


class EventQueue:
    """FIFO queue of runtime events with simple accounting."""

    def __init__(self) -> None:
        self._queue: deque[Event] = deque()
        self.total_enqueued = 0

    def push(self, event: Event) -> None:
        """Enqueue an event."""
        self._queue.append(event)
        self.total_enqueued += 1

    def emit(self, event_type: EventType, subject: str, value=None, at_time: float = 0.0) -> Event:
        """Build and enqueue an event, returning it."""
        event = Event(event_type, subject, value, at_time)
        self.push(event)
        return event

    def pop(self) -> Event | None:
        """Dequeue the next event, or ``None`` when empty."""
        if not self._queue:
            return None
        return self._queue.popleft()

    def __len__(self) -> int:
        return len(self._queue)

    def __bool__(self) -> bool:
        return bool(self._queue)

    def drain(self) -> list[Event]:
        """Remove and return all queued events (oldest first)."""
        out = list(self._queue)
        self._queue.clear()
        return out
