"""The query executor: runs plan fragments, gathers statistics, fires events.

The executor processes each fragment as a single pipelined unit, materializes
its result in the local store, and raises the ``closed(fragment)`` event so
that rules can decide whether to re-optimize, reschedule, or pick the next
fragment (contingent planning).  When a rule requests re-optimization or
rescheduling, the executor stops and reports back to its caller — the
interleaved planning-and-execution driver in :mod:`repro.core`.

Execution is *resumable*: :meth:`QueryExecutor.steps` is a generator that
yields a :class:`StepEvent` at every batch/fragment boundary and whenever the
plan is about to block on a source (with the arrival time it is waiting
for).  The multi-query server drives many executors cooperatively through
this generator, overlapping one session's network stalls with another's CPU
on the shared virtual timeline; :meth:`QueryExecutor.execute` simply drains
the generator, so single-query behaviour — accounting included — is
byte-for-byte the pre-server loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Iterator

from repro.engine.builder import build_operator
from repro.engine.context import ExecutionContext
from repro.engine.event_handler import EventHandler
from repro.engine.iterators import DEFAULT_BATCH_SIZE
from repro.engine.operators.materialize import Materialize
from repro.engine.stats import FragmentStats, QueryRuntimeStats, TupleTimeline
from repro.errors import ExecutionError, SourceTimeoutError, SourceUnavailableError
from repro.plan.fragments import Fragment, FragmentStatus, QueryPlan
from repro.plan.physical import OperatorType
from repro.plan.rules import Action, ActionType, Event, EventType
from repro.storage.relation import Relation


def wait_hint(root, clock) -> float | None:
    """Arrival time ``root``'s next pull will block for; ``None`` if ready.

    Shared by the executor's fragment steps and the server session's
    operator-tree drive so both yield identical wait events to the
    scheduler.  Side-effect free (pure ``peek_arrival``); an infinite
    arrival (dead source) is not a schedulable event — the pull itself
    surfaces the timeout.
    """
    arrival = root.peek_arrival()
    if arrival is None:
        return None
    if arrival > clock.now and arrival != float("inf"):
        return arrival
    return None


class ExecutionStatus(str, Enum):
    """How a call to :meth:`QueryExecutor.execute` ended."""

    COMPLETED = "completed"
    NEEDS_REOPTIMIZATION = "needs_reoptimization"
    RESCHEDULE_REQUESTED = "reschedule_requested"
    FAILED = "failed"


@dataclass
class StepEvent:
    """One scheduling point yielded by :meth:`QueryExecutor.steps`.

    ``kind`` is ``"batch"`` (a batch/row crossed the fragment root),
    ``"wait"`` (the next pull will block until ``wait_until_ms`` — the
    scheduler may run another session meanwhile), or ``"fragment"`` (a
    fragment completed).  ``time_ms`` is the session's virtual time at the
    yield.
    """

    kind: str
    time_ms: float
    wait_until_ms: float | None = None
    fragment_id: str | None = None


@dataclass
class ExecutionOutcome:
    """Result of executing (part of) a plan."""

    status: ExecutionStatus
    stats: QueryRuntimeStats
    answer: Relation | None = None
    completed_fragments: list[str] = field(default_factory=list)
    remaining_fragments: list[str] = field(default_factory=list)
    observed_cardinalities: dict[str, int] = field(default_factory=dict)
    failed_sources: list[str] = field(default_factory=list)
    replan_reason: str = ""
    error: str = ""

    @property
    def completed(self) -> bool:
        return self.status == ExecutionStatus.COMPLETED


class QueryExecutor:
    """Executes a :class:`~repro.plan.fragments.QueryPlan` over an execution context.

    Fragments are driven batch-at-a-time by default (``batch_size`` rows per
    ``next_batch`` call, ramping up from a single row so time-to-first-tuple
    is recorded exactly).  Batches are columnar (struct-of-arrays) when the
    context's engine config enables ``columnar_batches`` (the default) and
    row-backed otherwise; the executor only reads batch lengths, so both
    representations flow through unchanged.  Events are drained at batch
    boundaries; operators cut batches short whenever an event with a
    registered rule fires, so rule semantics are identical to the
    tuple-at-a-time drive (``batch_size=None``), which is retained as a
    baseline.
    """

    def __init__(self, context: ExecutionContext, batch_size: int | None = DEFAULT_BATCH_SIZE) -> None:
        self.context = context
        self.batch_size = batch_size
        self.event_handler = EventHandler(context, self._apply_action)
        self._reoptimize_requested = False
        self._reschedule_requested = False
        self._error_message: str | None = None
        self._replan_reason = ""
        self._selected_fragments: set[str] = set()
        self._skipped_fragments: set[str] = set()
        self._plan: QueryPlan | None = None
        #: Set by :meth:`steps` when the generator finishes (what
        #: :meth:`execute` returns; the server session reads it on completion).
        self.outcome: ExecutionOutcome | None = None
        self._emit_wait_hints = True

    # -- rule action dispatch ---------------------------------------------------------------

    def _apply_action(self, action: Action, event: Event) -> None:
        """Execute one rule action (all actions run before the next event)."""
        kind = action.action_type
        if kind == ActionType.SET_OVERFLOW_METHOD:
            operator = self.context.operator(action.target)
            operator.set_overflow_method(action.argument)
        elif kind == ActionType.ALTER_MEMORY:
            operator = self.context.operator(action.target)
            budget = getattr(operator, "budget", None)
            if budget is None:
                raise ExecutionError(
                    f"operator {action.target!r} has no memory budget to alter"
                )
            budget.resize(int(action.argument))
        elif kind == ActionType.DEACTIVATE:
            self._deactivate_target(action.target)
        elif kind == ActionType.ACTIVATE:
            collector = self.context.operator(action.target)
            collector.activate_child(str(action.argument))
        elif kind == ActionType.RESCHEDULE:
            self._reschedule_requested = True
        elif kind == ActionType.REOPTIMIZE:
            self._reoptimize_requested = True
            self._replan_reason = f"rule fired on {event}"
        elif kind == ActionType.RETURN_ERROR:
            self._error_message = str(action.argument)
        elif kind == ActionType.SELECT_FRAGMENT:
            self._select_fragment(action.target)
        else:  # pragma: no cover - exhaustive over ActionType
            raise ExecutionError(f"unsupported rule action {kind!r}")

    def _deactivate_target(self, target: str) -> None:
        self.event_handler.deactivate_owner(target)
        self.context.deactivate(target)
        if self.context.has_operator(target):
            operator = self.context.operator(target)
            parent_collector = self._collector_owning(target)
            if parent_collector is not None:
                parent_collector.deactivate_child(target)
            else:
                operator.deactivate()
        elif self._plan is not None:
            for fragment in self._plan.fragments:
                if fragment.fragment_id == target:
                    self._skipped_fragments.add(target)

    def _collector_owning(self, child_id: str):
        for operator in self.context.operators.values():
            if hasattr(operator, "activate_child") and hasattr(operator, "deactivate_child"):
                child_ids = getattr(operator, "tuples_per_child", {})
                if child_id in child_ids:
                    return operator
        return None

    def _select_fragment(self, fragment_id: str) -> None:
        """Contingent planning: keep ``fragment_id``; skip its group siblings."""
        self._selected_fragments.add(fragment_id)
        if self._plan is None:
            return
        for members in self._plan.choice_groups.values():
            if fragment_id in members:
                for other in members:
                    if other != fragment_id:
                        self._skipped_fragments.add(other)

    # -- fragment execution --------------------------------------------------------------------

    def _should_skip(self, fragment: Fragment) -> bool:
        if fragment.fragment_id in self._skipped_fragments:
            return True
        if self._plan is None:
            return False
        for members in self._plan.choice_groups.values():
            if fragment.fragment_id in members:
                selected = self._selected_fragments & set(members)
                if selected and fragment.fragment_id not in selected:
                    return True
        return False

    def _wait_hint(self, root) -> float | None:
        """Arrival time the next pull will block for, or ``None`` if data is ready.

        ``peek_arrival`` is side-effect free, so probing here never perturbs
        the virtual-time accounting; it only tells the cooperative scheduler
        that another session could use this span of the shared timeline.
        Disabled (always ``None``) when nothing consumes the hints —
        :meth:`execute` drains the generator itself, and a per-pull tree
        probe would tax the single-query hot path for no one's benefit.
        """
        if not self._emit_wait_hints:
            return None
        return wait_hint(root, self.context.clock)

    def _fragment_steps(self, fragment: Fragment, is_final: bool):
        """Run one fragment as a resumable generator (see :meth:`steps`)."""
        started = self.context.clock.now
        root_spec = fragment.root
        needs_materialize = root_spec.operator_type != OperatorType.MATERIALIZE
        root = build_operator(root_spec, self.context)
        if needs_materialize:
            root = Materialize(
                f"{fragment.fragment_id}-mat",
                self.context,
                root,
                result_name=fragment.result_name,
                estimated_cardinality=fragment.estimated_cardinality,
            )
        timeline = TupleTimeline()
        fragment.status = FragmentStatus.RUNNING
        self.context.emit_event(EventType.OPENED, fragment.fragment_id)
        root.open()
        self._drain_events()
        produced = 0
        try:
            if self.batch_size is None:
                # Tuple-at-a-time drive (the pre-vectorization baseline).
                while True:
                    if self._error_message:
                        raise ExecutionError(self._error_message)
                    wait_until = self._wait_hint(root)
                    if wait_until is not None:
                        yield StepEvent(
                            "wait",
                            self.context.clock.now,
                            wait_until_ms=wait_until,
                            fragment_id=fragment.fragment_id,
                        )
                    row = root.next()
                    if row is None:
                        break
                    produced += 1
                    timeline.record(self.context.clock.now, produced)
                    if is_final:
                        self.context.stats.output_timeline.record(self.context.clock.now, produced)
                    self._drain_events()
                    yield StepEvent(
                        "batch", self.context.clock.now, fragment_id=fragment.fragment_id
                    )
            else:
                # Batch-at-a-time drive.  Ramp the batch size up from one row
                # so the first output tuple is timestamped exactly, then grow
                # to the configured size for bulk throughput.
                batch_size = 1
                while True:
                    if self._error_message:
                        raise ExecutionError(self._error_message)
                    wait_until = self._wait_hint(root)
                    if wait_until is not None:
                        yield StepEvent(
                            "wait",
                            self.context.clock.now,
                            wait_until_ms=wait_until,
                            fragment_id=fragment.fragment_id,
                        )
                    batch = root.next_batch(batch_size)
                    if not batch:
                        break
                    produced += len(batch)
                    timeline.record(self.context.clock.now, produced)
                    if is_final:
                        self.context.stats.output_timeline.record(self.context.clock.now, produced)
                    self._drain_events()
                    batch_size = min(batch_size * 4, self.batch_size)
                    yield StepEvent(
                        "batch", self.context.clock.now, fragment_id=fragment.fragment_id
                    )
        finally:
            root.close()
            self._drain_events()
        fragment.status = FragmentStatus.COMPLETED
        self.context.emit_event(EventType.CLOSED, fragment.fragment_id, value=produced)
        self._drain_events()
        stats = FragmentStats(
            fragment_id=fragment.fragment_id,
            result_name=fragment.result_name,
            result_cardinality=produced,
            estimated_cardinality=fragment.estimated_cardinality,
            started_at_ms=started,
            completed_at_ms=self.context.clock.now,
            timeline=timeline,
        )
        self.context.stats.fragment_stats.append(stats)
        self.context.catalog.record_observed_cardinality(fragment.result_name, produced)
        yield StepEvent(
            "fragment", self.context.clock.now, fragment_id=fragment.fragment_id
        )

    def _drain_events(self) -> None:
        fired = self.event_handler.process(self.context.events)
        self.context.batch_interrupt = False
        if fired:
            # Fired (one-shot) rules and deactivated owners no longer watch
            # their trigger keys; refresh so batches stop being cut for them.
            self.context.watched_event_keys = self.event_handler.watched_keys
        self.context.stats.events_processed = self.event_handler.events_processed
        self.context.stats.rules_fired = self.event_handler.rules_fired

    # -- top-level execution -----------------------------------------------------------------------

    def execute(self, plan: QueryPlan) -> ExecutionOutcome:
        """Run ``plan`` until completion, a replan/reschedule request, or failure."""
        for _ in self.steps(plan, wait_hints=False):
            pass
        assert self.outcome is not None
        return self.outcome

    def steps(self, plan: QueryPlan, wait_hints: bool = True) -> Iterator[StepEvent]:
        """Resumable execution: yield at batch/fragment boundaries and source waits.

        The session scheduler drives this generator one step at a time; when
        it finishes, :attr:`outcome` holds the same
        :class:`ExecutionOutcome` that :meth:`execute` returns.
        ``wait_hints=False`` suppresses the pre-pull ``peek_arrival`` probes
        (and their ``"wait"`` events) for callers that ignore them.
        """
        self.outcome = None
        self._emit_wait_hints = wait_hints
        self._plan = plan
        self.event_handler.register_all(
            rule for rule in plan.all_rules() if not rule.fired
        )
        # Batches must be interrupted whenever an event that can fire a rule
        # is emitted, so rules run at the same per-tuple points as the
        # tuple-at-a-time drive.
        self.context.watch_events(self.event_handler.watched_keys)
        completed: list[str] = []
        failed_sources: list[str] = []
        stats = self.context.stats
        ordered = plan.execution_order()
        for index, fragment in enumerate(ordered):
            if self._should_skip(fragment):
                fragment.status = FragmentStatus.SKIPPED
                continue
            is_final = fragment.is_final
            try:
                yield from self._fragment_steps(fragment, is_final)
            except (SourceTimeoutError, SourceUnavailableError) as exc:
                fragment.status = FragmentStatus.FAILED
                failed_sources.extend(
                    source for source in fragment.sources() if source not in failed_sources
                )
                self._drain_events()
                remaining = [f.fragment_id for f in ordered[index:] if not self._should_skip(f)]
                if self._reschedule_requested:
                    stats.reschedules += 1
                    self.outcome = ExecutionOutcome(
                        status=ExecutionStatus.RESCHEDULE_REQUESTED,
                        stats=stats,
                        completed_fragments=completed,
                        remaining_fragments=remaining,
                        observed_cardinalities=stats.observed_cardinalities(),
                        failed_sources=failed_sources,
                    )
                    return
                if self._reoptimize_requested:
                    stats.reoptimizations += 1
                    self.outcome = ExecutionOutcome(
                        status=ExecutionStatus.NEEDS_REOPTIMIZATION,
                        stats=stats,
                        completed_fragments=completed,
                        remaining_fragments=remaining,
                        observed_cardinalities=stats.observed_cardinalities(),
                        failed_sources=failed_sources,
                        replan_reason=str(exc),
                    )
                    return
                self.outcome = ExecutionOutcome(
                    status=ExecutionStatus.FAILED,
                    stats=stats,
                    completed_fragments=completed,
                    remaining_fragments=remaining,
                    observed_cardinalities=stats.observed_cardinalities(),
                    failed_sources=failed_sources,
                    error=str(exc),
                )
                return
            except ExecutionError as exc:
                fragment.status = FragmentStatus.FAILED
                self.outcome = ExecutionOutcome(
                    status=ExecutionStatus.FAILED,
                    stats=stats,
                    completed_fragments=completed,
                    remaining_fragments=[f.fragment_id for f in ordered[index:]],
                    observed_cardinalities=stats.observed_cardinalities(),
                    error=str(exc),
                )
                return
            completed.append(fragment.fragment_id)
            if self._error_message:
                self.outcome = ExecutionOutcome(
                    status=ExecutionStatus.FAILED,
                    stats=stats,
                    completed_fragments=completed,
                    remaining_fragments=[f.fragment_id for f in ordered[index + 1 :]],
                    observed_cardinalities=stats.observed_cardinalities(),
                    error=self._error_message,
                )
                return
            if self._reoptimize_requested and index + 1 < len(ordered):
                stats.reoptimizations += 1
                self.outcome = ExecutionOutcome(
                    status=ExecutionStatus.NEEDS_REOPTIMIZATION,
                    stats=stats,
                    completed_fragments=completed,
                    remaining_fragments=[f.fragment_id for f in ordered[index + 1 :]],
                    observed_cardinalities=stats.observed_cardinalities(),
                    replan_reason=self._replan_reason,
                )
                return
            self._reoptimize_requested = False
            self._replan_reason = ""

        stats.completion_time_ms = self.context.clock.now
        answer = None
        if plan.answer_name and plan.answer_name in self.context.local_store:
            answer = self.context.local_store.get(plan.answer_name)
        self.outcome = ExecutionOutcome(
            status=ExecutionStatus.COMPLETED,
            stats=stats,
            answer=answer,
            completed_fragments=completed,
            remaining_fragments=[],
            observed_cardinalities=stats.observed_cardinalities(),
            failed_sources=failed_sources,
        )
