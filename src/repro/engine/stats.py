"""Runtime statistics gathered by the execution engine.

The engine gathers per-operator cardinalities (fed back to the optimizer for
re-optimization), tuples-vs-time series (the figures' axes), and per-query
summaries (time to first tuple, completion time, disk I/O).
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field


@dataclass
class TupleTimeline:
    """A monotone series of ``(virtual_time_ms, cumulative_tuples)`` points."""

    times_ms: list[float] = field(default_factory=list)
    counts: list[int] = field(default_factory=list)

    def record(self, time_ms: float, count: int) -> None:
        """Append an observation (times must be non-decreasing)."""
        self.times_ms.append(time_ms)
        self.counts.append(count)

    @property
    def total(self) -> int:
        return self.counts[-1] if self.counts else 0

    @property
    def time_to_first(self) -> float | None:
        """Virtual time of the first output tuple."""
        for time_ms, count in zip(self.times_ms, self.counts):
            if count > 0:
                return time_ms
        return None

    @property
    def completion_time(self) -> float | None:
        return self.times_ms[-1] if self.times_ms else None

    def count_at(self, time_ms: float) -> int:
        """Cumulative tuples produced by ``time_ms``."""
        idx = bisect_right(self.times_ms, time_ms)
        return self.counts[idx - 1] if idx > 0 else 0

    def time_for_count(self, count: int) -> float | None:
        """Earliest virtual time at which ``count`` tuples had been produced."""
        for time_ms, produced in zip(self.times_ms, self.counts):
            if produced >= count:
                return time_ms
        return None

    def sample(self, points: int = 50) -> list[tuple[float, int]]:
        """Evenly spaced (time, count) samples for plotting/reporting."""
        if not self.times_ms:
            return []
        end = self.times_ms[-1]
        if points <= 1 or end == 0:
            return [(end, self.total)]
        step = end / (points - 1)
        return [(i * step, self.count_at(i * step)) for i in range(points)]


@dataclass
class OperatorRuntimeStats:
    """Counters kept for every runtime operator."""

    operator_id: str
    tuples_produced: int = 0
    tuples_consumed: int = 0
    time_of_first_output: float | None = None
    time_of_last_output: float | None = None
    memory_peak_bytes: int = 0
    overflow_events: int = 0
    cache_hits: int = 0
    state: str = "pending"

    def record_output(self, at_time: float) -> None:
        self.tuples_produced += 1
        if self.time_of_first_output is None:
            self.time_of_first_output = at_time
        self.time_of_last_output = at_time

    def record_output_batch(self, count: int, at_time: float) -> None:
        """Record ``count`` outputs produced by ``at_time`` (one counter update)."""
        if count <= 0:
            return
        self.tuples_produced += count
        if self.time_of_first_output is None:
            self.time_of_first_output = at_time
        self.time_of_last_output = at_time


@dataclass
class FragmentStats:
    """Result statistics for one completed fragment."""

    fragment_id: str
    result_name: str
    result_cardinality: int
    estimated_cardinality: int | None
    started_at_ms: float
    completed_at_ms: float
    timeline: TupleTimeline = field(default_factory=TupleTimeline)

    @property
    def estimate_error_factor(self) -> float | None:
        """How far off the estimate was (max of ratio and inverse ratio)."""
        if not self.estimated_cardinality:
            return None
        actual = max(1, self.result_cardinality)
        estimate = max(1, self.estimated_cardinality)
        ratio = actual / estimate
        return max(ratio, 1.0 / ratio)


@dataclass
class QueryRuntimeStats:
    """Everything the engine reports back after running (part of) a plan."""

    query_name: str
    operator_stats: dict[str, OperatorRuntimeStats] = field(default_factory=dict)
    fragment_stats: list[FragmentStats] = field(default_factory=list)
    output_timeline: TupleTimeline = field(default_factory=TupleTimeline)
    events_processed: int = 0
    rules_fired: int = 0
    reoptimizations: int = 0
    reschedules: int = 0
    completion_time_ms: float = 0.0
    #: Owning server session (``None`` for standalone queries).
    session_id: str | None = None

    def operator(self, operator_id: str) -> OperatorRuntimeStats:
        """Stats record for ``operator_id`` (created on first access)."""
        if operator_id not in self.operator_stats:
            self.operator_stats[operator_id] = OperatorRuntimeStats(operator_id)
        return self.operator_stats[operator_id]

    @property
    def time_to_first_tuple(self) -> float | None:
        return self.output_timeline.time_to_first

    def observed_cardinalities(self) -> dict[str, int]:
        """Result name -> actual cardinality, for optimizer feedback."""
        return {
            frag.result_name: frag.result_cardinality for frag in self.fragment_stats
        }


# -- multi-query server metrics ------------------------------------------------------


@dataclass
class SessionSummary:
    """One session's lifecycle on the server's shared virtual timeline."""

    session_id: str
    submitted_at_ms: float
    completed_at_ms: float | None = None
    status: str = "pending"
    result_cardinality: int = 0
    #: Scheduler quanta this session ran for (batch/fragment steps).
    slices: int = 0
    #: Times the session yielded the timeline to wait on a source.
    waits: int = 0
    wait_ms: float = 0.0
    cpu_ms: float = 0.0
    io_ms: float = 0.0

    @property
    def elapsed_ms(self) -> float | None:
        """Virtual time from admission to completion (None while running)."""
        if self.completed_at_ms is None:
            return None
        return self.completed_at_ms - self.submitted_at_ms


@dataclass
class SourceLayerSummary:
    """Per-source cache and queueing metrics for one server run."""

    source_name: str
    #: Completed-entry cache hits (any session) / by a session other than the filler.
    cache_hits: int = 0
    cross_session_hits: int = 0
    #: Followers that attached to an in-progress or detached partial extent.
    partial_hits: int = 0
    #: Virtual time readers spent queued for one of this source's connection slots.
    queued_ms: float = 0.0


@dataclass
class PrefetchSummary:
    """What the speculative prefetcher did with its revocable lease."""

    sources_warmed: int = 0
    sources_completed: int = 0
    sources_dropped: int = 0
    blocks_published: int = 0
    bytes_fetched: int = 0
    #: Fetched bytes of sources that served at least one (partial or full) hit.
    bytes_used: int = 0
    bytes_wasted: int = 0
    #: Current speculative lease size and live resident bytes charged to it.
    lease_bytes: int = 0
    resident_bytes: int = 0
    #: Revocations applied to the speculative lease.
    revocations: int = 0


@dataclass
class ServerStats:
    """Server-level metrics aggregated over all sessions.

    ``makespan_ms`` is the total virtual wall clock of the concurrent run —
    the quantity the throughput benchmark holds against the sum of
    back-to-back serial completion times (``serial_equivalent_ms``): the gap
    between the two is exactly the overlap the cooperative scheduler and the
    shared source cache bought.
    """

    server_name: str
    sessions: list[SessionSummary] = field(default_factory=list)
    scheduler_slices: int = 0
    revocations: int = 0
    bytes_revoked: int = 0
    cross_session_cache_hits: int = 0
    #: Follower attachments to in-progress partial extents, server-wide.
    partial_extent_hits: int = 0
    #: Revocations whose victim was the prefetcher's speculative lease.
    speculative_revocations: int = 0
    source_queued_ms: float = 0.0
    makespan_ms: float = 0.0
    #: Per-source cache/queueing breakdown (only sources that saw traffic).
    per_source: dict[str, SourceLayerSummary] = field(default_factory=dict)
    #: Speculative prefetcher summary (``None`` when the layer is disabled).
    prefetch: PrefetchSummary | None = None

    @property
    def completed_sessions(self) -> int:
        return sum(1 for s in self.sessions if s.status == "completed")

    @property
    def serial_equivalent_ms(self) -> float:
        """Sum of per-session elapsed times — what back-to-back execution costs."""
        return sum(s.elapsed_ms or 0.0 for s in self.sessions)

    @property
    def overlap_speedup(self) -> float:
        """serial-equivalent / makespan (1.0 = no overlap won)."""
        if self.makespan_ms <= 0:
            return 1.0
        return self.serial_equivalent_ms / self.makespan_ms
