"""The Tukwila query execution engine: iterators, operators, events, executor."""

from repro.engine.builder import build_operator
from repro.engine.context import EngineConfig, ExecutionContext
from repro.engine.event_handler import EventHandler
from repro.engine.events import EventQueue
from repro.engine.executor import ExecutionOutcome, ExecutionStatus, QueryExecutor
from repro.engine.iterators import Operator
from repro.engine.stats import (
    FragmentStats,
    OperatorRuntimeStats,
    QueryRuntimeStats,
    TupleTimeline,
)

__all__ = [
    "EngineConfig",
    "EventHandler",
    "EventQueue",
    "ExecutionContext",
    "ExecutionOutcome",
    "ExecutionStatus",
    "FragmentStats",
    "Operator",
    "OperatorRuntimeStats",
    "QueryExecutor",
    "QueryRuntimeStats",
    "TupleTimeline",
    "build_operator",
]
