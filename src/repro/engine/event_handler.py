"""The event handler: interprets the rules attached to query execution plans.

For each event in the queue, the handler looks up (by a hash table keyed on
``(event type, subject)``) all matching rules in the active set, evaluates
their conditions, and executes all actions of satisfied rules before moving
to the next event.  Firing a rule makes it inactive; rules whose owner has
been deactivated never trigger (Section 3.1.2 / 3.3).
"""

from __future__ import annotations

from typing import Callable, Iterable

from repro.engine.events import EventQueue
from repro.errors import RuleError
from repro.plan.rules import Action, Event, EventType, Rule, RuntimeContext

#: Callback signature for executing a single action.  Returns True when the
#: action was handled (used for accounting only).
ActionExecutor = Callable[[Action, Event], None]


class EventHandler:
    """Registers rules, matches events against them, and dispatches actions."""

    def __init__(self, context: RuntimeContext, action_executor: ActionExecutor) -> None:
        self._context = context
        self._execute_action = action_executor
        self._rules_by_key: dict[tuple[EventType, str], list[Rule]] = {}
        self._rules_by_name: dict[str, Rule] = {}
        self._inactive_owners: set[str] = set()
        self.events_processed = 0
        self.rules_fired = 0
        self.actions_executed = 0

    # -- rule registration -----------------------------------------------------------

    def register(self, rule: Rule) -> None:
        """Add one rule to the active set."""
        if rule.name in self._rules_by_name:
            raise RuleError(f"a rule named {rule.name!r} is already registered")
        self._rules_by_name[rule.name] = rule
        self._rules_by_key.setdefault(rule.event_key, []).append(rule)

    def register_all(self, rules: Iterable[Rule]) -> None:
        for rule in rules:
            self.register(rule)

    def rule(self, name: str) -> Rule:
        try:
            return self._rules_by_name[name]
        except KeyError:
            raise RuleError(f"no rule named {name!r}") from None

    @property
    def active_rules(self) -> list[Rule]:
        return [r for r in self._rules_by_name.values() if self._is_active(r)]

    @property
    def watched_keys(self) -> set[tuple[EventType, str]]:
        """Event keys that at least one *active* rule still triggers on.

        Fired rules (and rules of deactivated owners) drop out, so batch
        operators stop paying per-tuple event costs for triggers that can
        never fire again.
        """
        return {
            key
            for key, rules in self._rules_by_key.items()
            if any(self._is_active(rule) for rule in rules)
        }

    # -- owner management --------------------------------------------------------------

    def deactivate_owner(self, owner: str) -> None:
        """Deactivate every rule owned by ``owner`` (the rule's own flag is kept)."""
        self._inactive_owners.add(owner)

    def reactivate_owner(self, owner: str) -> None:
        self._inactive_owners.discard(owner)

    def _is_active(self, rule: Rule) -> bool:
        return rule.active and not rule.fired and rule.owner not in self._inactive_owners

    # -- event processing ----------------------------------------------------------------

    def process(self, queue: EventQueue) -> int:
        """Drain the queue, firing rules; returns the number of rules fired.

        Rule actions may themselves enqueue new events; those are processed in
        the same call, after earlier events (FIFO order is preserved).
        """
        fired = 0
        while True:
            event = queue.pop()
            if event is None:
                return fired
            fired += self.process_event(event)

    def process_event(self, event: Event) -> int:
        """Match one event against the active set and fire satisfied rules."""
        self.events_processed += 1
        matching = self._rules_by_key.get(event.key, [])
        # Evaluate all conditions first (the paper evaluates conditions "in
        # parallel"), then execute actions of the satisfied rules in
        # registration order.
        satisfied: list[Rule] = []
        for rule in matching:
            if not self._is_active(rule):
                continue
            if rule.condition.evaluate(self._context, event):
                satisfied.append(rule)
        fired = 0
        for rule in satisfied:
            # Re-check: an earlier rule's actions may have deactivated this one.
            if not self._is_active(rule):
                continue
            rule.fired = True
            fired += 1
            self.rules_fired += 1
            for action in rule.actions:
                self._execute_action(action, event)
                self.actions_executed += 1
        return fired
