"""Seeded value generators used by the TPC-D-style data generator."""

from __future__ import annotations

import random
import string
from typing import Sequence

_SYLLABLES = (
    "an", "ba", "co", "da", "el", "fa", "go", "hi", "ir", "jo",
    "ka", "lu", "ma", "no", "or", "pe", "qu", "ra", "su", "ta",
)


class ValueGenerator:
    """Deterministic generator for the column value families TPC-D uses."""

    def __init__(self, seed: int = 42) -> None:
        self._rng = random.Random(seed)

    @property
    def rng(self) -> random.Random:
        return self._rng

    def integer(self, low: int, high: int) -> int:
        """Uniform integer in [low, high]."""
        return self._rng.randint(low, high)

    def decimal(self, low: float, high: float, digits: int = 2) -> float:
        """Uniform decimal in [low, high], rounded."""
        return round(self._rng.uniform(low, high), digits)

    def word(self, min_syllables: int = 2, max_syllables: int = 4) -> str:
        """A pronounceable pseudo-word."""
        count = self._rng.randint(min_syllables, max_syllables)
        return "".join(self._rng.choice(_SYLLABLES) for _ in range(count))

    def name(self, prefix: str, key: int) -> str:
        """TPC-D style ``PREFIX#000000123`` names."""
        return f"{prefix}#{key:09d}"

    def phrase(self, words: int = 3) -> str:
        """A short space-separated phrase."""
        return " ".join(self.word() for _ in range(words))

    def choice(self, options: Sequence[str]) -> str:
        """Uniform choice from ``options``."""
        return self._rng.choice(list(options))

    def date_int(self, start: int = 19920101, end: int = 19981201) -> int:
        """A date encoded as YYYYMMDD within TPC-D's seven-year window."""
        start_year, end_year = start // 10000, end // 10000
        year = self._rng.randint(start_year, end_year)
        month = self._rng.randint(1, 12)
        day = self._rng.randint(1, 28)
        return year * 10000 + month * 100 + day

    def text(self, length: int = 20) -> str:
        """Random alphanumeric filler text."""
        alphabet = string.ascii_lowercase + " "
        return "".join(self._rng.choice(alphabet) for _ in range(length)).strip()

    def zipf_rank(self, n: int, skew: float = 1.0) -> int:
        """A rank in [1, n] drawn from a (truncated) Zipf distribution.

        Used to create skewed foreign-key references so that join outputs show
        realistic bucket skew in the overflow experiments.
        """
        if n <= 0:
            raise ValueError(f"n must be positive, got {n}")
        if skew <= 0:
            return self._rng.randint(1, n)
        # Inverse-CDF sampling over the truncated Zipf mass.
        weights = [1.0 / (rank**skew) for rank in range(1, n + 1)]
        total = sum(weights)
        target = self._rng.uniform(0.0, total)
        cumulative = 0.0
        for rank, weight in enumerate(weights, start=1):
            cumulative += weight
            if cumulative >= target:
                return rank
        return n
