"""A TPC-D-style data generator (the paper's ``dbgen`` substitute).

The paper runs its experiments on scaled TPC-D data (10 MB and 50 MB,
generated with ``dbgen 1.31``).  This module generates the eight TPC-D
tables — REGION, NATION, SUPPLIER, CUSTOMER, PART, PARTSUPP, ORDERS,
LINEITEM — with the standard cardinality ratios and key/foreign-key
relationships, scaled by a megabyte target.  Absolute row widths differ from
dbgen's, but the experiments only depend on relative table sizes and join
fan-outs, which are preserved.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.datagen.distributions import ValueGenerator
from repro.storage.relation import Relation
from repro.storage.schema import Schema

#: TPC-D cardinalities at scale factor 1.0 (rows per table).
SF1_CARDINALITIES = {
    "region": 5,
    "nation": 25,
    "supplier": 10_000,
    "customer": 150_000,
    "part": 200_000,
    "partsupp": 800_000,
    "orders": 1_500_000,
    "lineitem": 6_000_000,
}

#: Tables whose cardinality never scales (dimension tables).
FIXED_TABLES = {"region", "nation"}

REGION_SCHEMA = Schema.of("r_regionkey:int", "r_name:str", "r_comment:str")
NATION_SCHEMA = Schema.of(
    "n_nationkey:int", "n_name:str", "n_regionkey:int", "n_comment:str"
)
SUPPLIER_SCHEMA = Schema.of(
    "s_suppkey:int", "s_name:str", "s_nationkey:int", "s_phone:str", "s_acctbal:float"
)
CUSTOMER_SCHEMA = Schema.of(
    "c_custkey:int",
    "c_name:str",
    "c_nationkey:int",
    "c_mktsegment:str",
    "c_acctbal:float",
)
PART_SCHEMA = Schema.of(
    "p_partkey:int", "p_name:str", "p_brand:str", "p_type:str", "p_size:int",
    "p_retailprice:float",
)
PARTSUPP_SCHEMA = Schema.of(
    "ps_partkey:int", "ps_suppkey:int", "ps_availqty:int", "ps_supplycost:float"
)
ORDERS_SCHEMA = Schema.of(
    "o_orderkey:int",
    "o_custkey:int",
    "o_orderstatus:str",
    "o_totalprice:float",
    "o_orderdate:date",
    "o_orderpriority:str",
)
LINEITEM_SCHEMA = Schema.of(
    "l_orderkey:int",
    "l_partkey:int",
    "l_suppkey:int",
    "l_linenumber:int",
    "l_quantity:int",
    "l_extendedprice:float",
    "l_discount:float",
    "l_shipdate:date",
)

TABLE_SCHEMAS = {
    "region": REGION_SCHEMA,
    "nation": NATION_SCHEMA,
    "supplier": SUPPLIER_SCHEMA,
    "customer": CUSTOMER_SCHEMA,
    "part": PART_SCHEMA,
    "partsupp": PARTSUPP_SCHEMA,
    "orders": ORDERS_SCHEMA,
    "lineitem": LINEITEM_SCHEMA,
}

REGION_NAMES = ("AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST")
MARKET_SEGMENTS = ("AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD")
ORDER_PRIORITIES = ("1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW")
ORDER_STATUSES = ("F", "O", "P")
PART_BRANDS = tuple(f"Brand#{i}{j}" for i in range(1, 6) for j in range(1, 6))
PART_TYPES = (
    "STANDARD ANODIZED TIN", "SMALL PLATED COPPER", "MEDIUM BURNISHED NICKEL",
    "LARGE BRUSHED STEEL", "ECONOMY POLISHED BRASS", "PROMO ANODIZED STEEL",
)


def scale_factor_for_megabytes(megabytes: float) -> float:
    """Scale factor whose total data volume is roughly ``megabytes``.

    TPC-D scale factor 1.0 is defined as roughly 1 GB of raw data, so a
    10 MB database corresponds to SF 0.01 and 50 MB to SF 0.05.
    """
    if megabytes <= 0:
        raise ValueError(f"megabytes must be positive, got {megabytes}")
    return megabytes / 1000.0


def cardinality(table: str, scale_factor: float) -> int:
    """Row count for ``table`` at ``scale_factor`` (dimension tables fixed)."""
    base = SF1_CARDINALITIES[table]
    if table in FIXED_TABLES:
        return base
    return max(1, int(round(base * scale_factor)))


@dataclass
class TPCDDatabase:
    """The eight generated tables plus the parameters used to build them."""

    scale_factor: float
    seed: int
    tables: dict[str, Relation] = field(default_factory=dict)

    def __getitem__(self, name: str) -> Relation:
        return self.tables[name]

    def __contains__(self, name: str) -> bool:
        return name in self.tables

    @property
    def names(self) -> list[str]:
        return sorted(self.tables)

    @property
    def total_bytes(self) -> int:
        return sum(rel.size_bytes for rel in self.tables.values())

    def cardinalities(self) -> dict[str, int]:
        return {name: rel.cardinality for name, rel in self.tables.items()}


class TPCDGenerator:
    """Generates a :class:`TPCDDatabase` at a given scale.

    Parameters
    ----------
    scale_mb:
        Approximate total database size in megabytes of raw TPC-D data.
        The paper uses 10 and 50; our benchmarks default to smaller scales to
        keep pure-Python runtimes reasonable while preserving table ratios.
    seed:
        RNG seed; the same seed always produces the same database.
    fk_skew:
        Zipf skew applied to foreign-key references in ORDERS and LINEITEM,
        which controls hash-bucket skew in the overflow experiments.
    """

    def __init__(self, scale_mb: float = 10.0, seed: int = 42, fk_skew: float = 0.0) -> None:
        self.scale_factor = scale_factor_for_megabytes(scale_mb)
        self.scale_mb = scale_mb
        self.seed = seed
        self.fk_skew = fk_skew

    # -- per-table generators ------------------------------------------------------

    def _region(self, gen: ValueGenerator) -> Relation:
        rows = [
            (key, name, gen.phrase(4))
            for key, name in enumerate(REGION_NAMES)
        ]
        return Relation.from_values("region", REGION_SCHEMA, rows)

    def _nation(self, gen: ValueGenerator) -> Relation:
        count = cardinality("nation", self.scale_factor)
        rows = [
            (key, gen.name("NATION", key), key % len(REGION_NAMES), gen.phrase(4))
            for key in range(count)
        ]
        return Relation.from_values("nation", NATION_SCHEMA, rows)

    def _supplier(self, gen: ValueGenerator, nation_count: int) -> Relation:
        count = cardinality("supplier", self.scale_factor)
        rows = [
            (
                key,
                gen.name("Supplier", key),
                gen.integer(0, nation_count - 1),
                f"{gen.integer(10, 34)}-{gen.integer(100, 999)}-{gen.integer(1000, 9999)}",
                gen.decimal(-999.99, 9999.99),
            )
            for key in range(1, count + 1)
        ]
        return Relation.from_values("supplier", SUPPLIER_SCHEMA, rows)

    def _customer(self, gen: ValueGenerator, nation_count: int) -> Relation:
        count = cardinality("customer", self.scale_factor)
        rows = [
            (
                key,
                gen.name("Customer", key),
                gen.integer(0, nation_count - 1),
                gen.choice(MARKET_SEGMENTS),
                gen.decimal(-999.99, 9999.99),
            )
            for key in range(1, count + 1)
        ]
        return Relation.from_values("customer", CUSTOMER_SCHEMA, rows)

    def _part(self, gen: ValueGenerator) -> Relation:
        count = cardinality("part", self.scale_factor)
        rows = [
            (
                key,
                gen.phrase(3),
                gen.choice(PART_BRANDS),
                gen.choice(PART_TYPES),
                gen.integer(1, 50),
                gen.decimal(900.0, 2000.0),
            )
            for key in range(1, count + 1)
        ]
        return Relation.from_values("part", PART_SCHEMA, rows)

    def _partsupp(self, gen: ValueGenerator, part_count: int, supplier_count: int) -> Relation:
        count = cardinality("partsupp", self.scale_factor)
        per_part = max(1, count // max(1, part_count))
        rows = []
        for part_key in range(1, part_count + 1):
            for offset in range(per_part):
                supp_key = ((part_key + offset * (part_count // per_part + 1)) % supplier_count) + 1
                rows.append(
                    (
                        part_key,
                        supp_key,
                        gen.integer(1, 9999),
                        gen.decimal(1.0, 1000.0),
                    )
                )
        return Relation.from_values("partsupp", PARTSUPP_SCHEMA, rows)

    def _orders(self, gen: ValueGenerator, customer_count: int) -> Relation:
        count = cardinality("orders", self.scale_factor)
        rows = []
        for key in range(1, count + 1):
            if self.fk_skew > 0:
                cust = gen.zipf_rank(customer_count, self.fk_skew)
            else:
                cust = gen.integer(1, customer_count)
            rows.append(
                (
                    key,
                    cust,
                    gen.choice(ORDER_STATUSES),
                    gen.decimal(1000.0, 400000.0),
                    gen.date_int(),
                    gen.choice(ORDER_PRIORITIES),
                )
            )
        return Relation.from_values("orders", ORDERS_SCHEMA, rows)

    def _lineitem(
        self,
        gen: ValueGenerator,
        order_count: int,
        part_count: int,
        supplier_count: int,
    ) -> Relation:
        count = cardinality("lineitem", self.scale_factor)
        per_order = max(1, count // max(1, order_count))
        rows = []
        for order_key in range(1, order_count + 1):
            lines = gen.integer(max(1, per_order - 2), per_order + 2)
            for line_number in range(1, lines + 1):
                if self.fk_skew > 0:
                    part_key = gen.zipf_rank(part_count, self.fk_skew)
                else:
                    part_key = gen.integer(1, part_count)
                rows.append(
                    (
                        order_key,
                        part_key,
                        gen.integer(1, supplier_count),
                        line_number,
                        gen.integer(1, 50),
                        gen.decimal(900.0, 100000.0),
                        gen.decimal(0.0, 0.1),
                        gen.date_int(),
                    )
                )
        return Relation.from_values("lineitem", LINEITEM_SCHEMA, rows)

    # -- public API ------------------------------------------------------------------

    def generate(self, tables: list[str] | None = None) -> TPCDDatabase:
        """Generate the database (optionally restricted to ``tables``).

        Restricting to the tables an experiment needs keeps generation fast;
        foreign keys still reference the full key ranges of the parent tables
        so that join selectivities are unaffected.
        """
        wanted = set(tables) if tables is not None else set(TABLE_SCHEMAS)
        unknown = wanted - set(TABLE_SCHEMAS)
        if unknown:
            raise ValueError(f"unknown TPC-D tables requested: {sorted(unknown)}")
        gen = ValueGenerator(self.seed)
        db = TPCDDatabase(scale_factor=self.scale_factor, seed=self.seed)

        nation_count = cardinality("nation", self.scale_factor)
        supplier_count = cardinality("supplier", self.scale_factor)
        customer_count = cardinality("customer", self.scale_factor)
        part_count = cardinality("part", self.scale_factor)
        orders_count = cardinality("orders", self.scale_factor)

        if "region" in wanted:
            db.tables["region"] = self._region(gen)
        if "nation" in wanted:
            db.tables["nation"] = self._nation(gen)
        if "supplier" in wanted:
            db.tables["supplier"] = self._supplier(gen, nation_count)
        if "customer" in wanted:
            db.tables["customer"] = self._customer(gen, nation_count)
        if "part" in wanted:
            db.tables["part"] = self._part(gen)
        if "partsupp" in wanted:
            db.tables["partsupp"] = self._partsupp(gen, part_count, supplier_count)
        if "orders" in wanted:
            db.tables["orders"] = self._orders(gen, customer_count)
        if "lineitem" in wanted:
            db.tables["lineitem"] = self._lineitem(
                gen, orders_count, part_count, supplier_count
            )
        return db
