"""Workloads: the join graph over the TPC-D schema and the query sets the
experiments run.

The paper's experiments execute equi-joins along the TPC-D foreign-key graph
(for example ``lineitem ⋈ supplier ⋈ order`` in Figure 3a, ``partsupp ⋈ part``
in Figures 3b/4, and the seven lineitem-free four-table joins in Figure 5).
This module encodes that foreign-key graph, enumerates connected join
subsets, and builds :class:`~repro.query.conjunctive.ConjunctiveQuery`
objects for them.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations

from repro.query.conjunctive import ConjunctiveQuery, JoinPredicate

#: Foreign-key equi-join edges of the TPC-D schema: (table_a, attr_a, table_b, attr_b).
FK_EDGES: tuple[tuple[str, str, str, str], ...] = (
    ("nation", "n_regionkey", "region", "r_regionkey"),
    ("supplier", "s_nationkey", "nation", "n_nationkey"),
    ("customer", "c_nationkey", "nation", "n_nationkey"),
    ("partsupp", "ps_suppkey", "supplier", "s_suppkey"),
    ("partsupp", "ps_partkey", "part", "p_partkey"),
    ("orders", "o_custkey", "customer", "c_custkey"),
    ("lineitem", "l_orderkey", "orders", "o_orderkey"),
    ("lineitem", "l_partkey", "part", "p_partkey"),
    ("lineitem", "l_suppkey", "supplier", "s_suppkey"),
    # Customers and suppliers located in the same nation: this is the extra
    # join the paper's Figure 5 workload needs to reach seven connected
    # four-table queries that avoid lineitem (see EXPERIMENTS.md).
    ("customer", "c_nationkey", "supplier", "s_nationkey"),
)


@dataclass(frozen=True)
class JoinEdge:
    """An equi-join edge between two tables."""

    left_table: str
    left_attr: str
    right_table: str
    right_attr: str

    def tables(self) -> frozenset[str]:
        return frozenset((self.left_table, self.right_table))

    def as_predicate(self) -> JoinPredicate:
        return JoinPredicate(
            self.left_table, self.left_attr, self.right_table, self.right_attr
        )


class TPCDJoinGraph:
    """The equi-join graph over the TPC-D tables."""

    def __init__(self, edges: tuple[tuple[str, str, str, str], ...] = FK_EDGES) -> None:
        self.edges = [JoinEdge(*edge) for edge in edges]
        self._tables = sorted({t for e in self.edges for t in e.tables()})

    @property
    def tables(self) -> list[str]:
        return list(self._tables)

    def edges_between(self, tables: set[str] | frozenset[str]) -> list[JoinEdge]:
        """All edges whose endpoints both lie in ``tables``."""
        return [e for e in self.edges if e.tables() <= set(tables)]

    def is_connected(self, tables: set[str] | frozenset[str]) -> bool:
        """True when ``tables`` forms a connected subgraph."""
        tables = set(tables)
        if not tables:
            return False
        if len(tables) == 1:
            return True
        start = next(iter(tables))
        seen = {start}
        frontier = [start]
        relevant = self.edges_between(tables)
        while frontier:
            current = frontier.pop()
            for edge in relevant:
                endpoints = edge.tables()
                if current in endpoints:
                    other = next(iter(endpoints - {current}), current)
                    if other not in seen:
                        seen.add(other)
                        frontier.append(other)
        return seen == tables

    def connected_subsets(self, size: int, exclude: set[str] | None = None) -> list[frozenset[str]]:
        """All connected table subsets of the given size (sorted for determinism)."""
        exclude = exclude or set()
        candidates = [t for t in self._tables if t not in exclude]
        found = [
            frozenset(combo)
            for combo in combinations(candidates, size)
            if self.is_connected(frozenset(combo))
        ]
        return sorted(found, key=lambda s: tuple(sorted(s)))

    def query_for(self, tables: set[str] | frozenset[str], name: str | None = None) -> ConjunctiveQuery:
        """Build a conjunctive query joining ``tables`` along the FK edges."""
        table_list = sorted(tables)
        predicates = [e.as_predicate() for e in self.edges_between(set(tables))]
        label = name or "_".join(table_list)
        return ConjunctiveQuery(name=label, relations=table_list, join_predicates=predicates)


def two_and_three_way_joins(graph: TPCDJoinGraph | None = None) -> list[ConjunctiveQuery]:
    """All connected two- and three-table joins (the Figure 3a workload family)."""
    graph = graph or TPCDJoinGraph()
    queries = []
    for size in (2, 3):
        for tables in graph.connected_subsets(size):
            queries.append(graph.query_for(tables))
    return queries


def figure3a_query(graph: TPCDJoinGraph | None = None) -> ConjunctiveQuery:
    """The Figure 3a query: lineitem ⋈ orders ⋈ supplier."""
    graph = graph or TPCDJoinGraph()
    return graph.query_for(frozenset({"lineitem", "orders", "supplier"}), name="fig3a")


def figure3b_query(graph: TPCDJoinGraph | None = None) -> ConjunctiveQuery:
    """The Figure 3b / Figure 4 query: partsupp ⋈ part."""
    graph = graph or TPCDJoinGraph()
    return graph.query_for(frozenset({"partsupp", "part"}), name="partsupp_part")


def figure5_queries(graph: TPCDJoinGraph | None = None, count: int = 7) -> list[ConjunctiveQuery]:
    """The Figure 5 workload: four-table joins that avoid lineitem.

    The paper reports seven such queries.  We enumerate the connected
    four-table subsets of the foreign-key graph (including the customer/
    supplier same-nation join) and keep the first ``count`` in deterministic
    order, naming them ``Q1`` .. ``Q7``.
    """
    graph = graph or TPCDJoinGraph()
    subsets = graph.connected_subsets(4, exclude={"lineitem"})
    queries = []
    for i, tables in enumerate(subsets[:count], start=1):
        queries.append(graph.query_for(tables, name=f"Q{i}"))
    return queries
