"""TPC-D-style data generation and experiment workloads."""

from repro.datagen.distributions import ValueGenerator
from repro.datagen.tpcd import (
    SF1_CARDINALITIES,
    TABLE_SCHEMAS,
    TPCDDatabase,
    TPCDGenerator,
    cardinality,
    scale_factor_for_megabytes,
)
from repro.datagen.workload import (
    FK_EDGES,
    JoinEdge,
    TPCDJoinGraph,
    figure3a_query,
    figure3b_query,
    figure5_queries,
    two_and_three_way_joins,
)

__all__ = [
    "FK_EDGES",
    "JoinEdge",
    "SF1_CARDINALITIES",
    "TABLE_SCHEMAS",
    "TPCDDatabase",
    "TPCDGenerator",
    "TPCDJoinGraph",
    "ValueGenerator",
    "cardinality",
    "figure3a_query",
    "figure3b_query",
    "figure5_queries",
    "scale_factor_for_megabytes",
    "two_and_three_way_joins",
]
