"""Plan fragments and query execution plans.

Operators are organized into pipelined units called *fragments*.  At the end
of a fragment, pipelines terminate, results are materialized, and the rest of
the plan can be re-optimized or rescheduled.  A plan is a partially ordered
set of fragments plus a set of global rules (Section 3.1).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum

from repro.errors import PlanError
from repro.plan.physical import OperatorSpec, OperatorType
from repro.plan.rules import Rule, validate_rule_set

_fragment_ids = itertools.count(1)


def next_fragment_id() -> str:
    """Generate a unique fragment identifier like ``frag3``."""
    return f"frag{next(_fragment_ids)}"


class FragmentStatus(str, Enum):
    """Lifecycle of a fragment during execution."""

    PENDING = "pending"
    RUNNING = "running"
    COMPLETED = "completed"
    SKIPPED = "skipped"
    FAILED = "failed"


@dataclass
class Fragment:
    """A fully pipelined operator tree plus its local rules.

    Parameters
    ----------
    fragment_id:
        Unique id; rules and the partial order refer to fragments by id.
    root:
        Root of the pipelined operator tree.
    result_name:
        Name under which the fragment's output is materialized in the local
        store.  The final fragment's result is the query answer.
    rules:
        Local rules owned by this fragment or its operators.
    estimated_cardinality:
        The optimizer's estimate for the fragment result size.
    estimate_reliable:
        False when the estimate was produced without adequate statistics.
    covers:
        The set of mediated relations joined by this fragment (used by the
        optimizer when stitching partial plans together).
    """

    fragment_id: str
    root: OperatorSpec
    result_name: str
    rules: list[Rule] = field(default_factory=list)
    estimated_cardinality: int | None = None
    estimate_reliable: bool = True
    covers: frozenset[str] = frozenset()
    status: FragmentStatus = FragmentStatus.PENDING

    def __post_init__(self) -> None:
        if not self.result_name:
            raise PlanError(f"fragment {self.fragment_id!r} needs a result name")

    @property
    def is_final(self) -> bool:
        """Set by the plan; final fragments produce the query answer."""
        return getattr(self, "_is_final", False)

    def mark_final(self, final: bool = True) -> None:
        self._is_final = final

    def operator_ids(self) -> list[str]:
        return self.root.operator_ids()

    def sources(self) -> list[str]:
        """Data sources this fragment reads."""
        return self.root.leaf_sources()

    def describe(self) -> str:
        header = f"Fragment {self.fragment_id} -> {self.result_name}"
        if self.estimated_cardinality is not None:
            header += f" (est {self.estimated_cardinality})"
        lines = [header, self.root.describe(indent=1)]
        for rule in self.rules:
            lines.append(f"  rule {rule.name}: {rule}")
        return "\n".join(lines)


@dataclass
class QueryPlan:
    """A partially ordered set of fragments plus global rules.

    ``dependencies`` maps a fragment id to the set of fragment ids that must
    complete before it may start (data-flow constraints).  Fragments that are
    unrelated in the partial order may execute in parallel; the executor in
    this reproduction runs them in a deterministic topological order.

    ``partial`` marks plans that only cover a prefix of the query: after the
    last fragment completes, the engine must return to the optimizer for the
    remainder (interleaved planning and execution).
    """

    query_name: str
    fragments: list[Fragment] = field(default_factory=list)
    dependencies: dict[str, set[str]] = field(default_factory=dict)
    global_rules: list[Rule] = field(default_factory=list)
    partial: bool = False
    answer_name: str = ""
    #: Groups of mutually exclusive fragments (contingent planning): group name
    #: -> fragment ids.  A ``select_fragment`` action picks one member; the
    #: executor skips the rest of its group.
    choice_groups: dict[str, list[str]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self._validate()
        if self.fragments and not self.answer_name:
            self.answer_name = self.fragments[-1].result_name
        if self.fragments:
            for fragment in self.fragments:
                fragment.mark_final(False)
            self.fragments[-1].mark_final(True)

    # -- validation --------------------------------------------------------------

    def _validate(self) -> None:
        ids = [f.fragment_id for f in self.fragments]
        if len(ids) != len(set(ids)):
            raise PlanError(f"duplicate fragment ids in plan {self.query_name!r}")
        id_set = set(ids)
        for fragment_id, deps in self.dependencies.items():
            if fragment_id not in id_set:
                raise PlanError(f"dependency entry for unknown fragment {fragment_id!r}")
            missing = deps - id_set
            if missing:
                raise PlanError(
                    f"fragment {fragment_id!r} depends on unknown fragments {sorted(missing)}"
                )
        for group, members in self.choice_groups.items():
            unknown = set(members) - id_set
            if unknown:
                raise PlanError(
                    f"choice group {group!r} references unknown fragments {sorted(unknown)}"
                )
        self._check_acyclic()
        validate_rule_set(self.all_rules())

    def _check_acyclic(self) -> None:
        # Kahn's algorithm over the dependency graph.
        indegree = {f.fragment_id: len(self.dependencies.get(f.fragment_id, set())) for f in self.fragments}
        ready = [fid for fid, deg in indegree.items() if deg == 0]
        visited = 0
        while ready:
            current = ready.pop()
            visited += 1
            for fid, deps in self.dependencies.items():
                if current in deps:
                    indegree[fid] -= 1
                    if indegree[fid] == 0:
                        ready.append(fid)
        if visited != len(self.fragments):
            raise PlanError(f"plan {self.query_name!r} has cyclic fragment dependencies")

    # -- access ------------------------------------------------------------------

    def fragment(self, fragment_id: str) -> Fragment:
        for fragment in self.fragments:
            if fragment.fragment_id == fragment_id:
                return fragment
        raise PlanError(f"no fragment {fragment_id!r} in plan {self.query_name!r}")

    def all_rules(self) -> list[Rule]:
        rules = list(self.global_rules)
        for fragment in self.fragments:
            rules.extend(fragment.rules)
        return rules

    def execution_order(self) -> list[Fragment]:
        """Fragments in a deterministic topological order."""
        remaining = {f.fragment_id for f in self.fragments}
        completed: set[str] = set()
        order: list[Fragment] = []
        while remaining:
            ready = sorted(
                fid
                for fid in remaining
                if self.dependencies.get(fid, set()) <= completed
            )
            if not ready:
                raise PlanError("cannot order fragments (cyclic dependencies)")
            # Preserve plan order among ready fragments for determinism.
            for fragment in self.fragments:
                if fragment.fragment_id in ready:
                    order.append(fragment)
                    completed.add(fragment.fragment_id)
                    remaining.discard(fragment.fragment_id)
        return order

    def operator(self, operator_id: str) -> OperatorSpec:
        """Locate an operator spec anywhere in the plan."""
        for fragment in self.fragments:
            for node in fragment.root.walk():
                if node.operator_id == operator_id:
                    return node
        raise PlanError(f"operator {operator_id!r} not found in plan {self.query_name!r}")

    def sources(self) -> list[str]:
        """All data sources read by the plan."""
        out: set[str] = set()
        for fragment in self.fragments:
            out.update(fragment.sources())
        return sorted(out)

    def collectors(self) -> list[OperatorSpec]:
        """All collector operators in the plan."""
        found = []
        for fragment in self.fragments:
            for node in fragment.root.walk():
                if node.operator_type == OperatorType.COLLECTOR:
                    found.append(node)
        return found

    def describe(self) -> str:
        lines = [f"Plan for {self.query_name!r} ({'partial' if self.partial else 'complete'})"]
        for fragment in self.fragments:
            deps = sorted(self.dependencies.get(fragment.fragment_id, set()))
            suffix = f" [after {', '.join(deps)}]" if deps else ""
            lines.append(fragment.describe() + suffix)
        for rule in self.global_rules:
            lines.append(f"global rule {rule.name}: {rule}")
        return "\n".join(lines)
