"""Plan serialization: the human-writable plan language.

The original Tukwila engine accepted plans in an XML-based, human-writable
query plan language.  This module serializes :class:`~repro.plan.fragments.QueryPlan`
objects to that style of XML and parses them back, including the rule
language (events, a restricted condition grammar, and actions).

The condition grammar accepted on parse covers what the optimizer generates:

.. code-block:: text

    condition := "true" | "false" | comparison
                 | condition "and" condition
                 | condition "or" condition
                 | "not" condition
    comparison := term OP [number "*"] term
    term       := card(ID) | est_card(ID) | memory(ID) | time(ID)
                  | state(ID) | event.value | number | 'string'
"""

from __future__ import annotations

import re
import xml.etree.ElementTree as ET
from typing import Any

from repro.errors import PlanError, RuleError
from repro.plan.fragments import Fragment, QueryPlan
from repro.plan.physical import OperatorSpec, OperatorType
from repro.plan.rules import (
    Action,
    ActionType,
    Always,
    And,
    Compare,
    Condition,
    EventType,
    Never,
    Not,
    Or,
    Rule,
    card,
    constant,
    est_card,
    event_value,
    memory,
    state,
    time_waiting,
)
from repro.query.conjunctive import SelectionPredicate

# -- condition rendering / parsing ----------------------------------------------------


def render_condition(condition: Condition) -> str:
    """Render a condition with the grammar :func:`parse_condition` accepts."""
    return str(condition)


_TERM_RE = re.compile(r"^(card|est_card|memory|time|state)\((\w+)\)$")
_TERM_BUILDERS = {
    "card": card,
    "est_card": est_card,
    "memory": memory,
    "time": time_waiting,
    "state": state,
}
_OPS = ("<=", ">=", "!=", "=", "<", ">")


def _parse_term(text: str):
    text = text.strip()
    if text == "event.value":
        return event_value()
    match = _TERM_RE.match(text)
    if match:
        return _TERM_BUILDERS[match.group(1)](match.group(2))
    if len(text) >= 2 and text[0] == text[-1] and text[0] in ("'", '"'):
        return constant(text[1:-1])
    try:
        return constant(int(text))
    except ValueError:
        pass
    try:
        return constant(float(text))
    except ValueError:
        pass
    raise RuleError(f"cannot parse condition term {text!r}")


def _parse_comparison(text: str) -> Condition:
    for op in _OPS:
        # Split on the first occurrence of the operator surrounded by spaces to
        # avoid matching '=' inside '<=' / '>='.
        pattern = re.compile(rf"\s{re.escape(op)}\s")
        match = pattern.search(text)
        if match:
            left_text = text[: match.start()].strip()
            right_text = text[match.end() :].strip()
            scale = 1.0
            scale_match = re.match(r"^([\d.]+)\s*\*\s*(.+)$", right_text)
            if scale_match and not _TERM_RE.match(right_text):
                scale = float(scale_match.group(1))
                right_text = scale_match.group(2).strip()
            return Compare(_parse_term(left_text), op, _parse_term(right_text), scale=scale)
    raise RuleError(f"cannot parse comparison {text!r}")


def parse_condition(text: str) -> Condition:
    """Parse the restricted condition grammar into a :class:`Condition`."""
    text = text.strip()
    if not text or text == "true":
        return Always()
    if text == "false":
        return Never()
    # Strip one redundant outer parenthesis level if it wraps the whole string.
    while text.startswith("(") and text.endswith(")"):
        depth = 0
        wraps = True
        for i, char in enumerate(text):
            if char == "(":
                depth += 1
            elif char == ")":
                depth -= 1
                if depth == 0 and i != len(text) - 1:
                    wraps = False
                    break
        if not wraps:
            break
        text = text[1:-1].strip()
        if text == "true":
            return Always()
        if text == "false":
            return Never()

    # Find a top-level 'and' / 'or' (not inside parentheses).
    depth = 0
    tokens = re.split(r"(\(|\)|\s+and\s+|\s+or\s+)", text)
    position = 0
    for token in tokens:
        stripped = token.strip()
        if stripped == "(":
            depth += 1
        elif stripped == ")":
            depth -= 1
        elif depth == 0 and stripped in ("and", "or"):
            left = text[:position].strip()
            right = text[position + len(token) :].strip()
            if stripped == "and":
                return And(parse_condition(left), parse_condition(right))
            return Or(parse_condition(left), parse_condition(right))
        position += len(token)

    if text.startswith("not "):
        return Not(parse_condition(text[4:]))
    return _parse_comparison(text)


# -- XML serialization ------------------------------------------------------------------


def _predicate_to_xml(pred: SelectionPredicate) -> ET.Element:
    element = ET.Element("predicate")
    element.set("table", pred.table)
    element.set("attr", pred.attr)
    element.set("op", pred.op)
    element.set("value", repr(pred.value))
    return element


def _predicate_from_xml(element: ET.Element) -> SelectionPredicate:
    raw = element.get("value", "None")
    try:
        value = eval(raw, {"__builtins__": {}})  # noqa: S307 - literals written by us
    except Exception as exc:  # pragma: no cover - defensive
        raise PlanError(f"cannot parse predicate value {raw!r}") from exc
    return SelectionPredicate(
        element.get("table", ""), element.get("attr", ""), element.get("op", "="), value
    )


def _params_to_xml(parent: ET.Element, params: dict[str, Any]) -> None:
    for key, value in sorted(params.items()):
        if key == "predicates":
            container = ET.SubElement(parent, "param", {"name": key, "kind": "predicates"})
            for predicate in value:
                container.append(_predicate_to_xml(predicate))
        elif isinstance(value, (list, tuple)):
            container = ET.SubElement(parent, "param", {"name": key, "kind": "list"})
            for item in value:
                ET.SubElement(container, "item").text = str(item)
        else:
            ET.SubElement(
                parent, "param", {"name": key, "kind": "scalar"}
            ).text = "" if value is None else str(value)


def _params_from_xml(element: ET.Element) -> dict[str, Any]:
    params: dict[str, Any] = {}
    for param in element.findall("param"):
        name = param.get("name", "")
        kind = param.get("kind", "scalar")
        if kind == "predicates":
            params[name] = [_predicate_from_xml(p) for p in param.findall("predicate")]
        elif kind == "list":
            params[name] = [item.text or "" for item in param.findall("item")]
        else:
            params[name] = param.text or ""
    return params


def _operator_to_xml(spec: OperatorSpec) -> ET.Element:
    element = ET.Element("operator")
    element.set("id", spec.operator_id)
    element.set("type", spec.operator_type.value)
    if spec.implementation:
        element.set("implementation", spec.implementation)
    if spec.memory_limit_bytes is not None:
        element.set("memory", str(spec.memory_limit_bytes))
    if spec.estimated_cardinality is not None:
        element.set("estimate", str(spec.estimated_cardinality))
    element.set("reliable", "true" if spec.estimate_reliable else "false")
    _params_to_xml(element, spec.params)
    for child in spec.children:
        element.append(_operator_to_xml(child))
    return element


def _operator_from_xml(element: ET.Element) -> OperatorSpec:
    children = [_operator_from_xml(child) for child in element.findall("operator")]
    memory_attr = element.get("memory")
    estimate_attr = element.get("estimate")
    return OperatorSpec(
        operator_id=element.get("id", ""),
        operator_type=OperatorType(element.get("type", "")),
        implementation=element.get("implementation", ""),
        children=children,
        params=_params_from_xml(element),
        memory_limit_bytes=int(memory_attr) if memory_attr else None,
        estimated_cardinality=int(estimate_attr) if estimate_attr else None,
        estimate_reliable=element.get("reliable", "true") == "true",
    )


def _rule_to_xml(rule: Rule) -> ET.Element:
    element = ET.Element("rule")
    element.set("name", rule.name)
    element.set("owner", rule.owner)
    element.set("event", rule.event_type.value)
    element.set("subject", rule.subject)
    ET.SubElement(element, "condition").text = render_condition(rule.condition)
    actions = ET.SubElement(element, "actions")
    for action in rule.actions:
        action_el = ET.SubElement(actions, "action")
        action_el.set("type", action.action_type.value)
        if action.target:
            action_el.set("target", action.target)
        if action.argument is not None:
            action_el.set("argument", str(action.argument))
    return element


def _rule_from_xml(element: ET.Element) -> Rule:
    condition_el = element.find("condition")
    condition = parse_condition(condition_el.text or "true") if condition_el is not None else Always()
    actions = []
    actions_el = element.find("actions")
    if actions_el is not None:
        for action_el in actions_el.findall("action"):
            argument: Any = action_el.get("argument")
            if argument is not None and re.fullmatch(r"-?\d+", argument):
                argument = int(argument)
            actions.append(
                Action(
                    ActionType(action_el.get("type", "")),
                    action_el.get("target", ""),
                    argument,
                )
            )
    return Rule(
        name=element.get("name", ""),
        owner=element.get("owner", ""),
        event_type=EventType(element.get("event", "")),
        subject=element.get("subject", ""),
        condition=condition,
        actions=actions,
    )


def plan_to_xml(plan: QueryPlan) -> str:
    """Serialize a plan to the XML plan language."""
    root = ET.Element("plan")
    root.set("query", plan.query_name)
    root.set("partial", "true" if plan.partial else "false")
    root.set("answer", plan.answer_name)
    for fragment in plan.fragments:
        frag_el = ET.SubElement(root, "fragment")
        frag_el.set("id", fragment.fragment_id)
        frag_el.set("result", fragment.result_name)
        if fragment.estimated_cardinality is not None:
            frag_el.set("estimate", str(fragment.estimated_cardinality))
        frag_el.set("reliable", "true" if fragment.estimate_reliable else "false")
        if fragment.covers:
            frag_el.set("covers", ",".join(sorted(fragment.covers)))
        deps = sorted(plan.dependencies.get(fragment.fragment_id, set()))
        if deps:
            frag_el.set("after", ",".join(deps))
        frag_el.append(_operator_to_xml(fragment.root))
        for rule in fragment.rules:
            frag_el.append(_rule_to_xml(rule))
    for rule in plan.global_rules:
        root.append(_rule_to_xml(rule))
    ET.indent(root)
    return ET.tostring(root, encoding="unicode")


def plan_from_xml(text: str) -> QueryPlan:
    """Parse a plan from the XML plan language."""
    try:
        root = ET.fromstring(text)
    except ET.ParseError as exc:
        raise PlanError(f"malformed plan XML: {exc}") from exc
    if root.tag != "plan":
        raise PlanError(f"expected <plan> root element, got <{root.tag}>")
    fragments = []
    dependencies: dict[str, set[str]] = {}
    for frag_el in root.findall("fragment"):
        operator_el = frag_el.find("operator")
        if operator_el is None:
            raise PlanError("fragment is missing its operator tree")
        estimate_attr = frag_el.get("estimate")
        covers_attr = frag_el.get("covers", "")
        fragment = Fragment(
            fragment_id=frag_el.get("id", ""),
            root=_operator_from_xml(operator_el),
            result_name=frag_el.get("result", ""),
            rules=[_rule_from_xml(rule_el) for rule_el in frag_el.findall("rule")],
            estimated_cardinality=int(estimate_attr) if estimate_attr else None,
            estimate_reliable=frag_el.get("reliable", "true") == "true",
            covers=frozenset(covers_attr.split(",")) if covers_attr else frozenset(),
        )
        fragments.append(fragment)
        after = frag_el.get("after", "")
        if after:
            dependencies[fragment.fragment_id] = set(after.split(","))
    return QueryPlan(
        query_name=root.get("query", "query"),
        fragments=fragments,
        dependencies=dependencies,
        global_rules=[_rule_from_xml(rule_el) for rule_el in root.findall("rule")],
        partial=root.get("partial", "false") == "true",
        answer_name=root.get("answer", ""),
    )
