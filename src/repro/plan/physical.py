"""Physical operator specifications.

A query execution plan is a tree of :class:`OperatorSpec` nodes.  Each node
records the algebraic operator, the chosen physical implementation, its
children, the memory allotted to it, and the optimizer's cardinality
estimate — the five annotations Section 3.1.1 of the paper lists.  The specs
are *descriptions*; the execution engine instantiates runtime operators from
them (see :mod:`repro.engine.builder`).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Iterator

from repro.errors import PlanError


class OperatorType(str, Enum):
    """Algebraic operator kinds supported by the engine."""

    WRAPPER_SCAN = "wrapper_scan"
    TABLE_SCAN = "table_scan"
    SELECT = "select"
    PROJECT = "project"
    UNION = "union"
    JOIN = "join"
    DEPENDENT_JOIN = "dependent_join"
    COLLECTOR = "collector"
    CHOOSE = "choose"
    MATERIALIZE = "materialize"
    EXCHANGE = "exchange"


class JoinImplementation(str, Enum):
    """Physical join implementations."""

    HYBRID_HASH = "hybrid_hash"
    DOUBLE_PIPELINED = "double_pipelined"
    NESTED_LOOPS = "nested_loops"


class OverflowMethod(str, Enum):
    """Overflow resolution strategies for the double pipelined join."""

    LEFT_FLUSH = "left_flush"
    SYMMETRIC_FLUSH = "symmetric_flush"
    FAIL = "fail"


_operator_ids = itertools.count(1)


def next_operator_id(prefix: str) -> str:
    """Generate a unique operator identifier like ``join7``."""
    return f"{prefix}{next(_operator_ids)}"


@dataclass
class OperatorSpec:
    """One node of a physical plan tree.

    Parameters
    ----------
    operator_id:
        Unique name; rules refer to operators by this id.
    operator_type:
        The algebraic operator.
    implementation:
        Physical implementation label (join algorithm, etc.); empty for
        operators with only one implementation.
    children:
        Child operator specs, in order.
    params:
        Operator-specific parameters (see the builder for the keys each
        operator understands, e.g. ``left_keys`` / ``right_keys`` for joins,
        ``source`` for wrapper scans, ``predicates`` for selects).
    memory_limit_bytes:
        Memory allotment chosen by the optimizer (``None`` = unbounded).
    estimated_cardinality:
        The optimizer's output-cardinality estimate for this node.
    estimate_reliable:
        Whether the estimate came from real statistics (vs. a default guess);
        unreliable estimates are what trigger re-optimization checks.
    """

    operator_id: str
    operator_type: OperatorType
    implementation: str = ""
    children: list["OperatorSpec"] = field(default_factory=list)
    params: dict[str, Any] = field(default_factory=dict)
    memory_limit_bytes: int | None = None
    estimated_cardinality: int | None = None
    estimate_reliable: bool = True

    def __post_init__(self) -> None:
        if not self.operator_id:
            raise PlanError("operator_id must be non-empty")
        arity = {
            OperatorType.WRAPPER_SCAN: (0, 0),
            OperatorType.TABLE_SCAN: (0, 0),
            OperatorType.SELECT: (1, 1),
            OperatorType.PROJECT: (1, 1),
            OperatorType.UNION: (1, None),
            OperatorType.JOIN: (2, 2),
            OperatorType.DEPENDENT_JOIN: (2, 2),
            OperatorType.COLLECTOR: (1, None),
            OperatorType.CHOOSE: (1, None),
            OperatorType.MATERIALIZE: (1, 1),
            OperatorType.EXCHANGE: (1, 1),
        }[self.operator_type]
        low, high = arity
        count = len(self.children)
        if count < low or (high is not None and count > high):
            raise PlanError(
                f"operator {self.operator_id!r} ({self.operator_type.value}) has "
                f"{count} children; expected between {low} and {high or 'any'}"
            )

    # -- traversal ----------------------------------------------------------------

    def walk(self) -> Iterator["OperatorSpec"]:
        """Yield this node and all descendants, depth first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, operator_id: str) -> "OperatorSpec":
        """Locate a descendant (or self) by id."""
        for node in self.walk():
            if node.operator_id == operator_id:
                return node
        raise PlanError(f"operator {operator_id!r} not found under {self.operator_id!r}")

    def leaf_sources(self) -> list[str]:
        """Names of all data sources scanned under this node."""
        out = []
        for node in self.walk():
            if node.operator_type == OperatorType.WRAPPER_SCAN:
                out.append(node.params["source"])
        return out

    def operator_ids(self) -> list[str]:
        return [node.operator_id for node in self.walk()]

    def describe(self, indent: int = 0) -> str:
        """Readable multi-line plan rendering (used in examples and logs)."""
        label = self.operator_type.value
        if self.implementation:
            label += f"[{self.implementation}]"
        details = []
        if "source" in self.params:
            details.append(str(self.params["source"]))
        if "left_keys" in self.params:
            details.append(
                f"{','.join(self.params['left_keys'])}={','.join(self.params['right_keys'])}"
            )
        if self.estimated_cardinality is not None:
            details.append(f"est={self.estimated_cardinality}")
        suffix = f" ({'; '.join(details)})" if details else ""
        lines = ["  " * indent + f"{self.operator_id}: {label}{suffix}"]
        for child in self.children:
            lines.append(child.describe(indent + 1))
        return "\n".join(lines)


# -- convenience constructors --------------------------------------------------------


def wrapper_scan(source: str, operator_id: str | None = None, **params: Any) -> OperatorSpec:
    """Scan a remote source through its wrapper."""
    params = {"source": source, **params}
    return OperatorSpec(
        operator_id or next_operator_id("scan"), OperatorType.WRAPPER_SCAN, params=params
    )


def table_scan(relation: str, operator_id: str | None = None) -> OperatorSpec:
    """Scan a locally materialized relation."""
    return OperatorSpec(
        operator_id or next_operator_id("tscan"),
        OperatorType.TABLE_SCAN,
        params={"relation": relation},
    )


def select_(child: OperatorSpec, predicates: list, operator_id: str | None = None) -> OperatorSpec:
    """Filter ``child`` by selection predicates."""
    return OperatorSpec(
        operator_id or next_operator_id("select"),
        OperatorType.SELECT,
        children=[child],
        params={"predicates": list(predicates)},
    )


def project_(child: OperatorSpec, attributes: list[str], operator_id: str | None = None) -> OperatorSpec:
    """Project ``child`` onto ``attributes``."""
    return OperatorSpec(
        operator_id or next_operator_id("project"),
        OperatorType.PROJECT,
        children=[child],
        params={"attributes": list(attributes)},
    )


def join(
    left: OperatorSpec,
    right: OperatorSpec,
    left_keys: list[str],
    right_keys: list[str],
    implementation: JoinImplementation = JoinImplementation.DOUBLE_PIPELINED,
    operator_id: str | None = None,
    memory_limit_bytes: int | None = None,
    estimated_cardinality: int | None = None,
    overflow_method: OverflowMethod = OverflowMethod.LEFT_FLUSH,
) -> OperatorSpec:
    """Equi-join of two children on the given key lists."""
    if len(left_keys) != len(right_keys):
        raise PlanError("join key lists must have the same length")
    return OperatorSpec(
        operator_id or next_operator_id("join"),
        OperatorType.JOIN,
        implementation=implementation.value,
        children=[left, right],
        params={
            "left_keys": list(left_keys),
            "right_keys": list(right_keys),
            "overflow_method": overflow_method.value,
        },
        memory_limit_bytes=memory_limit_bytes,
        estimated_cardinality=estimated_cardinality,
    )


def union_(children: list[OperatorSpec], operator_id: str | None = None) -> OperatorSpec:
    """Plain (non-adaptive) union of the children."""
    return OperatorSpec(
        operator_id or next_operator_id("union"), OperatorType.UNION, children=list(children)
    )


def collector(
    children: list[OperatorSpec],
    operator_id: str | None = None,
    policy_name: str = "default",
) -> OperatorSpec:
    """Dynamic collector over overlapping/mirrored source scans."""
    return OperatorSpec(
        operator_id or next_operator_id("coll"),
        OperatorType.COLLECTOR,
        children=list(children),
        params={"policy": policy_name},
    )


def exchange(
    child: OperatorSpec,
    partition_keys: list[str],
    lanes: int,
    operator_id: str | None = None,
) -> OperatorSpec:
    """Hash-partition ``child``'s execution across ``lanes`` worker lanes.

    ``partition_keys`` declare the routing key and must be produced by the
    child (the plan validator rejects unbound keys); the builder partitions
    the child's *inputs* on the corresponding join/dedup keys and merges the
    lane outputs back into one arrival-ordered stream, so the exchange is
    result-transparent: same schema, same row multiset, any lane count.
    """
    return OperatorSpec(
        operator_id or next_operator_id("xchg"),
        OperatorType.EXCHANGE,
        children=[child],
        params={"partition_keys": list(partition_keys), "lanes": int(lanes)},
    )


def choose(
    children: list[OperatorSpec],
    operator_id: str | None = None,
) -> OperatorSpec:
    """Choose node: exactly one child is selected at runtime by rules."""
    return OperatorSpec(
        operator_id or next_operator_id("choose"), OperatorType.CHOOSE, children=list(children)
    )


def materialize(child: OperatorSpec, result_name: str, operator_id: str | None = None) -> OperatorSpec:
    """Materialize ``child`` into the local store under ``result_name``."""
    return OperatorSpec(
        operator_id or next_operator_id("mat"),
        OperatorType.MATERIALIZE,
        children=[child],
        params={"result_name": result_name},
    )
