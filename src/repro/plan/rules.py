"""Event-condition-action rules.

Rules are the key mechanism for adaptive behaviour in Tukwila.  Formally a
rule is a quintuple *(name, owner, event, condition, actions)*:

* the **event** names a runtime occurrence (``closed(frag1)``,
  ``timeout(wrapA)``, ``out_of_memory(join1)``, ``threshold(srcB, 10)``);
* the **condition** is a propositional formula over comparator terms whose
  operands may be constants, optimizer-precomputed values, or dynamic
  quantities (``card(op)``, ``est_card(op)``, ``state(op)``, ``memory(op)``,
  ``time(op)``);
* the **actions** modify operator execution, reschedule, re-optimize, or
  report an error.

The semantics restrictions of Section 3.1.2 are enforced here: a rule fires
at most once, rules with inactive owners never trigger, and all of a rule's
actions execute before the next event is processed (the event handler in
:mod:`repro.engine.event_handler` guarantees the latter).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Callable, Protocol, Sequence

from repro.errors import RuleError


class EventType(str, Enum):
    """Runtime events the execution system generates."""

    OPENED = "opened"
    CLOSED = "closed"
    ERROR = "error"
    TIMEOUT = "timeout"
    OUT_OF_MEMORY = "out_of_memory"
    THRESHOLD = "threshold"


@dataclass(frozen=True)
class Event:
    """A concrete runtime event raised by an operator or fragment.

    ``subject`` is the operator/fragment the event is about; ``value`` carries
    event-specific payload (tuple count for thresholds, message for errors).
    """

    event_type: EventType
    subject: str
    value: Any = None
    at_time: float = 0.0

    @property
    def key(self) -> tuple[EventType, str]:
        """Hash key used by the event handler to find matching rules."""
        return (self.event_type, self.subject)

    def __str__(self) -> str:
        payload = f", {self.value}" if self.value is not None else ""
        return f"{self.event_type.value}({self.subject}{payload}) @ {self.at_time:.1f}ms"


class RuntimeContext(Protocol):
    """What conditions may observe about the running query.

    The execution engine implements this protocol; tests may supply stubs.
    """

    def operator_state(self, operator_id: str) -> str: ...

    def operator_card(self, operator_id: str) -> int: ...

    def operator_est_card(self, operator_id: str) -> int | None: ...

    def operator_memory(self, operator_id: str) -> int: ...

    def operator_time_since_last_tuple(self, operator_id: str) -> float: ...


# -- condition language -----------------------------------------------------------


class Condition:
    """Base class for condition formulas; subclasses implement ``evaluate``."""

    def evaluate(self, context: RuntimeContext, event: Event) -> bool:
        raise NotImplementedError

    def __and__(self, other: "Condition") -> "Condition":
        return And(self, other)

    def __or__(self, other: "Condition") -> "Condition":
        return Or(self, other)

    def __invert__(self) -> "Condition":
        return Not(self)


@dataclass
class Always(Condition):
    """``true`` — the rule fires whenever its event triggers."""

    def evaluate(self, context: RuntimeContext, event: Event) -> bool:
        return True

    def __str__(self) -> str:
        return "true"


@dataclass
class Never(Condition):
    """``false`` — useful for disabling a rule without removing it."""

    def evaluate(self, context: RuntimeContext, event: Event) -> bool:
        return False

    def __str__(self) -> str:
        return "false"


@dataclass
class And(Condition):
    left: Condition
    right: Condition

    def evaluate(self, context: RuntimeContext, event: Event) -> bool:
        return self.left.evaluate(context, event) and self.right.evaluate(context, event)

    def __str__(self) -> str:
        return f"({self.left} and {self.right})"


@dataclass
class Or(Condition):
    left: Condition
    right: Condition

    def evaluate(self, context: RuntimeContext, event: Event) -> bool:
        return self.left.evaluate(context, event) or self.right.evaluate(context, event)

    def __str__(self) -> str:
        return f"({self.left} or {self.right})"


@dataclass
class Not(Condition):
    operand: Condition

    def evaluate(self, context: RuntimeContext, event: Event) -> bool:
        return not self.operand.evaluate(context, event)

    def __str__(self) -> str:
        return f"(not {self.operand})"


#: Quantity term: a function of (context, event) producing a comparable value.
Quantity = Callable[[RuntimeContext, Event], Any]


def constant(value: Any) -> Quantity:
    """A constant operand."""

    def read(context: RuntimeContext, event: Event) -> Any:
        return value

    read.description = repr(value)  # type: ignore[attr-defined]
    return read


def card(operator_id: str) -> Quantity:
    """Number of tuples produced so far by ``operator_id``."""

    def read(context: RuntimeContext, event: Event) -> Any:
        return context.operator_card(operator_id)

    read.description = f"card({operator_id})"  # type: ignore[attr-defined]
    return read


def est_card(operator_id: str) -> Quantity:
    """The optimizer's cardinality estimate for ``operator_id``."""

    def read(context: RuntimeContext, event: Event) -> Any:
        value = context.operator_est_card(operator_id)
        return value if value is not None else 0

    read.description = f"est_card({operator_id})"  # type: ignore[attr-defined]
    return read


def state(operator_id: str) -> Quantity:
    """The operator's current state name."""

    def read(context: RuntimeContext, event: Event) -> Any:
        return context.operator_state(operator_id)

    read.description = f"state({operator_id})"  # type: ignore[attr-defined]
    return read


def memory(operator_id: str) -> Quantity:
    """Bytes of memory currently used by the operator."""

    def read(context: RuntimeContext, event: Event) -> Any:
        return context.operator_memory(operator_id)

    read.description = f"memory({operator_id})"  # type: ignore[attr-defined]
    return read


def time_waiting(operator_id: str) -> Quantity:
    """Virtual milliseconds since the operator last produced a tuple."""

    def read(context: RuntimeContext, event: Event) -> Any:
        return context.operator_time_since_last_tuple(operator_id)

    read.description = f"time({operator_id})"  # type: ignore[attr-defined]
    return read


def event_value() -> Quantity:
    """The payload carried by the triggering event (e.g. a threshold count)."""

    def read(context: RuntimeContext, event: Event) -> Any:
        return event.value

    read.description = "event.value"  # type: ignore[attr-defined]
    return read


_COMPARATORS: dict[str, Callable[[Any, Any], bool]] = {
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


@dataclass
class Compare(Condition):
    """Comparator term: ``left <op> right * scale``.

    ``scale`` supports the paper's example rule
    ``card(join1) >= 2 * est_card(join1)`` without a separate arithmetic layer.
    """

    left: Quantity
    op: str
    right: Quantity
    scale: float = 1.0

    def __post_init__(self) -> None:
        if self.op not in _COMPARATORS:
            raise RuleError(f"unknown comparator {self.op!r}")

    def evaluate(self, context: RuntimeContext, event: Event) -> bool:
        left_value = self.left(context, event)
        right_value = self.right(context, event)
        if self.scale != 1.0:
            right_value = right_value * self.scale
        return _COMPARATORS[self.op](left_value, right_value)

    def __str__(self) -> str:
        left_desc = getattr(self.left, "description", "<quantity>")
        right_desc = getattr(self.right, "description", "<quantity>")
        scale = f"{self.scale} * " if self.scale != 1.0 else ""
        return f"{left_desc} {self.op} {scale}{right_desc}"


# -- actions -----------------------------------------------------------------------


class ActionType(str, Enum):
    """Kinds of rule actions (Section 3.1.2)."""

    SET_OVERFLOW_METHOD = "set_overflow_method"
    ALTER_MEMORY = "alter_memory"
    DEACTIVATE = "deactivate"
    ACTIVATE = "activate"
    RESCHEDULE = "reschedule"
    REOPTIMIZE = "reoptimize"
    RETURN_ERROR = "return_error"
    SELECT_FRAGMENT = "select_fragment"


@dataclass(frozen=True)
class Action:
    """A single rule action with a target and optional argument."""

    action_type: ActionType
    target: str = ""
    argument: Any = None

    def __str__(self) -> str:
        parts = [self.action_type.value]
        if self.target:
            parts.append(self.target)
        if self.argument is not None:
            parts.append(str(self.argument))
        return "(" + " ".join(parts) + ")"


def set_overflow_method(operator_id: str, method: str) -> Action:
    """Set the overflow strategy of a double pipelined join."""
    return Action(ActionType.SET_OVERFLOW_METHOD, operator_id, method)


def alter_memory(operator_id: str, new_limit_bytes: int) -> Action:
    """Change an operator's memory allotment."""
    return Action(ActionType.ALTER_MEMORY, operator_id, new_limit_bytes)


def deactivate(target: str) -> Action:
    """Stop an operator/fragment and deactivate its rules."""
    return Action(ActionType.DEACTIVATE, target)


def activate(collector_id: str, child: str) -> Action:
    """Ask a collector to open (or re-open) one of its children."""
    return Action(ActionType.ACTIVATE, collector_id, child)


def reschedule() -> Action:
    """Reschedule the operator tree to favour responsive sources."""
    return Action(ActionType.RESCHEDULE)


def replan() -> Action:
    """Re-invoke the optimizer with the statistics gathered so far."""
    return Action(ActionType.REOPTIMIZE)


def return_error(message: str) -> Action:
    """Abort the query and report ``message`` to the user."""
    return Action(ActionType.RETURN_ERROR, argument=message)


def select_fragment(fragment_id: str) -> Action:
    """Contingent planning: choose which fragment executes next."""
    return Action(ActionType.SELECT_FRAGMENT, fragment_id)


# -- rules --------------------------------------------------------------------------


@dataclass
class Rule:
    """An event-condition-action rule.

    Parameters
    ----------
    name:
        Unique rule name within a plan.
    owner:
        The operator or fragment the rule controls; a rule whose owner has
        been deactivated is itself inactive.
    event_type / subject:
        The event that triggers the rule.  ``subject`` is the id of the
        operator/fragment/wrapper the event must be about.
    condition:
        Propositional condition evaluated when the rule triggers.
    actions:
        Executed in order when the condition holds.
    """

    name: str
    owner: str
    event_type: EventType
    subject: str
    condition: Condition = field(default_factory=Always)
    actions: Sequence[Action] = field(default_factory=tuple)
    fired: bool = False
    active: bool = True

    def __post_init__(self) -> None:
        if not self.actions:
            raise RuleError(f"rule {self.name!r} has no actions")
        self.actions = tuple(self.actions)

    @property
    def event_key(self) -> tuple[EventType, str]:
        return (self.event_type, self.subject)

    def matches(self, event: Event) -> bool:
        """Whether ``event`` triggers this rule (ignores condition and state)."""
        return event.event_type == self.event_type and event.subject == self.subject

    def __str__(self) -> str:
        actions = "; ".join(str(a) for a in self.actions)
        return (
            f"when {self.event_type.value}({self.subject}) "
            f"if {self.condition} then {actions}"
        )


def validate_rule_set(rules: Sequence[Rule]) -> None:
    """Static checks from Section 3.1.2.

    * rule names must be unique;
    * no two *simultaneously triggerable* rules (same event key) may contain
      actions that negate each other (activate vs deactivate of the same
      target, or two different overflow methods for the same operator).

    Raises
    ------
    RuleError
        If a violation is found.
    """
    names = [rule.name for rule in rules]
    if len(names) != len(set(names)):
        dupes = sorted({n for n in names if names.count(n) > 1})
        raise RuleError(f"duplicate rule names: {dupes}")

    by_event: dict[tuple[EventType, str], list[Rule]] = {}
    for rule in rules:
        by_event.setdefault(rule.event_key, []).append(rule)

    def conflicting(a: Action, b: Action) -> bool:
        same_target = a.target == b.target
        if not same_target:
            return False
        pair = {a.action_type, b.action_type}
        if pair == {ActionType.ACTIVATE, ActionType.DEACTIVATE}:
            return True
        if (
            a.action_type == ActionType.SET_OVERFLOW_METHOD
            and b.action_type == ActionType.SET_OVERFLOW_METHOD
            and a.argument != b.argument
        ):
            return True
        return False

    for event_rules in by_event.values():
        for i, first in enumerate(event_rules):
            for second in event_rules[i + 1 :]:
                for action_a in first.actions:
                    for action_b in second.actions:
                        if conflicting(action_a, action_b):
                            raise RuleError(
                                f"rules {first.name!r} and {second.name!r} can fire "
                                f"simultaneously with conflicting actions "
                                f"{action_a} / {action_b}"
                            )
