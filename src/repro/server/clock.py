"""The shared server timeline and per-session clock views.

One :class:`ServerClock` owns the virtual timeline of a whole
:class:`~repro.server.scheduler.QueryServer`.  Each admitted session gets a
:class:`SessionClock` — a full :class:`~repro.network.simclock.SimClock`
(operators, wrappers and disks use it exactly as in single-query mode) whose
time is an *absolute position on the server timeline*: sessions are admitted
at the server's causal frontier and advance independently from there, so one
session's network waits occupy a span of server time that another session's
CPU work can overlap.

Two derived times matter:

* the **frontier** — the minimum ``now`` across unfinished sessions.  The
  cooperative scheduler always runs the frontier session, which makes shared
  state (the cross-session source cache, broker revocations, connection
  slots) causal: anything already published was published at a virtual time
  no later than the frontier.
* the **completion** — the maximum ``now`` across all sessions, the server's
  makespan (the "total virtual wall clock" the throughput benchmark
  compares against serial back-to-back execution).
"""

from __future__ import annotations

from repro.network.simclock import ClockStats, SimClock


class SessionClock(SimClock):
    """One session's view of the server timeline.

    Behaviourally a plain :class:`SimClock` (all charge semantics are
    inherited unchanged — drive-mode parity inside a session is untouched);
    the subclass only pins the session's identity and its admission time on
    the shared timeline.
    """

    def __init__(self, server: "ServerClock", session_id: str, start_ms: float) -> None:
        super().__init__(start_ms)
        self.server = server
        self.session_id = session_id
        self.admitted_at_ms = start_ms

    def reset(self, start_ms: float | None = None) -> None:
        """Rewind to the admission time (benchmark repetitions)."""
        super().reset(self.admitted_at_ms if start_ms is None else start_ms)


class ServerClock:
    """Registry of session clocks forming one virtual timeline."""

    def __init__(self, start_ms: float = 0.0) -> None:
        self._start_ms = float(start_ms)
        self._clocks: dict[str, SessionClock] = {}
        self._active: set[str] = set()

    def session_clock(self, session_id: str, start_ms: float | None = None) -> SessionClock:
        """Admit a session: a fresh clock starting at the causal frontier.

        ``start_ms`` (e.g. a staggered arrival time) may push admission past
        the frontier but never before it — a session cannot start in the
        server's past.
        """
        if session_id in self._clocks:
            raise ValueError(f"session {session_id!r} already has a clock")
        admit_at = self.frontier
        if start_ms is not None and start_ms > admit_at:
            admit_at = float(start_ms)
        clock = SessionClock(self, session_id, admit_at)
        self._clocks[session_id] = clock
        self._active.add(session_id)
        return clock

    def lane_clock(self, owner_id: str, label: str, start_ms: float) -> SessionClock:
        """Admit an intra-query worker lane at exactly ``start_ms``.

        Exchange lanes and producer drivers are full timeline members — they
        constrain the frontier until :meth:`finish` and count toward the
        makespan — but unlike sessions they are *not* clamped to the
        frontier: a lane starts at its owner's current time, which is
        already at or past the frontier because the owner is itself an
        unfinished timeline member.  Repeated ids (an operator tree rebuilt
        inside one session, e.g. benchmark repetitions) get a ``~n`` suffix
        rather than an error; lane identity never affects results.
        """
        lane_id = f"{owner_id}/{label}"
        if lane_id in self._clocks:
            n = 2
            while f"{lane_id}~{n}" in self._clocks:
                n += 1
            lane_id = f"{lane_id}~{n}"
        clock = SessionClock(self, lane_id, float(start_ms))
        self._clocks[lane_id] = clock
        self._active.add(lane_id)
        return clock

    def finish(self, session_id: str) -> None:
        """Mark a session complete; its clock stops constraining the frontier."""
        self._active.discard(session_id)

    @property
    def frontier(self) -> float:
        """Earliest unfinished-session time — the server's causal 'now'."""
        if self._active:
            return min(self._clocks[sid].now for sid in self._active)
        if self._clocks:
            return max(clock.now for clock in self._clocks.values())
        return self._start_ms

    @property
    def completion_ms(self) -> float:
        """Latest session time — the server's makespan so far."""
        if not self._clocks:
            return self._start_ms
        return max(clock.now for clock in self._clocks.values())

    @property
    def session_clocks(self) -> dict[str, SessionClock]:
        return dict(self._clocks)

    def aggregate_stats(self) -> ClockStats:
        """Summed wait/CPU/IO breakdown across every session."""
        total = ClockStats()
        for clock in self._clocks.values():
            total.add(clock.stats)
        return total

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ServerClock(frontier={self.frontier:.2f}ms, "
            f"completion={self.completion_ms:.2f}ms, sessions={len(self._clocks)})"
        )
