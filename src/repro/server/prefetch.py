"""Plan-aware speculative prefetching under a revocable broker lease.

The server sees every submitted plan before it runs, so it knows which
sources the near-future workload will scan.  :class:`PlanAwarePrefetcher`
watches ``submit``/``submit_plan`` traffic, scores sources by how often they
appear times how many bytes a scan of them would move, and *warms* the
hottest ones ahead of demand: it opens its own connection — only when the
source has a spare slot — and publishes the stream block by block as a
partial extent in the shared :class:`~repro.network.cache.SourceCache`.
Sessions that scan a warmed source attach as followers (prefix at local CPU
speed, live tail shared with the prefetch stream) instead of queueing for a
connection slot of their own.

Everything the prefetcher caches is charged to one **speculative broker
lease**: granted only from capacity that is free at acquisition time (the
broker never revokes real work to make room for speculation, and the grant
may be zero), floored at zero, and victimized *first* when any query needs
memory.  For the same reason the lease is never grown by renegotiation —
``resize`` would revoke query leases to feed speculation.  On revocation the
prefetcher drops warmed data — sources that never served a hit first — until
its residency fits the shrunken lease, keeping the broker's
``used == sum(resident_bytes)`` invariant exact at every revocation point.

Determinism: the prefetcher runs on its own *unregistered*
:class:`~repro.network.simclock.SimClock` started at the server's causal
frontier, so its activity never moves the frontier or the makespan; the
scheduler calls :meth:`advance` immediately before each session step with
that session's next event time as the horizon, so every block that arrives
before any session's next observable moment is published — and stamped —
first.  Virtual times and admission order alone decide the interleaving,
exactly as without the prefetcher.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.engine.stats import PrefetchSummary
from repro.network.simclock import SimClock
from repro.network.wrapper import Wrapper
from repro.storage.memory import MemoryBudget, MemoryPool

#: Rows fetched and published per prefetch block (matches the scan block size
#: closely enough that follower wait patterns look like a second reader's).
PREFETCH_BLOCK_ROWS = 64

#: Session label stamped on prefetch fills; distinct from every query session
#: id, so prefetched entries always count as cross-session hits.
PREFETCH_SESSION = "prefetch"

#: A source must appear at least this many times across observed plans before
#: speculation spends a connection slot on it.
MIN_APPEARANCES = 2


@dataclass
class PrefetchRecord:
    """One source the prefetcher decided to warm (or deliberately skipped)."""

    source_name: str
    #: streaming | complete | partial | dropped | skipped
    state: str = "streaming"
    bytes_fetched: int = 0
    #: Bytes still charged to the speculative lease for this source.
    resident_bytes: int = 0
    #: Cache hits (full + partial) the source had *before* warming started;
    #: any growth past this baseline means the prefetched data was used.
    baseline_hits: int = 0
    extent: object | None = None


class PlanAwarePrefetcher:
    """Warms the hottest observed sources within spare slots and free memory.

    Parameters
    ----------
    server:
        The owning :class:`~repro.server.scheduler.QueryServer`; supplies the
        catalog, the shared cache, the broker, and the causal frontier.
    budget_bytes:
        Speculative lease size to request (the grant may be smaller — down
        to zero — depending on free broker capacity at acquisition time).
    """

    def __init__(
        self,
        server,
        budget_bytes: int,
        block_rows: int = PREFETCH_BLOCK_ROWS,
        min_appearances: int = MIN_APPEARANCES,
    ) -> None:
        self.server = server
        self.catalog = server.catalog
        self.cache = server.source_cache
        self.budget_bytes = int(budget_bytes)
        self.block_rows = block_rows
        self.min_appearances = min_appearances
        self._counts: dict[str, int] = {}
        self._est_bytes: dict[str, float] = {}
        self._records: dict[str, PrefetchRecord] = {}
        self._pool = MemoryPool(name=f"{server.name}-prefetch", broker=server.broker)
        self._budget: MemoryBudget | None = None
        self._clock: SimClock | None = None
        self._wrapper: Wrapper | None = None
        self._extent = None
        self._active: PrefetchRecord | None = None
        self._unit_bytes = 0
        self.blocks_published = 0
        self.bytes_fetched = 0

    # -- plan observation ---------------------------------------------------------------

    def observe_spec(self, spec) -> None:
        """Count source appearances in one submitted operator tree."""
        for node in spec.walk():
            name = node.params.get("source")
            if not name:
                continue
            self._counts[name] = self._counts.get(name, 0) + 1
            if name not in self._est_bytes:
                source = self.catalog.source(name)
                row_bytes = source.exported_schema.row_size_for(
                    self.server.engine_config.encoded_columns
                )
                self._est_bytes[name] = float(source.cardinality * row_bytes)

    def observe_plan(self, plan) -> None:
        """Count source appearances across every fragment of a query plan."""
        for fragment in plan.fragments:
            self.observe_spec(fragment.root)

    # -- the decision hook (must stay effect-free; see the step-effect rule) ------------

    def prefetch_decision(self, now_ms: float) -> str | None:
        """The hottest source worth warming at ``now_ms``, or ``None``.

        Hotness is appearance count times estimated transfer bytes.  A source
        qualifies only when it appeared in at least :attr:`min_appearances`
        observed plans, is neither cached nor already streaming, has a spare
        connection slot right now, and the speculative lease has headroom.

        This hook is deliberately side-effect free — no counters move, no
        clock advances, nothing is opened — so the scheduler (and the
        ``step-effect`` analyzer rule, which walks its call graph) may probe
        it on every quantum.
        """
        if self._wrapper is not None:
            return None
        budget = self._budget
        if budget is not None and budget.available_bytes == 0:
            return None
        best: str | None = None
        best_score = 0.0
        for name in sorted(self._counts):
            if self._counts[name] < self.min_appearances:
                continue
            if name in self._records:
                continue
            if name in self.cache or self.cache.streaming(name):
                continue
            source = self.catalog.source(name)
            if source.profile.unavailable:
                continue
            free = source.free_slots(now_ms)
            if free is not None and free <= 0:
                continue
            score = self._counts[name] * self._est_bytes.get(name, 0.0)
            if best is None or score > best_score:
                best, best_score = name, score
        return best

    # -- driving ------------------------------------------------------------------------

    def advance(self, horizon_ms: float) -> None:
        """Publish every prefetch block arriving strictly before ``horizon_ms``.

        Called by the scheduler immediately before stepping the session whose
        next event is ``horizon_ms``: anything the prefetch stream would have
        delivered by then is in the cache — with exact arrival-time fill
        stamps — before the session can observe the source layer.
        """
        while True:
            if self._wrapper is None and not self._open_next():
                return
            if not self._pump(horizon_ms):
                return

    def _open_time(self) -> float:
        """Where on the timeline the next stream would open."""
        at = self.server.clock.frontier
        if self._clock is not None and self._clock.now > at:
            at = self._clock.now
        return at

    def _ensure_lease(self) -> bool:
        """Acquire the speculative lease lazily; True when it has headroom.

        The lease is taken once, from free capacity only, and never resized
        upward — growth renegotiation would revoke query leases to feed
        speculation, which the broker's courtesy rules forbid.
        """
        if self._budget is None:
            budget = self._pool.grant(
                "prefetch", self.budget_bytes, speculative=True
            )
            budget.on_revoke = self._on_revoke
            self._budget = budget
        limit = self._budget.limit_bytes
        return limit is None or self._budget.available_bytes > 0

    def _open_next(self) -> bool:
        """Open a prefetch stream on the current best candidate, if any."""
        open_at = self._open_time()
        name = self.prefetch_decision(open_at)
        if name is None:
            return False
        if not self._ensure_lease():
            return False
        source = self.catalog.source(name)
        if self._clock is None:
            self._clock = SimClock(start_ms=open_at)
        else:
            self._clock.advance_to(open_at)
        config = self.server.engine_config
        wrapper = Wrapper(
            source,
            self._clock,
            timeout_ms=None,
            encoded_columns=config.encoded_columns,
        )
        wrapper.open()
        extent = self.cache.begin_stream(
            name,
            source.exported_schema,
            self._clock.now,
            PREFETCH_SESSION,
            self._clock,
            wrapper.peek_next_arrival,
            demand=self._demand,
        )
        if extent is None:
            # Raced with a session publisher or a completed entry between the
            # decision and the open; never reconsider this source.
            wrapper.close()
            self._records[name] = PrefetchRecord(name, state="skipped")
            return True
        counters = self.cache.source_counters(name)
        record = PrefetchRecord(
            name,
            baseline_hits=counters.hits + counters.partial_hits,
            extent=extent,
        )
        self._records[name] = record
        self._wrapper = wrapper
        self._extent = extent
        self._active = record
        self._unit_bytes = source.exported_schema.row_size_for(config.encoded_columns)
        return True

    def _demand(self, now_ms: float) -> None:
        """A caught-up follower at ``now_ms`` drives the live stream itself.

        Publishes every row the prefetch connection has delivered by
        ``now_ms`` (the bound is nudged one ulp so a row arriving exactly
        *at* the follower's clock is included — the connection delivered it
        by then).  Unlike sessions, the prefetcher has no unpublished
        fill-time unknowns: its clock tracks the connection's arrival stamps,
        so synchronous pumping is causally exact.
        """
        if self._wrapper is not None:
            self._pump(math.nextafter(now_ms, math.inf))

    def _pump(self, horizon_ms: float) -> bool:
        """Stream blocks until the horizon; True when another source may open."""
        wrapper = self._wrapper
        while True:
            rows = wrapper.fetch_batch(self.block_rows, arrival_bound=horizon_ms)
            if not rows:
                if wrapper.exhausted:
                    self._finish_stream()
                    return True
                arrival = wrapper.peek_next_arrival()
                if arrival is not None and arrival < horizon_ms:
                    # In range but undeliverable: the next tuple is the
                    # source's mid-transfer failure point.  Keep the prefix.
                    self._abandon_stream()
                    return True
                return False
            cost = len(rows) * self._unit_bytes
            if not self._budget.try_reserve(cost):
                # Lease headroom exhausted: keep the published prefix, free
                # the slot, and stop speculating until something is released.
                self._abandon_stream()
                return False
            record = self._active
            record.resident_bytes += cost
            record.bytes_fetched += cost
            self.bytes_fetched += cost
            # Per-row arrival stamps: followers fall in at live-link pace
            # instead of seeing the whole block appear at its last arrival.
            self._extent.publish(
                rows,
                self._clock.now,
                PREFETCH_SESSION,
                arrivals=[row.arrival for row in rows],
            )
            self.blocks_published += 1

    def _finish_stream(self) -> None:
        """Source drained: promote the extent to a completed cache entry."""
        self.cache.complete_stream(self._extent, self._clock.now, PREFETCH_SESSION)
        self._wrapper.close()
        self._active.state = "complete"
        self._wrapper = self._extent = self._active = None

    def _abandon_stream(self) -> None:
        """Stop mid-stream: detach the prefix, then release the slot.

        Detach-before-close is the early-close ordering rule: a queued reader
        admitted into the freed slot must find the prefix already published.
        """
        self.cache.detach_stream(self._extent)
        self._wrapper.close()
        self._active.state = "partial"
        self._wrapper = self._extent = self._active = None

    def quiesce(self) -> None:
        """End of the scheduler run: free the live connection slot, keep data."""
        if self._wrapper is not None:
            self._abandon_stream()

    # -- revocation ---------------------------------------------------------------------

    def _used_since_warm(self, record: PrefetchRecord) -> bool:
        counters = self.cache.source_counters(record.source_name)
        return counters.hits + counters.partial_hits > record.baseline_hits

    def _on_revoke(self, budget: MemoryBudget) -> None:
        """Drop warmed data — never-used sources first — to fit the new limit."""
        limit = budget.limit_bytes or 0
        victims = sorted(
            (r for r in self._records.values() if r.resident_bytes > 0),
            key=self._used_since_warm,
        )
        for record in victims:
            if budget.used_bytes <= limit:
                break
            self._drop(record)
        if self._wrapper is not None and budget.available_bytes <= 0:
            # The lease was drained under it: a stream that can never
            # reserve another block would only trap followers (they wait on
            # its next arrival, then defect).  Keep the prefix, free the
            # slot now.
            self._abandon_stream()

    def _drop(self, record: PrefetchRecord) -> None:
        """Forget one warmed source and return its bytes to the lease."""
        if self._active is record:
            self.cache.drop_stream(self._extent)
            self._wrapper.close()
            self._wrapper = self._extent = self._active = None
        elif record.state == "partial":
            self.cache.drop_stream(record.extent)
        elif record.state == "complete":
            self.cache.invalidate(record.source_name)
        self._budget.release(record.resident_bytes)
        record.resident_bytes = 0
        record.state = "dropped"

    # -- reporting ----------------------------------------------------------------------

    @property
    def resident_bytes(self) -> int:
        """Live bytes charged to the speculative lease (invariant checks)."""
        return self._budget.used_bytes if self._budget is not None else 0

    def summary(self) -> PrefetchSummary:
        records = [r for r in self._records.values() if r.state != "skipped"]
        used = sum(r.bytes_fetched for r in records if self._used_since_warm(r))
        budget = self._budget
        return PrefetchSummary(
            sources_warmed=len(records),
            sources_completed=sum(1 for r in records if r.state == "complete"),
            sources_dropped=sum(1 for r in records if r.state == "dropped"),
            blocks_published=self.blocks_published,
            bytes_fetched=self.bytes_fetched,
            bytes_used=used,
            bytes_wasted=self.bytes_fetched - used,
            lease_bytes=(budget.limit_bytes or 0) if budget is not None else 0,
            resident_bytes=budget.used_bytes if budget is not None else 0,
            revocations=budget.revocations if budget is not None else 0,
        )
