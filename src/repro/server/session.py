"""Query sessions: one user's query as a resumable unit of server work.

A :class:`QuerySession` owns one :class:`~repro.engine.context.ExecutionContext`
(session clock on the shared timeline, broker-backed memory pool, the
server's shared source cache) and a *step generator* — either the executor's
resumable :meth:`~repro.engine.executor.QueryExecutor.steps` over a full
:class:`~repro.plan.fragments.QueryPlan`, or a batch loop over a hand-built
operator tree (the benchmark path).  The generator yields a
:class:`~repro.engine.executor.StepEvent` at every batch/fragment boundary
and before blocking on a source, which is where the cooperative scheduler
takes over and may run another session instead.
"""

from __future__ import annotations

from enum import Enum

from repro.engine.builder import build_operator
from repro.engine.context import ExecutionContext
from repro.engine.executor import ExecutionOutcome, QueryExecutor, StepEvent, wait_hint
from repro.engine.iterators import DEFAULT_BATCH_SIZE
from repro.engine.operators.materialize import Materialize
from repro.engine.stats import SessionSummary, TupleTimeline
from repro.plan.fragments import QueryPlan
from repro.plan.physical import OperatorSpec, OperatorType
from repro.storage.relation import Relation


class SessionStatus(str, Enum):
    """Lifecycle of a session on the scheduler."""

    PENDING = "pending"
    RUNNING = "running"
    WAITING = "waiting"
    COMPLETED = "completed"
    FAILED = "failed"


class QuerySession:
    """One resumable query on the server's shared virtual timeline.

    Use :meth:`QueryServer.submit` / :meth:`QueryServer.submit_plan` to
    create sessions; the scheduler drives them through :meth:`step`.
    """

    def __init__(
        self,
        session_id: str,
        context: ExecutionContext,
        admission_index: int,
        *,
        plan: QueryPlan | None = None,
        root_spec: OperatorSpec | None = None,
        result_name: str | None = None,
        batch_size: int | None = DEFAULT_BATCH_SIZE,
    ) -> None:
        if (plan is None) == (root_spec is None):
            raise ValueError("a session takes exactly one of plan= or root_spec=")
        self.session_id = session_id
        self.context = context
        self.admission_index = admission_index
        self.batch_size = batch_size
        self.status = SessionStatus.PENDING
        self.summary = SessionSummary(
            session_id=session_id, submitted_at_ms=context.clock.now
        )
        context.stats.session_id = session_id
        #: Virtual time of the session's next scheduling event: its clock
        #: position, or the arrival it is blocked on while waiting.
        self.next_event_ms = context.clock.now
        self.result: Relation | None = None
        self.result_cardinality = 0
        self.timeline = TupleTimeline()
        self.outcome: ExecutionOutcome | None = None
        self.error: str | None = None
        self.executor: QueryExecutor | None = None
        if plan is not None:
            self.executor = QueryExecutor(context, batch_size=batch_size)
            self._plan = plan
            self._gen = self.executor.steps(plan)
        else:
            self._plan = None
            self._result_name = result_name or f"{session_id}_result"
            self._gen = self._tree_steps(root_spec)

    # -- scheduler interface ------------------------------------------------------------

    @property
    def finished(self) -> bool:
        return self.status in (SessionStatus.COMPLETED, SessionStatus.FAILED)

    def step(self) -> bool:
        """Run one quantum; returns ``False`` once the session is finished.

        A quantum ends at the generator's next yield: after a batch crossed
        the fragment root, after a fragment completed, or when the plan is
        about to block on a source arrival (the session then reports that
        arrival as its next event so the scheduler can run someone else
        through the stall).
        """
        if self.finished:
            return False
        self.status = SessionStatus.RUNNING
        try:
            event: StepEvent = next(self._gen)
        except StopIteration:
            self._complete()
            return False
        except Exception as exc:  # noqa: BLE001 - one session's failure is contained
            self.error = str(exc)
            self._finish(SessionStatus.FAILED)
            return False
        self.summary.slices += 1
        if event.kind == "wait" and event.wait_until_ms is not None:
            self.summary.waits += 1
            self.status = SessionStatus.WAITING
            self.next_event_ms = event.wait_until_ms
        else:
            self.next_event_ms = self.context.clock.now
        return True

    def run_to_completion(self) -> None:
        """Drive this session alone (no interleaving) until it finishes."""
        while self.step():
            pass

    # -- completion ---------------------------------------------------------------------

    def _complete(self) -> None:
        if self.executor is not None:
            self.outcome = self.executor.outcome
            if self.outcome is not None:
                if self.outcome.answer is not None:
                    self.result = self.outcome.answer
                    self.result_cardinality = self.outcome.answer.cardinality
                self.timeline = self.outcome.stats.output_timeline
                if self.outcome.completed:
                    self._finish(SessionStatus.COMPLETED)
                else:
                    # Replan/reschedule requests surface as failures at the
                    # session level: the server has no replanning driver, so
                    # a plan that stopped for one never produced its answer
                    # and must not count as a completed session.  The full
                    # ExecutionOutcome stays on ``self.outcome`` for callers
                    # that want to replan and resubmit.
                    self.error = (
                        self.outcome.error
                        or f"execution ended with {self.outcome.status.value}"
                    )
                    self._finish(SessionStatus.FAILED)
                return
        self._finish(SessionStatus.COMPLETED)

    def _finish(self, status: SessionStatus) -> None:
        self.status = status
        clock = self.context.clock
        summary = self.summary
        summary.status = status.value
        summary.completed_at_ms = clock.now
        summary.result_cardinality = self.result_cardinality
        summary.wait_ms = clock.stats.wait_ms
        summary.cpu_ms = clock.stats.cpu_ms
        summary.io_ms = clock.stats.io_ms
        self.next_event_ms = clock.now
        server = getattr(clock, "server", None)
        if server is not None:
            server.finish(self.session_id)

    # -- the operator-tree drive (benchmark/test path) ----------------------------------

    def _tree_steps(self, spec: OperatorSpec):
        """Drive one operator tree exactly like the bench harness, but resumable."""
        context = self.context
        root = build_operator(spec, context)
        if spec.operator_type != OperatorType.MATERIALIZE:
            root = Materialize(
                f"{self.session_id}-mat", context, root, result_name=self._result_name
            )
        root.open()
        produced = 0
        timeline = self.timeline
        try:
            if self.batch_size is None:
                while True:
                    wait_until = wait_hint(root, context.clock)
                    if wait_until is not None:
                        yield StepEvent("wait", context.clock.now, wait_until_ms=wait_until)
                    row = root.next()
                    if row is None:
                        break
                    produced += 1
                    timeline.record(context.clock.now, produced)
                    yield StepEvent("batch", context.clock.now)
            else:
                size = 1
                while True:
                    wait_until = wait_hint(root, context.clock)
                    if wait_until is not None:
                        yield StepEvent("wait", context.clock.now, wait_until_ms=wait_until)
                    batch = root.next_batch(size)
                    if not batch:
                        break
                    produced += len(batch)
                    timeline.record(context.clock.now, produced)
                    size = min(size * 4, self.batch_size)
                    yield StepEvent("batch", context.clock.now)
        finally:
            root.close()
        self.result = context.local_store.get(self._result_name)
        self.result_cardinality = produced
        context.stats.completion_time_ms = context.clock.now

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"QuerySession({self.session_id!r}, {self.status.value}, "
            f"next_event={self.next_event_ms:.2f}ms)"
        )
