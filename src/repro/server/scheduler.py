"""The query server: cooperative event-driven scheduling of many sessions.

:class:`QueryServer` is the multi-query face of the engine.  It owns the
shared virtual timeline (:class:`~repro.server.clock.ServerClock`), the
server-wide :class:`~repro.server.broker.MemoryBroker`, and one cross-session
:class:`~repro.network.cache.SourceCache`; every submitted query becomes a
:class:`~repro.server.session.QuerySession` with its own clock view, a
broker-backed memory pool, and shared access to the source layer.

Scheduling is conservative discrete-event simulation: the scheduler always
steps the session with the **earliest next event** (its clock position, or
the source arrival it is blocked on).  Running the frontier session first
makes all shared state causal — a cache fill, a broker revocation, or a
connection-slot release observed by any session happened at a virtual time
no later than that session's own clock — and it is what overlaps one
session's network stalls with another session's CPU: while the frontier
session sleeps toward an arrival at ``T``, every other session whose next
event precedes ``T`` gets the timeline.
"""

from __future__ import annotations

from repro.catalog.catalog import DataSourceCatalog
from repro.engine.context import EngineConfig, ExecutionContext
from repro.engine.iterators import DEFAULT_BATCH_SIZE
from repro.engine.stats import ServerStats, SourceLayerSummary
from repro.network.cache import SourceCache
from repro.plan.fragments import QueryPlan
from repro.plan.physical import OperatorSpec
from repro.server.broker import MemoryBroker
from repro.server.clock import ServerClock
from repro.server.session import QuerySession
from repro.storage.memory import MemoryPool


class QueryServer:
    """Runs N concurrent query sessions over one shared virtual timeline.

    Parameters
    ----------
    catalog:
        The shared data-source catalog (sources, statistics, overlap).
    engine_config:
        Default per-session engine tunables (a submit may override).
    memory_capacity_bytes:
        Server-wide memory capacity enforced by the broker; ``None``
        disables cross-query memory pressure.
    source_cache:
        The cross-session source cache; created automatically (completion-
        based admission, no expiry) when omitted.
    """

    def __init__(
        self,
        catalog: DataSourceCatalog,
        engine_config: EngineConfig | None = None,
        memory_capacity_bytes: int | None = None,
        source_cache: SourceCache | None = None,
        name: str = "server",
    ) -> None:
        self.catalog = catalog
        self.engine_config = engine_config or EngineConfig()
        self.name = name
        self.clock = ServerClock()
        self.broker = MemoryBroker(memory_capacity_bytes, name=f"{name}-broker")
        self.source_cache = source_cache if source_cache is not None else SourceCache()
        self.sessions: dict[str, QuerySession] = {}
        self.scheduler_slices = 0
        self._counter = 0
        #: Speculative source layer: plan-aware prefetching under a revocable
        #: broker lease, enabled by config (off = PR 9 bit-identical).
        self.prefetcher = None
        config = self.engine_config
        if config.speculative_sources and config.prefetch_budget_bytes > 0:
            from repro.server.prefetch import PlanAwarePrefetcher

            self.prefetcher = PlanAwarePrefetcher(self, config.prefetch_budget_bytes)

    # -- admission ----------------------------------------------------------------------

    def _session_context(
        self,
        session_id: str,
        arrival_ms: float | None,
        engine_config: EngineConfig | None,
        columnar: bool | None,
    ) -> ExecutionContext:
        clock = self.clock.session_clock(session_id, start_ms=arrival_ms)
        pool = MemoryPool(name=session_id, broker=self.broker)
        context = ExecutionContext(
            self.catalog,
            clock=clock,
            memory_pool=pool,
            config=engine_config or self.engine_config,
            query_name=session_id,
            source_cache=self.source_cache,
            session_id=session_id,
        )
        if columnar is not None:
            context.columnar = columnar
        return context

    def _next_session_id(self, name: str | None) -> str:
        self._counter += 1
        session_id = name or f"session-{self._counter}"
        if session_id in self.sessions:
            raise ValueError(f"session {session_id!r} already exists")
        return session_id

    def submit(
        self,
        root_spec: OperatorSpec,
        name: str | None = None,
        *,
        result_name: str | None = None,
        batch_size: int | None = DEFAULT_BATCH_SIZE,
        arrival_ms: float | None = None,
        engine_config: EngineConfig | None = None,
        columnar: bool | None = None,
    ) -> QuerySession:
        """Admit a session over a hand-built operator tree.

        ``arrival_ms`` staggers admission on the shared timeline (a user who
        shows up later); it is clamped to the server's causal frontier, so a
        session can never start in the past.
        """
        session_id = self._next_session_id(name)
        context = self._session_context(session_id, arrival_ms, engine_config, columnar)
        session = QuerySession(
            session_id,
            context,
            admission_index=self._counter,
            root_spec=root_spec,
            result_name=result_name,
            batch_size=batch_size,
        )
        self.sessions[session_id] = session
        if self.prefetcher is not None:
            self.prefetcher.observe_spec(root_spec)
        return session

    def submit_plan(
        self,
        plan: QueryPlan,
        name: str | None = None,
        *,
        batch_size: int | None = DEFAULT_BATCH_SIZE,
        arrival_ms: float | None = None,
        engine_config: EngineConfig | None = None,
        columnar: bool | None = None,
    ) -> QuerySession:
        """Admit a session over a full query plan (fragments, rules, events).

        The plan's per-join memory allotments are *negotiated* against the
        broker before execution: under cross-query pressure the session's
        joins start with what the server can actually provide (free capacity
        plus everything revocable) rather than the optimizer's single-tenant
        assumption.
        """
        from repro.optimizer.memory_alloc import negotiate_plan_memory

        session_id = self._next_session_id(name)
        context = self._session_context(session_id, arrival_ms, engine_config, columnar)
        negotiate_plan_memory(plan, self.broker)
        if context.config.validate_plans:
            from repro.analysis.plan_check import check_plan

            # After negotiation every bounded allotment must sit at or above
            # the broker floor — a sub-floor allotment could never be granted.
            check_plan(
                plan,
                self.catalog,
                encoded=context.config.encoded_columns,
                enforce_floor=True,
            )
        session = QuerySession(
            session_id,
            context,
            admission_index=self._counter,
            plan=plan,
            batch_size=batch_size,
        )
        self.sessions[session_id] = session
        if self.prefetcher is not None:
            self.prefetcher.observe_plan(plan)
        return session

    # -- the scheduler loop -------------------------------------------------------------

    def run(self) -> ServerStats:
        """Drive every unfinished session to completion; returns server stats.

        One scheduling decision per quantum: pick the unfinished session
        whose next event is earliest on the shared timeline (ties break by
        admission order) and advance it one step.  Deterministic by
        construction — virtual times and admission order fully decide the
        interleaving.
        """
        while True:
            runnable = [s for s in self.sessions.values() if not s.finished]
            if not runnable:
                break
            session = min(runnable, key=lambda s: (s.next_event_ms, s.admission_index))
            if self.prefetcher is not None:
                # Everything the prefetch stream delivers before the chosen
                # session's next observable moment is published first, so
                # the session steps into an already-causal source layer.
                self.prefetcher.advance(session.next_event_ms)
            session.step()
            self.scheduler_slices += 1
        if self.prefetcher is not None:
            self.prefetcher.quiesce()
        return self.stats()

    def run_serially(self) -> ServerStats:
        """Back-to-back baseline: finish each session before starting the next.

        Uses the same sessions, clocks, broker, and cache — only the
        interleaving differs — so the gap between :meth:`run` and this is
        purely the scheduler's overlap (the benchmark instead compares
        against fully isolated runs, which also removes sharing).
        """
        for session in sorted(self.sessions.values(), key=lambda s: s.admission_index):
            while not session.finished:
                session.step()
                self.scheduler_slices += 1
        return self.stats()

    # -- reporting ----------------------------------------------------------------------

    def stats(self) -> ServerStats:
        """Server-level metrics: per-session summaries plus shared-layer counters."""
        stats = ServerStats(server_name=self.name)
        for session in sorted(self.sessions.values(), key=lambda s: s.admission_index):
            summary = session.summary
            if not session.finished:
                # Snapshot a live session's clock breakdown.
                clock = session.context.clock
                summary.wait_ms = clock.stats.wait_ms
                summary.cpu_ms = clock.stats.cpu_ms
                summary.io_ms = clock.stats.io_ms
            stats.sessions.append(summary)
        stats.scheduler_slices = self.scheduler_slices
        stats.revocations = self.broker.stats.revocations
        stats.bytes_revoked = self.broker.stats.bytes_revoked
        stats.cross_session_cache_hits = self.source_cache.stats.cross_session_hits
        stats.partial_extent_hits = self.source_cache.stats.partial_hits
        stats.speculative_revocations = self.broker.stats.speculative_revocations
        stats.source_queued_ms = sum(
            source.stats.queued_ms for source in self._sources()
        )
        stats.makespan_ms = self.clock.completion_ms
        cache_counters = self.source_cache.per_source_counters
        for source in self._sources():
            counters = cache_counters.get(source.name)
            if counters is None and source.stats.queued_ms == 0.0:
                continue
            summary = SourceLayerSummary(source.name, queued_ms=source.stats.queued_ms)
            if counters is not None:
                summary.cache_hits = counters.hits
                summary.cross_session_hits = counters.cross_session_hits
                summary.partial_hits = counters.partial_hits
            stats.per_source[source.name] = summary
        if self.prefetcher is not None:
            stats.prefetch = self.prefetcher.summary()
        return stats

    def _sources(self):
        return [self.catalog.source(name) for name in self.catalog.source_names]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        done = sum(1 for s in self.sessions.values() if s.finished)
        return (
            f"QueryServer({self.name!r}, sessions={len(self.sessions)}, "
            f"finished={done}, frontier={self.clock.frontier:.2f}ms)"
        )
