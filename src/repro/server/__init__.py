"""The multi-query server subsystem.

Tukwila is a data-integration *server*: many users issue overlapping queries
against the same slow, bursty sources.  This package makes that concurrency a
first-class engine concept:

* :mod:`repro.server.clock` — one shared virtual timeline
  (:class:`ServerClock`) with per-session views (:class:`SessionClock`);
* :mod:`repro.server.broker` — the server-wide :class:`MemoryBroker` that
  turns operator budgets into revocable leases;
* :mod:`repro.server.session` — :class:`QuerySession`, a query as a
  resumable unit of work (yielding at batch/fragment boundaries and on
  source waits);
* :mod:`repro.server.scheduler` — :class:`QueryServer`, the cooperative
  event-driven scheduler plus the shared source layer wiring.
"""

from repro.server.broker import (
    DEFAULT_LEASE_FLOOR_BYTES,
    BrokerStats,
    MemoryBroker,
    RevocationRecord,
)
from repro.server.clock import ServerClock, SessionClock
from repro.server.prefetch import PlanAwarePrefetcher
from repro.server.scheduler import QueryServer
from repro.server.session import QuerySession, SessionStatus

__all__ = [
    "BrokerStats",
    "DEFAULT_LEASE_FLOOR_BYTES",
    "MemoryBroker",
    "PlanAwarePrefetcher",
    "QueryServer",
    "QuerySession",
    "RevocationRecord",
    "ServerClock",
    "SessionClock",
    "SessionStatus",
]
