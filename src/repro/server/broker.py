"""The server-wide memory broker.

Single-query Tukwila divides one fixed pool among a plan's joins (Section
3.1.1).  The multi-query server replaces the fixed pool with a
:class:`MemoryBroker`: every bounded operator budget becomes a *lease*
against the server's total capacity, and admission of a new query can
*revoke* (shrink) existing leases down to a floor.  Revocation triggers the
victim's Section 4.2 overflow resolution immediately (via
:meth:`~repro.storage.memory.MemoryBudget.revoke_to` and the owner's
``on_revoke`` handler — a bucket flush to the encoded columnar spill path),
so reclaimed bytes are real before the new lease is granted.

The broker also aggregates live usage: pools propagate every budget
reserve/release upward, so ``broker.used_bytes`` equals the sum of resident
bytes across every operator of every session — the per-operator
``budget.used == sum(resident_bytes)`` invariant of the spill tests, lifted
server-wide.  The throughput benchmark asserts exactly that equality after
every revocation via the :attr:`on_revocation` observer hook.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.errors import MemoryBudgetError
from repro.storage.memory import MemoryBudget, MemoryPool

#: Smallest lease a revocation will leave behind (matches the optimizer's
#: per-join floor, so a revoked join degenerates to the same minimum the
#: allocator would have granted under a tiny pool).
DEFAULT_LEASE_FLOOR_BYTES = 64 * 1024


@dataclass
class RevocationRecord:
    """One lease shrink applied under cross-query pressure."""

    victim: str
    victim_pool: str
    requestor: str
    taken_bytes: int
    new_limit_bytes: int
    #: True when the victim was a speculative (prefetch) lease — always
    #: revoked ahead of any query lease.
    speculative: bool = False


@dataclass
class BrokerStats:
    """Counters the server reports alongside per-session stats."""

    leases_granted: int = 0
    leases_released: int = 0
    revocations: int = 0
    bytes_revoked: int = 0
    peak_used_bytes: int = 0
    peak_granted_bytes: int = 0
    speculative_leases_granted: int = 0
    speculative_revocations: int = 0
    speculative_bytes_revoked: int = 0


@dataclass
class _Lease:
    budget: MemoryBudget
    size: int
    floor: int
    #: Speculative leases back prefetched cache data: granted only from free
    #: capacity (never by revoking real work), floored at zero, and
    #: victimized first under pressure.
    speculative: bool = False


class MemoryBroker:
    """Grants, tracks, and revokes memory leases across query sessions.

    Parameters
    ----------
    capacity_bytes:
        Server-wide capacity; ``None`` disables enforcement (every lease is
        granted as requested — the single-query behaviour).
    floor_bytes:
        No revocation shrinks a lease below this floor, and no grant under
        pressure returns less than it.  The floor may oversubscribe capacity
        slightly — admitting a query with the minimum workable allotment is
        preferred over refusing it, exactly as the optimizer's allocator
        prefers starving joins over failing the plan.
    """

    def __init__(
        self,
        capacity_bytes: int | None = None,
        name: str = "server",
        floor_bytes: int = DEFAULT_LEASE_FLOOR_BYTES,
    ) -> None:
        if capacity_bytes is not None and capacity_bytes <= 0:
            raise MemoryBudgetError(f"broker capacity must be positive, got {capacity_bytes}")
        self.capacity_bytes = capacity_bytes
        self.name = name
        self.floor_bytes = floor_bytes
        self.stats = BrokerStats()
        self.revocations: list[RevocationRecord] = []
        #: Observer called as ``on_revocation(broker, record)`` after each
        #: lease shrink (and after the victim's overflow resolution ran), the
        #: hook the benchmark uses to assert the server-wide budget invariant
        #: at every revocation point.
        self.on_revocation: Callable[["MemoryBroker", RevocationRecord], None] | None = None
        self._pools: list[MemoryPool] = []
        self._leases: dict[int, _Lease] = {}
        self._granted = 0
        self._used = 0

    # -- registration -------------------------------------------------------------------

    def register_pool(self, pool: MemoryPool) -> None:
        """Attach a session pool (called by ``MemoryPool(broker=...)``)."""
        self._pools.append(pool)

    @property
    def pools(self) -> list[MemoryPool]:
        return list(self._pools)

    # -- accounting ---------------------------------------------------------------------

    @property
    def granted_bytes(self) -> int:
        """Sum of all outstanding lease sizes."""
        return self._granted

    @property
    def used_bytes(self) -> int:
        """Live reserved bytes across every budget of every registered pool."""
        return self._used

    @property
    def available_bytes(self) -> int | None:
        if self.capacity_bytes is None:
            return None
        return max(0, self.capacity_bytes - self._granted)

    def note_reserve(self, nbytes: int) -> None:
        self._used += nbytes
        if self._used > self.stats.peak_used_bytes:
            self.stats.peak_used_bytes = self._used

    def note_release(self, nbytes: int) -> None:
        self._used = max(0, self._used - nbytes)

    # -- leases -------------------------------------------------------------------------

    def lease(self, budget: MemoryBudget, nbytes: int, speculative: bool = False) -> int:
        """Lease up to ``nbytes`` for ``budget``; returns the granted size.

        Under pressure the broker first revokes what it can from other
        leases (largest first, down to their floors); whatever capacity that
        frees bounds the grant, but never below the floor.

        A ``speculative`` lease (the prefetcher's) inverts every one of
        those courtesies: it is granted only from capacity that is free
        right now — revoking real work to make room for speculation is never
        allowed — its floor is zero, and it is the first lease revocation
        victimizes.  The grant may therefore be zero.
        """
        if nbytes <= 0:
            raise MemoryBudgetError(f"lease must be positive, got {nbytes}")
        granted = nbytes
        floor = 0 if speculative else min(nbytes, self.floor_bytes)
        if self.capacity_bytes is not None:
            available = self.capacity_bytes - self._granted
            if speculative:
                granted = max(0, min(nbytes, available))
            elif available < nbytes:
                available += self._revoke_for(nbytes - available, requestor=budget.name)
                # Never grant more than was requested: the floor of a small
                # request is the request itself, not the server-wide floor.
                granted = max(floor, min(nbytes, available))
        self._leases[id(budget)] = _Lease(budget, granted, floor, speculative)
        self._granted += granted
        self.stats.leases_granted += 1
        if speculative:
            self.stats.speculative_leases_granted += 1
        if self._granted > self.stats.peak_granted_bytes:
            self.stats.peak_granted_bytes = self._granted
        return granted

    def release_lease(self, budget: MemoryBudget) -> None:
        """Return a budget's lease to the pool of free capacity (no-op if unleased)."""
        lease = self._leases.pop(id(budget), None)
        if lease is not None:
            self._granted = max(0, self._granted - lease.size)
            self.stats.leases_released += 1

    def resize_lease(self, budget: MemoryBudget, new_size: int) -> int:
        """Renegotiate one lease (the ``alter memory allotment`` rule action).

        Shrinks take effect verbatim; growth is bounded by what the broker
        can free, so the returned size may be less than requested.
        """
        lease = self._leases.get(id(budget))
        if lease is None:
            return new_size
        delta = new_size - lease.size
        if delta <= 0:
            lease.size = new_size
            self._granted = max(0, self._granted + delta)
            return new_size
        if self.capacity_bytes is not None:
            available = self.capacity_bytes - self._granted
            if available < delta:
                available += self._revoke_for(
                    delta - available, requestor=budget.name, exclude=budget
                )
            delta = max(0, min(delta, available))
        lease.size += delta
        self._granted += delta
        if self._granted > self.stats.peak_granted_bytes:
            self.stats.peak_granted_bytes = self._granted
        return lease.size

    def attainable_bytes(self, demand_bytes: int, floor_bytes: int = 0) -> int:
        """How much a new lease of ``demand_bytes`` could get right now.

        A dry run of :meth:`lease` — counts free capacity plus everything
        revocable — used by the optimizer's allocation step to *negotiate*
        a plan's memory before the grants happen (no lease is taken and no
        revocation is performed here).
        """
        if self.capacity_bytes is None:
            return demand_bytes
        available = self.capacity_bytes - self._granted
        revocable = sum(
            max(0, lease.size - lease.floor) for lease in self._leases.values()
        )
        return max(floor_bytes, min(demand_bytes, available + revocable))

    # -- revocation ---------------------------------------------------------------------

    def _revoke_for(
        self, needed_bytes: int, requestor: str, exclude: MemoryBudget | None = None
    ) -> int:
        """Shrink existing leases (largest headroom first) to free ``needed_bytes``.

        Each victim's budget is shrunk via
        :meth:`~repro.storage.memory.MemoryBudget.revoke_to`, which runs the
        owner's overflow resolution when usage exceeds the new limit — the
        Section 4.2 machinery fires mid-build, in the victim's own virtual
        time.  ``exclude`` protects the requestor's own lease during a
        growth renegotiation (self-revocation would spill the requestor's
        buckets only to hand the bytes straight back).  Returns the bytes
        actually freed.

        Speculative leases are victimized *first* — all of them, down to
        zero, before any query lease loses a byte — so speculation can never
        evict real work; among leases of the same class the largest headroom
        goes first.
        """
        freed = 0
        while freed < needed_bytes:
            victim = None
            best_key = (False, 0)
            for lease in self._leases.values():
                if exclude is not None and lease.budget is exclude:
                    continue
                slack = lease.size - lease.floor
                if slack <= 0:
                    continue
                key = (lease.speculative, slack)
                if victim is None or key > best_key:
                    victim, best_key = lease, key
            if victim is None:
                break
            headroom = best_key[1]
            take = min(headroom, needed_bytes - freed)
            victim.size -= take
            self._granted -= take
            freed += take
            record = RevocationRecord(
                victim=victim.budget.name,
                victim_pool=victim.budget.pool.name if victim.budget.pool else "",
                requestor=requestor,
                taken_bytes=take,
                new_limit_bytes=victim.size,
                speculative=victim.speculative,
            )
            # The shrink below may flush buckets / spill key sets in the
            # victim's context before control returns here.
            victim.budget.revoke_to(victim.size)
            self.revocations.append(record)
            self.stats.revocations += 1
            self.stats.bytes_revoked += take
            if victim.speculative:
                self.stats.speculative_revocations += 1
                self.stats.speculative_bytes_revoked += take
            if self.on_revocation is not None:
                self.on_revocation(self, record)
        return freed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        cap = "unbounded" if self.capacity_bytes is None else f"{self.capacity_bytes}B"
        return (
            f"MemoryBroker({self.name!r}, granted={self._granted}B, "
            f"used={self._used}B, capacity={cap})"
        )
