"""The mediated schema: the virtual relations users query against.

A :class:`MediatedSchema` names a set of virtual relations and their
attributes.  Relations are *virtual* — their extensions live only at the data
sources; the reformulator maps mediated relations to source relations using
the catalog's source descriptions.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import QueryError, SchemaError
from repro.storage.schema import Schema


@dataclass(frozen=True)
class MediatedRelation:
    """One virtual relation in the mediated schema."""

    name: str
    schema: Schema
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("mediated relation name must be non-empty")

    @property
    def attribute_names(self) -> tuple[str, ...]:
        return tuple(a.base_name for a in self.schema)


class MediatedSchema:
    """A collection of mediated (virtual) relations."""

    def __init__(self, relations: list[MediatedRelation] | None = None) -> None:
        self._relations: dict[str, MediatedRelation] = {}
        for relation in relations or []:
            self.add(relation)

    def add(self, relation: MediatedRelation) -> None:
        """Register a relation; re-registering an existing name is an error."""
        if relation.name in self._relations:
            raise SchemaError(f"mediated relation {relation.name!r} already defined")
        self._relations[relation.name] = relation

    def add_relation(self, name: str, schema: Schema, description: str = "") -> MediatedRelation:
        """Convenience: build and register a relation in one step."""
        relation = MediatedRelation(name, schema, description)
        self.add(relation)
        return relation

    def get(self, name: str) -> MediatedRelation:
        try:
            return self._relations[name]
        except KeyError:
            raise QueryError(f"unknown mediated relation {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._relations

    def __len__(self) -> int:
        return len(self._relations)

    @property
    def relation_names(self) -> list[str]:
        return sorted(self._relations)

    def validate_query_relations(self, relations: list[str] | tuple[str, ...]) -> None:
        """Raise :class:`QueryError` if any relation is not in the schema."""
        missing = [r for r in relations if r not in self._relations]
        if missing:
            raise QueryError(
                f"query references relations not in the mediated schema: {missing}"
            )

    @classmethod
    def from_relations(cls, schemas: dict[str, Schema]) -> "MediatedSchema":
        """Build a mediated schema from a name -> schema mapping."""
        mediated = cls()
        for name, schema in schemas.items():
            mediated.add_relation(name, schema)
        return mediated
