"""Query model: mediated schema, conjunctive queries, parsing, reformulation."""

from repro.query.conjunctive import (
    COMPARATORS,
    ConjunctiveQuery,
    JoinPredicate,
    SelectionPredicate,
)
from repro.query.mediated import MediatedRelation, MediatedSchema
from repro.query.parser import parse_query
from repro.query.reformulation import (
    DisjunctiveLeaf,
    LeafAlternative,
    ReformulatedQuery,
    Reformulator,
)

__all__ = [
    "COMPARATORS",
    "ConjunctiveQuery",
    "DisjunctiveLeaf",
    "JoinPredicate",
    "LeafAlternative",
    "MediatedRelation",
    "MediatedSchema",
    "ReformulatedQuery",
    "Reformulator",
    "SelectionPredicate",
    "parse_query",
]
