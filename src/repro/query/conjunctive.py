"""Conjunctive (select-project-join) queries over the mediated schema.

Tukwila restricts its discussion to conjunctive queries, possibly with
*disjunction at the leaves* introduced by the reformulator (a leaf may be
answered by any of several overlapping sources).  This module defines the
query representation used throughout the optimizer and execution engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable

from repro.errors import QueryError

#: Comparison operators supported in selection predicates.
COMPARATORS: dict[str, Callable[[Any, Any], bool]] = {
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


@dataclass(frozen=True)
class JoinPredicate:
    """An equi-join predicate ``left_table.left_attr = right_table.right_attr``."""

    left_table: str
    left_attr: str
    right_table: str
    right_attr: str

    def __post_init__(self) -> None:
        if self.left_table == self.right_table:
            raise QueryError(
                f"join predicate must reference two distinct relations, got "
                f"{self.left_table!r} on both sides"
            )

    @property
    def left_qualified(self) -> str:
        return f"{self.left_table}.{self.left_attr}"

    @property
    def right_qualified(self) -> str:
        return f"{self.right_table}.{self.right_attr}"

    def tables(self) -> frozenset[str]:
        return frozenset((self.left_table, self.right_table))

    def involves(self, table: str) -> bool:
        return table in (self.left_table, self.right_table)

    def oriented(self, left_first: str) -> "JoinPredicate":
        """Return a copy with ``left_first`` as the left table."""
        if left_first == self.left_table:
            return self
        if left_first == self.right_table:
            return JoinPredicate(
                self.right_table, self.right_attr, self.left_table, self.left_attr
            )
        raise QueryError(f"{left_first!r} is not part of predicate {self}")

    def __str__(self) -> str:
        return f"{self.left_qualified} = {self.right_qualified}"


@dataclass(frozen=True)
class SelectionPredicate:
    """A single-table comparison ``table.attr <op> value``."""

    table: str
    attr: str
    op: str
    value: Any

    def __post_init__(self) -> None:
        if self.op not in COMPARATORS:
            raise QueryError(
                f"unsupported comparator {self.op!r}; expected one of {sorted(COMPARATORS)}"
            )

    @property
    def qualified(self) -> str:
        return f"{self.table}.{self.attr}"

    def evaluate(self, value: Any) -> bool:
        """Apply the comparison to a concrete attribute value."""
        return COMPARATORS[self.op](value, self.value)

    def __str__(self) -> str:
        return f"{self.qualified} {self.op} {self.value!r}"


@dataclass(frozen=True)
class ConjunctiveQuery:
    """A select-project-join query over mediated relations.

    Parameters
    ----------
    name:
        Identifier used in plans, logs, and reports.
    relations:
        Mediated relation names referenced by the query.
    join_predicates:
        Equi-join predicates connecting the relations.
    selections:
        Single-table filters.
    projection:
        Output attribute names (qualified); empty means ``SELECT *``.
    """

    name: str
    relations: tuple[str, ...] | list[str]
    join_predicates: tuple[JoinPredicate, ...] | list[JoinPredicate] = field(
        default_factory=tuple
    )
    selections: tuple[SelectionPredicate, ...] | list[SelectionPredicate] = field(
        default_factory=tuple
    )
    projection: tuple[str, ...] | list[str] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        relations = tuple(self.relations)
        if not relations:
            raise QueryError("a conjunctive query must reference at least one relation")
        if len(set(relations)) != len(relations):
            raise QueryError(f"duplicate relations in query {self.name!r}: {relations}")
        object.__setattr__(self, "relations", relations)
        object.__setattr__(self, "join_predicates", tuple(self.join_predicates))
        object.__setattr__(self, "selections", tuple(self.selections))
        object.__setattr__(self, "projection", tuple(self.projection))
        for pred in self.join_predicates:
            missing = pred.tables() - set(relations)
            if missing:
                raise QueryError(
                    f"join predicate {pred} references relations {sorted(missing)} "
                    f"not listed in query {self.name!r}"
                )
        for sel in self.selections:
            if sel.table not in relations:
                raise QueryError(
                    f"selection {sel} references relation {sel.table!r} not in query"
                )

    # -- structure -------------------------------------------------------------

    @property
    def is_join_query(self) -> bool:
        return len(self.relations) > 1

    def predicates_between(self, left: Iterable[str], right: Iterable[str]) -> list[JoinPredicate]:
        """Join predicates with one side in ``left`` and the other in ``right``."""
        left_set, right_set = set(left), set(right)
        out = []
        for pred in self.join_predicates:
            if pred.left_table in left_set and pred.right_table in right_set:
                out.append(pred)
            elif pred.left_table in right_set and pred.right_table in left_set:
                out.append(pred.oriented(next(iter(pred.tables() & left_set))))
        return out

    def selections_on(self, table: str) -> list[SelectionPredicate]:
        """Selections that apply to ``table``."""
        return [sel for sel in self.selections if sel.table == table]

    def join_connected(self) -> bool:
        """True when the join graph over the query's relations is connected."""
        if len(self.relations) <= 1:
            return True
        seen = {self.relations[0]}
        frontier = [self.relations[0]]
        while frontier:
            current = frontier.pop()
            for pred in self.join_predicates:
                if pred.involves(current):
                    for other in pred.tables() - {current}:
                        if other not in seen:
                            seen.add(other)
                            frontier.append(other)
        return seen == set(self.relations)

    def subquery(self, relations: Iterable[str], name: str | None = None) -> "ConjunctiveQuery":
        """Restriction of this query to a subset of its relations."""
        keep = [r for r in self.relations if r in set(relations)]
        if not keep:
            raise QueryError("subquery must keep at least one relation")
        keep_set = set(keep)
        return ConjunctiveQuery(
            name=name or f"{self.name}[{','.join(keep)}]",
            relations=keep,
            join_predicates=[p for p in self.join_predicates if p.tables() <= keep_set],
            selections=[s for s in self.selections if s.table in keep_set],
            projection=(),
        )

    def __str__(self) -> str:
        parts = [f"SELECT {', '.join(self.projection) if self.projection else '*'}"]
        parts.append(f"FROM {', '.join(self.relations)}")
        conditions = [str(p) for p in self.join_predicates] + [str(s) for s in self.selections]
        if conditions:
            parts.append("WHERE " + " AND ".join(conditions))
        return " ".join(parts)
