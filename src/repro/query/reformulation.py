"""Query reformulation: mediated queries to source-level queries.

The reformulator rewrites a conjunctive query over the mediated schema into a
query over the data sources.  In this reproduction (matching the paper's
scope), the output is a single conjunctive query whose *leaves* may be
disjunctive: each mediated relation is replaced by the set of sources that
can supply it.  Leaves with more than one alternative are later turned into
dynamic collector operators by the optimizer.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.catalog.catalog import DataSourceCatalog
from repro.errors import ReformulationError
from repro.query.conjunctive import ConjunctiveQuery


@dataclass(frozen=True)
class LeafAlternative:
    """One way of obtaining a mediated relation: a specific source."""

    source_name: str
    complete: bool
    coverage: float


@dataclass(frozen=True)
class DisjunctiveLeaf:
    """A mediated relation together with all sources that can supply it.

    ``alternatives`` is ordered: complete sources first, then by coverage
    (descending), then by estimated access cost.  The first alternative is
    the *primary* source the optimizer plans against.
    """

    mediated_relation: str
    alternatives: tuple[LeafAlternative, ...]

    def __post_init__(self) -> None:
        if not self.alternatives:
            raise ReformulationError(
                f"no sources available for mediated relation {self.mediated_relation!r}"
            )

    @property
    def primary(self) -> LeafAlternative:
        return self.alternatives[0]

    @property
    def is_disjunctive(self) -> bool:
        return len(self.alternatives) > 1

    @property
    def source_names(self) -> list[str]:
        return [alt.source_name for alt in self.alternatives]


@dataclass(frozen=True)
class ReformulatedQuery:
    """The reformulator's output: the original query plus its leaves."""

    query: ConjunctiveQuery
    leaves: dict[str, DisjunctiveLeaf] = field(default_factory=dict)

    def leaf(self, mediated_relation: str) -> DisjunctiveLeaf:
        try:
            return self.leaves[mediated_relation]
        except KeyError:
            raise ReformulationError(
                f"query {self.query.name!r} has no leaf for {mediated_relation!r}"
            ) from None

    @property
    def disjunctive_relations(self) -> list[str]:
        """Mediated relations answered by more than one source."""
        return sorted(r for r, leaf in self.leaves.items() if leaf.is_disjunctive)

    @property
    def all_source_names(self) -> list[str]:
        out: set[str] = set()
        for leaf in self.leaves.values():
            out.update(leaf.source_names)
        return sorted(out)


class Reformulator:
    """Rewrites mediated queries into source-level queries using the catalog."""

    def __init__(self, catalog: DataSourceCatalog) -> None:
        self.catalog = catalog

    def _rank_alternatives(self, relation: str, source_names: list[str]) -> list[LeafAlternative]:
        alternatives = []
        for name in source_names:
            description = self.catalog.description(name)
            alternatives.append(
                LeafAlternative(
                    source_name=name,
                    complete=description.complete,
                    coverage=description.coverage,
                )
            )
        stats = self.catalog.statistics

        def sort_key(alt: LeafAlternative):
            access_cost = stats.source(alt.source_name).access_cost_ms
            return (
                0 if alt.complete else 1,
                -alt.coverage,
                access_cost if access_cost is not None else float("inf"),
                alt.source_name,
            )

        return sorted(alternatives, key=sort_key)

    def reformulate(self, query: ConjunctiveQuery) -> ReformulatedQuery:
        """Map every relation in ``query`` to its candidate sources.

        Raises
        ------
        ReformulationError
            If any mediated relation has no registered source.
        """
        leaves: dict[str, DisjunctiveLeaf] = {}
        for relation in query.relations:
            source_names = self.catalog.sources_for_relation(relation)
            if not source_names:
                raise ReformulationError(
                    f"no data source provides mediated relation {relation!r} "
                    f"(query {query.name!r})"
                )
            alternatives = self._rank_alternatives(relation, source_names)
            leaves[relation] = DisjunctiveLeaf(relation, tuple(alternatives))
        return ReformulatedQuery(query=query, leaves=leaves)
