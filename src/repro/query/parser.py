"""A small SQL-ish parser for conjunctive queries.

The paper's example query is plain SQL::

    Select * from A,B,C,D,E
    where A.ssn = B.ssn and B.ssn = C.ssn and ...

This parser accepts that subset — ``SELECT <projection> FROM <relations>
WHERE <conjunction of equality/comparison predicates>`` — and produces a
:class:`~repro.query.conjunctive.ConjunctiveQuery`.  It exists so examples
and tests can state queries readably; programmatic construction remains the
primary API.
"""

from __future__ import annotations

import re
from typing import Any

from repro.errors import QueryError
from repro.query.conjunctive import (
    COMPARATORS,
    ConjunctiveQuery,
    JoinPredicate,
    SelectionPredicate,
)

_QUERY_RE = re.compile(
    r"^\s*select\s+(?P<projection>.+?)\s+from\s+(?P<relations>.+?)"
    r"(?:\s+where\s+(?P<where>.+?))?\s*;?\s*$",
    re.IGNORECASE | re.DOTALL,
)

# Longest operators first so '<=' is not tokenized as '<'.
_OPS = sorted(COMPARATORS, key=len, reverse=True)
_CONDITION_RE = re.compile(
    r"^\s*(?P<left>[\w.]+)\s*(?P<op>" + "|".join(re.escape(op) for op in _OPS) + r")\s*(?P<right>.+?)\s*$"
)


def _parse_literal(text: str) -> Any:
    """Interpret a literal token: quoted string, int, or float."""
    text = text.strip()
    if len(text) >= 2 and text[0] == text[-1] and text[0] in ("'", '"'):
        return text[1:-1]
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    raise QueryError(f"cannot interpret literal {text!r} (quote strings)")


def _split_qualified(token: str) -> tuple[str, str]:
    if "." not in token:
        raise QueryError(
            f"attribute {token!r} must be qualified as relation.attribute"
        )
    table, _, attr = token.partition(".")
    return table, attr


def parse_query(sql: str, name: str = "query") -> ConjunctiveQuery:
    """Parse an SPJ query string into a :class:`ConjunctiveQuery`.

    Raises
    ------
    QueryError
        On any syntax the restricted grammar does not cover.
    """
    match = _QUERY_RE.match(sql)
    if not match:
        raise QueryError(f"cannot parse query: {sql!r}")

    projection_text = match.group("projection").strip()
    projection: tuple[str, ...]
    if projection_text == "*":
        projection = ()
    else:
        projection = tuple(token.strip() for token in projection_text.split(","))
        for attr in projection:
            _split_qualified(attr)

    relations = tuple(token.strip() for token in match.group("relations").split(","))
    if any(not re.fullmatch(r"\w+", rel) for rel in relations):
        raise QueryError(f"malformed relation list: {match.group('relations')!r}")

    join_predicates: list[JoinPredicate] = []
    selections: list[SelectionPredicate] = []
    where = match.group("where")
    if where:
        conditions = re.split(r"\s+and\s+", where, flags=re.IGNORECASE)
        for condition in conditions:
            cond_match = _CONDITION_RE.match(condition)
            if not cond_match:
                raise QueryError(f"cannot parse condition {condition!r}")
            left = cond_match.group("left")
            op = cond_match.group("op")
            right = cond_match.group("right").strip()
            left_table, left_attr = _split_qualified(left)
            is_attribute_ref = re.fullmatch(r"[A-Za-z_]\w*\.[A-Za-z_]\w*", right) is not None
            if is_attribute_ref:
                if op != "=":
                    raise QueryError(
                        f"only equi-joins are supported between attributes: {condition!r}"
                    )
                right_table, right_attr = _split_qualified(right)
                join_predicates.append(
                    JoinPredicate(left_table, left_attr, right_table, right_attr)
                )
            else:
                selections.append(
                    SelectionPredicate(left_table, left_attr, op, _parse_literal(right))
                )

    return ConjunctiveQuery(
        name=name,
        relations=relations,
        join_predicates=join_predicates,
        selections=selections,
        projection=projection,
    )
