"""Wrappers: the engine's interface to data sources.

In Tukwila, wrappers hide source-specific protocols and feed tuples to the
execution engine, optionally buffering.  Here a :class:`Wrapper` adapts a
:class:`~repro.network.source.DataSource` connection into the streaming
interface used by scan operators: ``open`` / ``next_arrival`` / ``fetch`` /
``close``, plus timeout detection relative to the query's virtual clock.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SourceTimeoutError, SourceUnavailableError
from repro.network.simclock import SimClock
from repro.network.source import DataSource, SourceConnection
from repro.storage.batch import typed_transpose
from repro.storage.schema import Schema
from repro.storage.tuples import Row


@dataclass
class WrapperStats:
    """Counters kept by each wrapper during a query."""

    tuples_fetched: int = 0
    time_of_first_tuple: float | None = None
    time_of_last_tuple: float | None = None
    timeouts: int = 0
    errors: int = 0


class Wrapper:
    """Streams tuples from one data source into the execution engine.

    Parameters
    ----------
    source:
        The data source being wrapped.
    clock:
        The query's virtual clock; fetching a tuple advances it to the
        tuple's arrival time plus a small per-tuple translation cost.
    timeout_ms:
        If the next tuple's arrival lies more than this far beyond the
        current virtual time, :meth:`fetch` raises :class:`SourceTimeoutError`
        instead of stalling, which is what raises the engine's timeout event.
    per_tuple_cpu_ms:
        CPU cost to translate one tuple from the source format (XML parsing
        and Unicode conversion in the original system).
    encoded_columns:
        When true, :meth:`fetch_columns` dictionary-encodes string columns
        into *wrapper-owned* dictionaries that persist across blocks, so
        every batch from one source shares codes (and every occurrence of a
        value decodes to one canonical string object).
    """

    def __init__(
        self,
        source: DataSource,
        clock: SimClock,
        timeout_ms: float | None = None,
        per_tuple_cpu_ms: float = 0.002,
        encoded_columns: bool = True,
    ) -> None:
        self.source = source
        self.clock = clock
        self.timeout_ms = timeout_ms
        self.per_tuple_cpu_ms = per_tuple_cpu_ms
        self.encoded_columns = encoded_columns
        self.stats = WrapperStats()
        self._connection: SourceConnection | None = None
        self._dictionaries = None

    # -- lifecycle ---------------------------------------------------------------

    @property
    def name(self) -> str:
        return self.source.name

    @property
    def schema(self) -> Schema:
        return self.source.exported_schema

    @property
    def is_open(self) -> bool:
        return self._connection is not None and not self._connection.closed

    def open(self, start_row: int = 0) -> None:
        """Open the source connection at the current virtual time.

        ``start_row`` re-requests the export from an offset — a reader that
        consumed a cached prefix fetching only the tail.
        """
        self._connection = self.source.open(at_ms=self.clock.now, start_row=start_row)

    def close(self) -> None:
        """Close the connection; further fetches raise.

        The close is stamped with the clock's current virtual time so a
        concurrency-bounded source can free the connection slot for queued
        sessions as soon as this reader abandons the stream.
        """
        if self._connection is not None:
            self._connection.close(at_ms=self.clock.now)

    def reset(self) -> None:
        """Drop the connection so the wrapper can be reopened (rescheduling)."""
        self.close()
        self._connection = None

    # -- streaming ---------------------------------------------------------------

    def _require_connection(self) -> SourceConnection:
        if self._connection is None or self._connection.closed:
            raise SourceUnavailableError(f"wrapper {self.name!r} is not open")
        return self._connection

    @property
    def exhausted(self) -> bool:
        """True once the source has delivered every tuple."""
        if self._connection is None:
            return False
        return self._connection.exhausted

    def next_arrival(self) -> float | None:
        """Arrival time of the next tuple (``inf`` for dead sources, ``None`` at EOF)."""
        return self._require_connection().next_arrival()

    def peek_next_arrival(self) -> float | None:
        """Like :meth:`next_arrival` but ``None`` instead of raising when not open.

        Side-effect free; partial-extent followers forward this through
        ``peek_arrival`` so the scheduler sees the live stream's next block.
        """
        if self._connection is None or self._connection.closed:
            return None
        return self._connection.next_arrival()

    def would_timeout(self) -> bool:
        """True when waiting for the next tuple would exceed the timeout."""
        if self.timeout_ms is None:
            return False
        arrival = self.next_arrival()
        if arrival is None:
            return False
        return arrival - self.clock.now > self.timeout_ms

    def fetch(self) -> Row | None:
        """Fetch the next tuple, advancing the virtual clock to its arrival.

        Returns ``None`` at end of stream.

        Raises
        ------
        SourceTimeoutError
            If the wait for the next tuple exceeds ``timeout_ms``.
        SourceUnavailableError
            If the source fails mid-transfer or the wrapper is not open.
        """
        connection = self._require_connection()
        arrival = connection.next_arrival()
        if arrival is None:
            return None
        if self.timeout_ms is not None and arrival - self.clock.now > self.timeout_ms:
            self.stats.timeouts += 1
            # The engine observed a timeout: virtual time has passed while
            # waiting for the source before giving up.
            self.clock.advance_to(self.clock.now + self.timeout_ms)
            raise SourceTimeoutError(
                f"source {self.name!r} did not respond within {self.timeout_ms} ms"
            )
        try:
            row, arrival = connection.fetch()
        except SourceUnavailableError:
            self.stats.errors += 1
            raise
        self.clock.advance_to(arrival)
        self.clock.consume_cpu(self.per_tuple_cpu_ms)
        self.stats.tuples_fetched += 1
        if self.stats.time_of_first_tuple is None:
            self.stats.time_of_first_tuple = self.clock.now
        self.stats.time_of_last_tuple = self.clock.now
        return row.with_arrival(self.clock.now)

    def fetch_batch(self, max_rows: int, arrival_bound: float | None = None) -> list[Row]:
        """Bulk fetch: up to ``max_rows`` tuples arriving before ``arrival_bound``.

        Never raises: the block stops *before* any tuple that would time out,
        fail, or land at/after the bound, and returns what it has (possibly
        nothing).  The per-tuple :meth:`fetch` surfaces errors with their
        exact semantics on the caller's next pull.  Clock accounting and the
        rows' arrival stamps are identical to fetching the same tuples one at
        a time.
        """
        if self._connection is None or self._connection.closed:
            return []
        now = self.clock.now
        limit = now + self.timeout_ms if self.timeout_ms is not None else None
        rows, arrivals = self._connection.fetch_block(
            max_rows, arrival_bound=arrival_bound, arrival_limit=limit
        )
        if not rows:
            return []
        cpu = self.per_tuple_cpu_ms
        wait_total = 0.0
        make = Row.make
        out: list[Row] = []
        append = out.append
        for row, arrival in zip(rows, arrivals):
            if arrival > now:
                wait_total += arrival - now
                now = arrival
            now += cpu
            append(make(row.schema, row.values, now))
        self.clock.charge(wait_total, cpu * len(out))
        stats = self.stats
        stats.tuples_fetched += len(out)
        if stats.time_of_first_tuple is None:
            stats.time_of_first_tuple = out[0].arrival
        stats.time_of_last_tuple = now
        return out

    def column_dictionaries(self):
        """The source's persistent per-column dictionaries (``None`` unencoded).

        Shared with scan operators so columns built on the per-tuple
        fallback path stay code-compatible with block fetches, and shared
        across wrappers of one source (the dictionaries belong to the
        source's one-time translation cache).
        """
        if not self.encoded_columns:
            return None
        if self._dictionaries is None:
            self._dictionaries = self.source.encoded_column_cache()[1]
        return self._dictionaries

    def fetch_columns(
        self, max_rows: int, arrival_bound: float | None = None
    ) -> tuple[list[list], list[float]] | None:
        """Columnar bulk fetch: ``(columns, arrival_stamps)`` or ``None``.

        The block semantics, clock accounting, and arrival stamps are
        identical to :meth:`fetch_batch`; the difference is pure
        representation — values are transposed into one list per attribute
        and no :class:`Row` objects are created.  ``None`` (the empty block)
        means end of stream, bound reached, or a tuple that would fail or
        time out; callers fall back to :meth:`fetch` for exact semantics.
        """
        connection = self._connection
        if connection is None or connection.closed:
            return None
        now = self.clock.now
        limit = now + self.timeout_ms if self.timeout_ms is not None else None
        start = connection.base_row + connection.delivered
        rows, arrivals = connection.fetch_block(
            max_rows, arrival_bound=arrival_bound, arrival_limit=limit
        )
        if not rows:
            return None
        cpu = self.per_tuple_cpu_ms
        wait_total = 0.0
        stamped: list[float] = []
        append = stamped.append
        for arrival in arrivals:
            if arrival > now:
                wait_total += arrival - now
                now = arrival
            now += cpu
            append(now)
        self.clock.charge(wait_total, cpu * len(rows))
        if self.encoded_columns:
            # The block is a pair of C-level slices over the source's
            # one-time encoded translation cache (connections deliver rows
            # sequentially); dict-encoded slices share the source
            # dictionaries, so downstream consumers move codes.
            cached, _ = self.source.encoded_column_cache()
            stop = start + len(rows)
            columns = [column[start:stop] for column in cached]
        else:
            # Typed struct-of-arrays build: numeric attributes land in packed
            # array('q')/array('d') buffers straight off the fetched block.
            columns = typed_transpose(self.schema, rows)
        stats = self.stats
        stats.tuples_fetched += len(rows)
        if stats.time_of_first_tuple is None:
            stats.time_of_first_tuple = stamped[0]
        stats.time_of_last_tuple = now
        return columns, stamped

    def fetch_available(self) -> Row | None:
        """Fetch the next tuple only if it has already arrived; else ``None``.

        Used by data-driven operators that poll multiple wrappers and only
        want to consume from whichever has data ready.
        """
        connection = self._require_connection()
        arrival = connection.next_arrival()
        if arrival is None or arrival > self.clock.now:
            return None
        return self.fetch()
