"""Network profiles: arrival-timing models for simulated data sources.

A :class:`NetworkProfile` captures everything that determines *when* tuples
from a source become available to the execution engine: connection setup
latency, sustained bandwidth, burstiness, jitter, and failure behaviour.
Canned profiles mirror the two environments used in the paper's evaluation:

* :func:`lan` — the 10 Mbps Ethernet between the DB2 server and the engine.
* :func:`wide_area` — the trans-Atlantic echo-server link the authors measured
  at roughly 82.1 KB/s bandwidth and 145 ms round-trip time.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace


@dataclass(frozen=True)
class NetworkProfile:
    """Timing and reliability model for one source connection.

    Parameters
    ----------
    name:
        Human-readable label used in reports.
    initial_latency_ms:
        Delay between opening the connection and the first byte arriving
        (connection setup + query startup at the source).
    bandwidth_kbps:
        Sustained transfer rate in kilobytes per second.
    burst_size:
        Tuples delivered back-to-back once a burst begins; ``0`` disables
        burst modelling (smooth arrivals at the bandwidth rate).
    burst_gap_ms:
        Idle time between bursts.
    jitter_ms:
        Uniform random jitter added to each tuple's arrival (seeded).
    drop_after_tuples:
        If set, the source fails (raises) after sending this many tuples.
    unavailable:
        If true, the source never responds (used for timeout experiments).
    seed:
        Seed for the jitter generator, so arrival schedules are reproducible.
    """

    name: str = "default"
    initial_latency_ms: float = 5.0
    bandwidth_kbps: float = 1250.0
    burst_size: int = 0
    burst_gap_ms: float = 0.0
    jitter_ms: float = 0.0
    drop_after_tuples: int | None = None
    unavailable: bool = False
    seed: int = 0

    def transfer_ms(self, nbytes: int) -> float:
        """Time to push ``nbytes`` through the link at the sustained rate."""
        if self.bandwidth_kbps <= 0:
            raise ValueError(f"bandwidth must be positive, got {self.bandwidth_kbps}")
        return nbytes / (self.bandwidth_kbps * 1024.0 / 1000.0)

    def with_overrides(self, **kwargs) -> "NetworkProfile":
        """Copy with selected fields replaced."""
        return replace(self, **kwargs)

    def arrival_schedule(self, tuple_sizes: list[int], start_ms: float = 0.0) -> list[float]:
        """Arrival timestamps for a sequence of tuples of the given sizes.

        The schedule is deterministic given the profile's seed.
        """
        rng = random.Random(self.seed)
        arrivals: list[float] = []
        clock = start_ms + self.initial_latency_ms
        in_burst = 0
        for size in tuple_sizes:
            clock += self.transfer_ms(size)
            if self.burst_size > 0:
                in_burst += 1
                if in_burst >= self.burst_size:
                    clock += self.burst_gap_ms
                    in_burst = 0
            jitter = rng.uniform(0.0, self.jitter_ms) if self.jitter_ms > 0 else 0.0
            arrivals.append(clock + jitter)
        return arrivals


def lan(**overrides) -> NetworkProfile:
    """10 Mbps LAN between wrapper and engine (the paper's local setup)."""
    profile = NetworkProfile(
        name="lan",
        initial_latency_ms=5.0,
        bandwidth_kbps=1250.0,  # 10 Mbps
        jitter_ms=0.0,
    )
    return profile.with_overrides(**overrides) if overrides else profile


def wide_area(**overrides) -> NetworkProfile:
    """Trans-Atlantic link: ~82.1 KB/s bandwidth, ~145 ms round trip."""
    profile = NetworkProfile(
        name="wide-area",
        initial_latency_ms=145.0,
        bandwidth_kbps=82.1,
        jitter_ms=10.0,
    )
    return profile.with_overrides(**overrides) if overrides else profile


def bursty(**overrides) -> NetworkProfile:
    """Bursty arrivals: batches separated by idle gaps (Section 1.1)."""
    profile = NetworkProfile(
        name="bursty",
        initial_latency_ms=250.0,
        bandwidth_kbps=400.0,
        burst_size=200,
        burst_gap_ms=400.0,
        jitter_ms=5.0,
    )
    return profile.with_overrides(**overrides) if overrides else profile


def slow_start(delay_ms: float = 5000.0, **overrides) -> NetworkProfile:
    """A source with a long initial delay before any data arrives."""
    profile = NetworkProfile(
        name="slow-start",
        initial_latency_ms=delay_ms,
        bandwidth_kbps=400.0,
    )
    return profile.with_overrides(**overrides) if overrides else profile


def dead(**overrides) -> NetworkProfile:
    """A source that never responds (triggers timeouts / rescheduling)."""
    profile = NetworkProfile(
        name="dead",
        initial_latency_ms=0.0,
        bandwidth_kbps=1.0,
        unavailable=True,
    )
    return profile.with_overrides(**overrides) if overrides else profile
