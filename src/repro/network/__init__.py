"""Simulated network layer: virtual clock, data sources, wrappers, profiles.

This substrate replaces the paper's physical testbed (JDBC wrappers over a
10 Mbps LAN and a trans-Atlantic echo-server link) with a deterministic
virtual-time model.  See ``DESIGN.md`` section 2 for the substitution
rationale and section 6 for the timing model.
"""

from repro.network.cache import (
    NEED_TAIL,
    STARVED,
    CacheEntry,
    CacheStats,
    CachingScanFeed,
    PartialExtent,
    SourceCache,
    StreamFollowerFeed,
)
from repro.network.profiles import (
    NetworkProfile,
    bursty,
    dead,
    lan,
    slow_start,
    wide_area,
)
from repro.network.simclock import ClockStats, SimClock
from repro.network.source import DataSource, SourceConnection, SourceStats, make_mirror
from repro.network.wrapper import Wrapper, WrapperStats

__all__ = [
    "CacheEntry",
    "CacheStats",
    "CachingScanFeed",
    "ClockStats",
    "DataSource",
    "NEED_TAIL",
    "NetworkProfile",
    "PartialExtent",
    "STARVED",
    "SimClock",
    "SourceCache",
    "SourceConnection",
    "SourceStats",
    "StreamFollowerFeed",
    "Wrapper",
    "WrapperStats",
    "bursty",
    "dead",
    "lan",
    "make_mirror",
    "slow_start",
    "wide_area",
]
