"""Source-result caching (the paper's "caching of source data" extension).

Section 8 of the paper lists optimistic prefetching and caching of source
data as planned extensions.  This module provides the caching half: a
:class:`SourceCache` remembers the full contents of sources that have been
read to completion, so later scans of the same source — in the same query
(self-joins, retries after rescheduling) or in later queries sharing the
cache — are served locally instead of crossing the network again.

In the multi-query server one cache is shared by *every* session, with
**completion-based admission**: the first session to read a source's full
extent deposits it, and from that virtual moment on every other session's
scans and dependent-join probes over that source run at local CPU speed.
Fills are tagged with the filling session and stamped with its virtual
time; a lookup from a session whose clock has not yet reached an entry's
fill time treats the entry as not yet visible (a miss), which keeps the
shared cache causal on the server timeline even though sessions advance
their clocks at different rates.

The speculative source layer relaxes completion-based admission to
**partial-extent streaming**: the first reader of a source registers a
:class:`PartialExtent` and publishes its in-progress stream block by block,
each block tagged with the filling session and its fill virtual time.  A
later scan of the same source attaches a :class:`StreamFollowerFeed` that
serves the cached prefix at local CPU speed — never observing a row before
its fill time, the same causality rule the completed-entry guard enforces —
and then *falls in behind* the live connection for the tail, sharing one
stream instead of queueing for a connection slot.  When the publisher
closes early (slot released mid-stream) the extent is detached but kept, so
the next reader resumes from the cached prefix and re-opens the source for
just the tail.

The cache is consistency-agnostic by design (autonomous sources give no
invalidation signal); entries carry the virtual time at which they were
filled and can be expired by age or dropped explicitly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.storage.relation import Relation
from repro.storage.schema import Schema
from repro.storage.tuples import Row

#: CPU cost (virtual ms) to serve one tuple from cached source data instead
#: of the network.  Shared by :class:`CachingScanFeed` and the dependent
#: join's cached probes so the same simulated work costs the same everywhere.
CACHE_SERVE_CPU_MS = 0.001


@dataclass
class CacheEntry:
    """A fully materialized copy of one source's exported stream."""

    source_name: str
    schema: Schema
    rows: list[Row]
    filled_at_ms: float
    filled_by: str | None = None

    @property
    def cardinality(self) -> int:
        return len(self.rows)

    def as_relation(self) -> Relation:
        """The cached contents as a relation named after the source."""
        return Relation(self.source_name, self.schema, self.rows)


@dataclass
class CacheStats:
    """Hit/miss counters for a cache instance."""

    hits: int = 0
    misses: int = 0
    fills: int = 0
    invalidations: int = 0
    #: Hits where the entry was filled by a *different* session than the one
    #: looking it up — the cross-query sharing the server benchmark measures.
    cross_session_hits: int = 0
    #: Misses on entries that exist but were filled at a virtual time the
    #: looking session has not reached yet (causality guard).
    not_yet_visible: int = 0
    #: Followers attached to an in-progress (or detached) partial extent —
    #: reads served from a prefix another reader is still streaming.
    partial_hits: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


@dataclass
class SourceCacheCounters:
    """Per-source slice of the cache counters (for :class:`ServerStats`)."""

    hits: int = 0
    cross_session_hits: int = 0
    partial_hits: int = 0


#: Sentinel returned by :meth:`StreamFollowerFeed.fetch` when the extent is
#: detached (publisher gone): the follower must open its own tail connection.
NEED_TAIL = object()
#: Sentinel returned when the extent is live but the follower has consumed
#: everything published so far — nothing to do until the publisher's next
#: block lands.  Callers deliver a partial batch if they have one; with
#: nothing buffered they fall back to their own connection (rare: the wait
#: hint from :meth:`StreamFollowerFeed.next_arrival` schedules the follower
#: strictly after the publisher's next event).
STARVED = object()


@dataclass
class ExtentBlock:
    """One published block of a partial extent (stats/debugging view)."""

    start: int
    stop: int
    filled_at_ms: float
    filled_by: str | None


class PartialExtent:
    """An in-progress source extent, published block-by-block by its reader.

    Every appended row carries the virtual time at which its publisher made
    it available; followers never observe a row before that time (on the
    shared server timeline) — the streaming generalization of the completed
    entry's fill-time guard.  Fill times are non-decreasing: a publisher only
    appends at its own (monotone) clock, and a takeover publisher has already
    consumed the prefix, advancing its clock past the last fill.
    """

    def __init__(
        self,
        source_name: str,
        schema: Schema,
        started_at_ms: float,
        publisher: str | None,
    ) -> None:
        self.source_name = source_name
        self.schema = schema
        self.started_at_ms = started_at_ms
        self.rows: list[Row] = []
        self.blocks: list[ExtentBlock] = []
        self._fill_times: list[float] = []
        self.publisher = publisher
        self.complete = False
        #: Set when the cache drops the extent (revocation/invalidation);
        #: attached followers fall back to their own tail connection.
        self.dropped = False
        self._publisher_clock = None
        self._live_probe = None
        self._live_demand = None

    @property
    def row_count(self) -> int:
        return len(self.rows)

    @property
    def is_live(self) -> bool:
        """True while a publisher is attached and still streaming."""
        return self._publisher_clock is not None and not self.complete

    def attach_publisher(self, session: str | None, clock, probe, demand=None) -> None:
        """Register the reader currently streaming this extent's tail.

        ``probe`` is a side-effect-free callable returning the live
        connection's next-block arrival time (or ``None``); together with the
        publisher's clock it lets followers forward the stream's next event
        to the scheduler without perturbing it.  ``demand`` — supplied only by
        publishers that are not sessions (the prefetcher) — lets a caught-up
        follower drive the stream synchronously: ``demand(now_ms)`` publishes
        every row the live connection has delivered by ``now_ms``.  Session
        publishers never pass it; their unpublished rows have unknown fill
        times, so followers must wait for the publisher's own step.
        """
        self.publisher = session
        self._publisher_clock = clock
        self._live_probe = probe
        self._live_demand = demand

    def detach(self) -> None:
        """The publisher is gone (closed early or revoked); keep the prefix."""
        self._publisher_clock = None
        self._live_probe = None
        self._live_demand = None

    def demand_live(self, clock) -> bool:
        """Drive a demand-pumping publisher up to the follower's clock.

        Advances the follower's ``clock`` to the live connection's next
        arrival (exactly what fetching on its own connection would do) and
        asks the publisher to publish everything delivered by then.  Returns
        False when the publisher cannot be driven — no demand hook (session
        publisher) or a never-arriving next tuple — in which case the caller
        falls back to the :data:`STARVED` protocol.
        """
        if self._live_demand is None:
            return False
        if self._live_probe is not None:
            arrival = self._live_probe()
            if arrival is not None and arrival > clock.now:
                if arrival == math.inf:
                    return False
                clock.advance_to(arrival)
        self._live_demand(clock.now)
        return True

    def publish(
        self, rows, now_ms: float, session: str | None, arrivals=None
    ) -> None:
        """Append a block of rows made available at virtual time ``now_ms``.

        ``arrivals`` (optional, one per row) records exact per-row fill
        times — publishers whose clock tracks the connection's arrival stamps
        (the prefetcher) use it so followers fall in at live-link pace rather
        than block-end bursts.
        """
        if not rows:
            return
        start = len(self.rows)
        self.rows.extend(rows)
        if arrivals is None:
            self._fill_times.extend([now_ms] * len(rows))
        else:
            self._fill_times.extend(arrivals)
        self.blocks.append(ExtentBlock(start, len(self.rows), now_ms, session))

    def fill_time_at(self, index: int) -> float:
        return self._fill_times[index]

    def live_next_event(self, now_ms: float) -> float:
        """When a caught-up follower should next look at the live stream.

        Strictly greater than the publisher's own next event (its connection's
        next arrival, or its clock if it is mid-CPU), so the frontier-first
        scheduler always runs the publisher first and the follower resumes to
        find the block published.  This is a scheduling hint only — clocks
        advance at actual fetches — so the epsilon never touches accounting.
        """
        target = now_ms
        if self._publisher_clock is not None:
            target = max(target, self._publisher_clock.now)
        if self._live_probe is not None:
            arrival = self._live_probe()
            if arrival == math.inf:
                return math.inf
            if arrival is not None:
                target = max(target, arrival)
        return math.nextafter(target, math.inf)


class StreamFollowerFeed:
    """A follower's streaming view over a :class:`PartialExtent`.

    The cached prefix is served at local CPU speed, but — in causal mode
    (server sessions, one shared timeline) — never before each row's fill
    time: consuming a row filled in the follower's future first advances the
    follower's clock to the fill time, which is exactly "falling in behind"
    the live stream.  Non-causal mode (single-query contexts, clocks
    restarting per query) skips the fill-time wait, mirroring the completed
    entry guard being session-scoped.
    """

    def __init__(
        self,
        extent: PartialExtent,
        clock,
        causal: bool = True,
        per_tuple_cpu_ms: float = CACHE_SERVE_CPU_MS,
    ) -> None:
        self._extent = extent
        self._clock = clock
        self._causal = causal
        self._per_tuple_cpu_ms = per_tuple_cpu_ms
        self._cursor = 0

    @property
    def schema(self) -> Schema:
        return self._extent.schema

    @property
    def extent(self) -> PartialExtent:
        return self._extent

    @property
    def cursor(self) -> int:
        """Rows consumed so far — the tail connection's resume offset."""
        return self._cursor

    def next_arrival(self) -> float | None:
        """When the next row can be consumed (side-effect free).

        ``None`` means end of stream (the extent completed and the prefix is
        drained).  A detached extent's tail is "ready now": the fetch itself
        performs the takeover.
        """
        extent = self._extent
        now = self._clock.now
        if self._cursor < extent.row_count:
            if not self._causal:
                return now
            fill = extent.fill_time_at(self._cursor)
            return fill if fill > now else now
        if extent.complete:
            return None
        if extent.is_live:
            return extent.live_next_event(now)
        return now

    def fetch(self):
        """Next row, ``None`` at end of stream, or a takeover sentinel.

        Returns :data:`NEED_TAIL` when the extent is detached (the follower
        must open its own tail connection from :attr:`cursor`) and
        :data:`STARVED` when the live publisher has not yet published the
        next block.  A caught-up follower of a demand-pumping publisher (the
        prefetcher) first drives the stream itself — fetch is the blocking
        "next row" call, so waiting for the live connection's next arrival
        here mirrors what its own connection would do — and only starves when
        the publisher cannot be driven.
        """
        extent = self._extent
        if self._cursor >= extent.row_count and extent.is_live and self._causal:
            extent.demand_live(self._clock)
        if self._cursor < extent.row_count:
            row = extent.rows[self._cursor]
            if self._causal:
                fill = extent.fill_time_at(self._cursor)
                if fill > self._clock.now:
                    self._clock.advance_to(fill)
            self._cursor += 1
            self._clock.consume_cpu(self._per_tuple_cpu_ms)
            return row.with_arrival(self._clock.now)
        if extent.complete:
            return None
        if extent.is_live:
            return STARVED
        return NEED_TAIL


class SourceCache:
    """Caches complete source extents keyed by source name.

    Parameters
    ----------
    max_age_ms:
        Entries older than this (in virtual time) are treated as stale and
        refetched; ``None`` disables expiry.
    max_entries:
        Upper bound on cached sources; the oldest entry is evicted first.
    """

    def __init__(self, max_age_ms: float | None = None, max_entries: int = 64) -> None:
        if max_entries <= 0:
            raise ValueError(f"max_entries must be positive, got {max_entries}")
        self.max_age_ms = max_age_ms
        self.max_entries = max_entries
        self.stats = CacheStats()
        self._entries: dict[str, CacheEntry] = {}
        self._streams: dict[str, PartialExtent] = {}
        self._per_source: dict[str, SourceCacheCounters] = {}

    # -- lookup -------------------------------------------------------------------

    def lookup(
        self, source_name: str, now_ms: float, session: str | None = None
    ) -> CacheEntry | None:
        """Return a fresh entry for ``source_name`` or record a miss.

        When the lookup names a ``session`` (server mode, where all clocks
        share one timeline), an entry filled at a virtual time beyond
        ``now_ms`` is invisible to it — another session running ahead
        deposited it "in the future".  The entry is kept; it becomes visible
        once the looking session's clock passes the fill time.  Lookups
        without a session (single-query contexts, whose clocks restart at
        zero per query) skip the guard: their fill times are not comparable
        across queries.
        """
        entry = self._entries.get(source_name)
        if entry is None:
            self.stats.misses += 1
            return None
        if session is not None and entry.filled_at_ms > now_ms:
            self.stats.misses += 1
            self.stats.not_yet_visible += 1
            return None
        if self.max_age_ms is not None and now_ms - entry.filled_at_ms > self.max_age_ms:
            self.stats.misses += 1
            self.invalidate(source_name)
            return None
        self.stats.hits += 1
        counters = self.source_counters(source_name)
        counters.hits += 1
        if entry.filled_by is not None and entry.filled_by != session:
            self.stats.cross_session_hits += 1
            counters.cross_session_hits += 1
        return entry

    def peek(
        self, source_name: str, now_ms: float, session: str | None = None
    ) -> CacheEntry | None:
        """Visibility check with :meth:`lookup` semantics but *no* effects.

        No counters move and stale entries are not invalidated, so operators
        (and the prefetcher's decision hook, which must stay effect-free for
        the ``step-effect`` analyzer rule) may probe on every call.
        """
        entry = self._entries.get(source_name)
        if entry is None:
            return None
        if session is not None and entry.filled_at_ms > now_ms:
            return None
        if self.max_age_ms is not None and now_ms - entry.filled_at_ms > self.max_age_ms:
            return None
        return entry

    def source_counters(self, source_name: str) -> SourceCacheCounters:
        """Per-source hit counters (created on first touch)."""
        counters = self._per_source.get(source_name)
        if counters is None:
            counters = self._per_source[source_name] = SourceCacheCounters()
        return counters

    @property
    def per_source_counters(self) -> dict[str, SourceCacheCounters]:
        return dict(self._per_source)

    def __contains__(self, source_name: str) -> bool:
        return source_name in self._entries

    @property
    def cached_sources(self) -> list[str]:
        return sorted(self._entries)

    # -- partial-extent streaming ---------------------------------------------------

    def begin_stream(
        self,
        source_name: str,
        schema: Schema,
        now_ms: float,
        session: str | None,
        clock,
        probe,
        demand=None,
    ) -> PartialExtent | None:
        """Register the caller as ``source_name``'s streaming publisher.

        Refused (``None``) when a completed entry already exists — even one
        the caller cannot see yet, matching the completion-path rule that
        never refills an existing entry — or when another reader is already
        publishing this source.  ``demand`` is forwarded to
        :meth:`PartialExtent.attach_publisher` (prefetch streams only).
        """
        if source_name in self._entries or source_name in self._streams:
            return None
        extent = PartialExtent(source_name, schema, now_ms, session)
        extent.attach_publisher(session, clock, probe, demand=demand)
        self._streams[source_name] = extent
        return extent

    def attach_follower(
        self, source_name: str, clock, session: str | None
    ) -> StreamFollowerFeed | None:
        """Follow an in-progress (or detached) extent; ``None`` if not streaming.

        The feed is causal — rows wait for their fill times — only when the
        follower names a session, i.e. shares the publisher's timeline;
        single-query contexts restart their clocks per query, so (exactly as
        in :meth:`lookup`) fill times are not comparable and the prefix is
        served immediately.
        """
        extent = self._streams.get(source_name)
        if extent is None:
            return None
        self.stats.partial_hits += 1
        self.source_counters(source_name).partial_hits += 1
        return StreamFollowerFeed(extent, clock, causal=session is not None)

    def stream(self, source_name: str) -> PartialExtent | None:
        """The in-progress extent for ``source_name`` (effect-free)."""
        return self._streams.get(source_name)

    def streaming(self, source_name: str) -> bool:
        return source_name in self._streams

    def adopt_stream(self, extent: PartialExtent, session: str | None, clock, probe) -> bool:
        """Take over publishing a detached extent's tail.

        Returns ``False`` when the extent is no longer registered (dropped by
        revocation or replaced) or still has a live publisher (a starved
        follower defecting) — the caller then streams privately and must not
        publish.
        """
        if self._streams.get(extent.source_name) is not extent or extent.is_live:
            return False
        extent.attach_publisher(session, clock, probe)
        return True

    def detach_stream(self, extent: PartialExtent) -> None:
        """Publisher closing early: keep the prefix for later readers.

        Must be called *before* the publisher releases its connection slot,
        so a queued reader admitted into the freed slot finds the prefix
        already published rather than re-fetching from row zero.
        """
        extent.detach()
        if extent.row_count == 0 and self._streams.get(extent.source_name) is extent:
            # Nothing published; an empty registered stream would only block
            # the next reader from becoming publisher.
            del self._streams[extent.source_name]

    def complete_stream(
        self, extent: PartialExtent, now_ms: float, session: str | None
    ) -> CacheEntry:
        """Publisher drained the source: promote the extent to a full entry."""
        extent.complete = True
        extent.detach()
        if self._streams.get(extent.source_name) is extent:
            del self._streams[extent.source_name]
        return self.fill(extent.source_name, extent.schema, extent.rows, now_ms, session)

    def drop_stream(self, extent: PartialExtent) -> None:
        """Forget a partial extent (prefetch revocation / invalidation).

        Attached followers keep the rows they already consumed; their next
        starved fetch returns :data:`NEED_TAIL` and they fall back to their
        own connection.
        """
        extent.dropped = True
        extent.detach()
        if self._streams.get(extent.source_name) is extent:
            del self._streams[extent.source_name]
            self.stats.invalidations += 1

    # -- filling -------------------------------------------------------------------

    def fill(
        self,
        source_name: str,
        schema: Schema,
        rows: list[Row],
        now_ms: float,
        session: str | None = None,
    ) -> CacheEntry:
        """Store a complete source extent (replacing any prior entry)."""
        entry = CacheEntry(
            source_name, schema, list(rows), filled_at_ms=now_ms, filled_by=session
        )
        self._entries[source_name] = entry
        self.stats.fills += 1
        self._evict_if_needed()
        return entry

    def _evict_if_needed(self) -> None:
        while len(self._entries) > self.max_entries:
            oldest = min(self._entries.values(), key=lambda e: e.filled_at_ms)
            self.invalidate(oldest.source_name)

    # -- invalidation -----------------------------------------------------------------

    def invalidate(self, source_name: str) -> None:
        """Drop one cached source, completed or streaming (no error if absent)."""
        if self._entries.pop(source_name, None) is not None:
            self.stats.invalidations += 1
        stream = self._streams.get(source_name)
        if stream is not None:
            self.drop_stream(stream)

    def clear(self) -> None:
        """Drop everything."""
        for name in list(self._entries):
            self.invalidate(name)
        for name in list(self._streams):
            self.invalidate(name)


class CachingScanFeed:
    """Streaming view over a cache entry with the wrapper interface shape.

    Scans served from the cache still charge a small per-tuple CPU cost but
    no network latency, which is what makes cached re-reads cheap.
    """

    def __init__(
        self, entry: CacheEntry, clock, per_tuple_cpu_ms: float = CACHE_SERVE_CPU_MS
    ) -> None:
        self._entry = entry
        self._clock = clock
        self._per_tuple_cpu_ms = per_tuple_cpu_ms
        self._cursor = 0

    @property
    def schema(self) -> Schema:
        return self._entry.schema

    @property
    def exhausted(self) -> bool:
        return self._cursor >= len(self._entry.rows)

    def next_arrival(self) -> float | None:
        """Cached data is always ready 'now'."""
        if self.exhausted:
            return None
        return self._clock.now

    def fetch(self) -> Row | None:
        if self.exhausted:
            return None
        row = self._entry.rows[self._cursor]
        self._cursor += 1
        self._clock.consume_cpu(self._per_tuple_cpu_ms)
        return row.with_arrival(self._clock.now)
