"""Source-result caching (the paper's "caching of source data" extension).

Section 8 of the paper lists optimistic prefetching and caching of source
data as planned extensions.  This module provides the caching half: a
:class:`SourceCache` remembers the full contents of sources that have been
read to completion, so later scans of the same source — in the same query
(self-joins, retries after rescheduling) or in later queries sharing the
cache — are served locally instead of crossing the network again.

In the multi-query server one cache is shared by *every* session, with
**completion-based admission**: the first session to read a source's full
extent deposits it, and from that virtual moment on every other session's
scans and dependent-join probes over that source run at local CPU speed.
Fills are tagged with the filling session and stamped with its virtual
time; a lookup from a session whose clock has not yet reached an entry's
fill time treats the entry as not yet visible (a miss), which keeps the
shared cache causal on the server timeline even though sessions advance
their clocks at different rates.

The cache is consistency-agnostic by design (autonomous sources give no
invalidation signal); entries carry the virtual time at which they were
filled and can be expired by age or dropped explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.storage.relation import Relation
from repro.storage.schema import Schema
from repro.storage.tuples import Row

#: CPU cost (virtual ms) to serve one tuple from cached source data instead
#: of the network.  Shared by :class:`CachingScanFeed` and the dependent
#: join's cached probes so the same simulated work costs the same everywhere.
CACHE_SERVE_CPU_MS = 0.001


@dataclass
class CacheEntry:
    """A fully materialized copy of one source's exported stream."""

    source_name: str
    schema: Schema
    rows: list[Row]
    filled_at_ms: float
    filled_by: str | None = None

    @property
    def cardinality(self) -> int:
        return len(self.rows)

    def as_relation(self) -> Relation:
        """The cached contents as a relation named after the source."""
        return Relation(self.source_name, self.schema, self.rows)


@dataclass
class CacheStats:
    """Hit/miss counters for a cache instance."""

    hits: int = 0
    misses: int = 0
    fills: int = 0
    invalidations: int = 0
    #: Hits where the entry was filled by a *different* session than the one
    #: looking it up — the cross-query sharing the server benchmark measures.
    cross_session_hits: int = 0
    #: Misses on entries that exist but were filled at a virtual time the
    #: looking session has not reached yet (causality guard).
    not_yet_visible: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class SourceCache:
    """Caches complete source extents keyed by source name.

    Parameters
    ----------
    max_age_ms:
        Entries older than this (in virtual time) are treated as stale and
        refetched; ``None`` disables expiry.
    max_entries:
        Upper bound on cached sources; the oldest entry is evicted first.
    """

    def __init__(self, max_age_ms: float | None = None, max_entries: int = 64) -> None:
        if max_entries <= 0:
            raise ValueError(f"max_entries must be positive, got {max_entries}")
        self.max_age_ms = max_age_ms
        self.max_entries = max_entries
        self.stats = CacheStats()
        self._entries: dict[str, CacheEntry] = {}

    # -- lookup -------------------------------------------------------------------

    def lookup(
        self, source_name: str, now_ms: float, session: str | None = None
    ) -> CacheEntry | None:
        """Return a fresh entry for ``source_name`` or record a miss.

        When the lookup names a ``session`` (server mode, where all clocks
        share one timeline), an entry filled at a virtual time beyond
        ``now_ms`` is invisible to it — another session running ahead
        deposited it "in the future".  The entry is kept; it becomes visible
        once the looking session's clock passes the fill time.  Lookups
        without a session (single-query contexts, whose clocks restart at
        zero per query) skip the guard: their fill times are not comparable
        across queries.
        """
        entry = self._entries.get(source_name)
        if entry is None:
            self.stats.misses += 1
            return None
        if session is not None and entry.filled_at_ms > now_ms:
            self.stats.misses += 1
            self.stats.not_yet_visible += 1
            return None
        if self.max_age_ms is not None and now_ms - entry.filled_at_ms > self.max_age_ms:
            self.stats.misses += 1
            self.invalidate(source_name)
            return None
        self.stats.hits += 1
        if entry.filled_by is not None and entry.filled_by != session:
            self.stats.cross_session_hits += 1
        return entry

    def __contains__(self, source_name: str) -> bool:
        return source_name in self._entries

    @property
    def cached_sources(self) -> list[str]:
        return sorted(self._entries)

    # -- filling -------------------------------------------------------------------

    def fill(
        self,
        source_name: str,
        schema: Schema,
        rows: list[Row],
        now_ms: float,
        session: str | None = None,
    ) -> CacheEntry:
        """Store a complete source extent (replacing any prior entry)."""
        entry = CacheEntry(
            source_name, schema, list(rows), filled_at_ms=now_ms, filled_by=session
        )
        self._entries[source_name] = entry
        self.stats.fills += 1
        self._evict_if_needed()
        return entry

    def _evict_if_needed(self) -> None:
        while len(self._entries) > self.max_entries:
            oldest = min(self._entries.values(), key=lambda e: e.filled_at_ms)
            self.invalidate(oldest.source_name)

    # -- invalidation -----------------------------------------------------------------

    def invalidate(self, source_name: str) -> None:
        """Drop one cached source (no error if absent)."""
        if self._entries.pop(source_name, None) is not None:
            self.stats.invalidations += 1

    def clear(self) -> None:
        """Drop everything."""
        for name in list(self._entries):
            self.invalidate(name)


class CachingScanFeed:
    """Streaming view over a cache entry with the wrapper interface shape.

    Scans served from the cache still charge a small per-tuple CPU cost but
    no network latency, which is what makes cached re-reads cheap.
    """

    def __init__(
        self, entry: CacheEntry, clock, per_tuple_cpu_ms: float = CACHE_SERVE_CPU_MS
    ) -> None:
        self._entry = entry
        self._clock = clock
        self._per_tuple_cpu_ms = per_tuple_cpu_ms
        self._cursor = 0

    @property
    def schema(self) -> Schema:
        return self._entry.schema

    @property
    def exhausted(self) -> bool:
        return self._cursor >= len(self._entry.rows)

    def next_arrival(self) -> float | None:
        """Cached data is always ready 'now'."""
        if self.exhausted:
            return None
        return self._clock.now

    def fetch(self) -> Row | None:
        if self.exhausted:
            return None
        row = self._entry.rows[self._cursor]
        self._cursor += 1
        self._clock.consume_cpu(self._per_tuple_cpu_ms)
        return row.with_arrival(self._clock.now)
