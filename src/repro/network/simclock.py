"""Virtual time.

All experiment timing in this reproduction runs against a :class:`SimClock`
rather than the wall clock.  Sources stamp tuples with arrival times computed
from their latency and bandwidth models; operators advance the clock when
they wait for data, burn CPU, or perform disk I/O.  This keeps every
benchmark deterministic and lets the harness report the tuples-vs-time curves
that the paper's figures plot.

A single query owns one :class:`SimClock`.  The multi-query server instead
hands each session a :class:`repro.server.clock.SessionClock` — a
``SimClock`` subclass registered with a shared
:class:`~repro.server.clock.ServerClock` — so every session's waits, CPU and
I/O land on one server timeline and the scheduler can pick whichever session
is furthest behind.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class ClockStats:
    """Breakdown of where virtual time went."""

    wait_ms: float = 0.0
    cpu_ms: float = 0.0
    io_ms: float = 0.0

    @property
    def total_ms(self) -> float:
        return self.wait_ms + self.cpu_ms + self.io_ms

    def add(self, other: "ClockStats") -> None:
        """Accumulate ``other`` into this breakdown (server-level aggregation)."""
        self.wait_ms += other.wait_ms
        self.cpu_ms += other.cpu_ms
        self.io_ms += other.io_ms


class SimClock:
    """A monotonically advancing virtual clock measured in milliseconds."""

    def __init__(self, start_ms: float = 0.0) -> None:
        self._now = float(start_ms)
        self.stats = ClockStats()

    @property
    def now(self) -> float:
        """Current virtual time in milliseconds."""
        return self._now

    def advance_to(self, time_ms: float) -> float:
        """Move the clock forward to ``time_ms`` (no-op if already past).

        The gap is accounted as waiting (for network data).  Returns the new
        current time.
        """
        if time_ms > self._now:
            self.stats.wait_ms += time_ms - self._now
            self._now = time_ms
        return self._now

    def consume_cpu(self, cpu_ms: float) -> float:
        """Burn ``cpu_ms`` of processing time."""
        if cpu_ms < 0:
            raise ValueError(f"cpu time must be non-negative, got {cpu_ms}")
        self._now += cpu_ms
        self.stats.cpu_ms += cpu_ms
        return self._now

    def consume_io(self, io_ms: float) -> float:
        """Burn ``io_ms`` of disk I/O time."""
        if io_ms < 0:
            raise ValueError(f"io time must be non-negative, got {io_ms}")
        self._now += io_ms
        self.stats.io_ms += io_ms
        return self._now

    def consume_cpu_overlapped(self, cpu_ms: float, absorbable_wait_ms: float) -> float:
        """Charge CPU that overlapped network waiting (pipelined execution).

        Tuple-at-a-time operators charge CPU *between* arrival waits, so the
        cost hides inside the next wait whenever data is the bottleneck.  A
        batch operator charges after its whole batch has streamed in; to keep
        the two accountings equivalent, up to ``absorbable_wait_ms`` of the
        charge (the waiting that accrued while this batch was produced) is
        reclassified from waiting to CPU, and only the excess extends virtual
        time.
        """
        if cpu_ms < 0:
            raise ValueError(f"cpu time must be non-negative, got {cpu_ms}")
        overlap = min(cpu_ms, absorbable_wait_ms, self.stats.wait_ms)
        if overlap > 0:
            self.stats.wait_ms -= overlap
            self.stats.cpu_ms += overlap
        excess = cpu_ms - overlap
        if excess > 0:
            self._now += excess
            self.stats.cpu_ms += excess
        return self._now

    def consume_io_overlapped(self, io_ms: float, absorbable_wait_ms: float) -> float:
        """IO counterpart of :meth:`consume_cpu_overlapped`."""
        if io_ms < 0:
            raise ValueError(f"io time must be non-negative, got {io_ms}")
        overlap = min(io_ms, absorbable_wait_ms, self.stats.wait_ms)
        if overlap > 0:
            self.stats.wait_ms -= overlap
            self.stats.io_ms += overlap
        excess = io_ms - overlap
        if excess > 0:
            self._now += excess
            self.stats.io_ms += excess
        return self._now

    def charge(self, wait_ms: float, cpu_ms: float, io_ms: float = 0.0) -> float:
        """Apply a pre-aggregated batch of waiting/CPU/IO time in one call.

        Equivalent to the corresponding sequence of :meth:`advance_to` /
        :meth:`consume_cpu` / :meth:`consume_io` calls; batch operators use it
        to charge a whole block of tuples at once.
        """
        if wait_ms < 0 or cpu_ms < 0 or io_ms < 0:
            raise ValueError(
                f"charges must be non-negative, got wait={wait_ms} cpu={cpu_ms} io={io_ms}"
            )
        self._now += wait_ms + cpu_ms + io_ms
        self.stats.wait_ms += wait_ms
        self.stats.cpu_ms += cpu_ms
        self.stats.io_ms += io_ms
        return self._now

    def reset(self, start_ms: float = 0.0) -> None:
        """Rewind the clock (used between benchmark repetitions)."""
        self._now = float(start_ms)
        self.stats = ClockStats()

    def restore(self, now_ms: float, wait_ms: float, cpu_ms: float, io_ms: float) -> None:
        """Adopt an externally accounted position and breakdown wholesale.

        The process exchange backend runs each lane's clock *in the worker*
        and mirrors it onto the parent's registered clock from the worker's
        reports.  A plain charge cannot express the mirror: overlapped
        charges reclassify waiting into CPU, so a worker's cumulative wait
        may *decrease* between reports.  Mutates the existing
        :class:`ClockStats` in place so aggregators holding a reference see
        the update.
        """
        self._now = float(now_ms)
        self.stats.wait_ms = wait_ms
        self.stats.cpu_ms = cpu_ms
        self.stats.io_ms = io_ms

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimClock(now={self._now:.2f}ms)"
