"""Simulated autonomous data sources.

A :class:`DataSource` holds a base relation and a
:class:`~repro.network.profiles.NetworkProfile`.  When a connection is opened
it lays out the arrival timetable for every tuple; the wrapper then streams
tuples in arrival order.  Sources can be unavailable (never respond), fail
mid-transfer, or mirror another source's contents — everything the paper's
collector and rescheduling experiments need.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from repro.errors import SourceUnavailableError
from repro.network.profiles import NetworkProfile
from repro.storage.relation import Relation
from repro.storage.tuples import Row


@dataclass
class SourceStats:
    """Per-source counters maintained across a query."""

    connections_opened: int = 0
    tuples_sent: int = 0
    failures: int = 0
    #: Virtual ms connections spent queued for a free connection slot
    #: (only accrues on sources with ``max_concurrent`` set).
    queued_ms: float = 0.0
    connections_queued: int = 0


class DataSource:
    """An autonomous source exporting one relation over a simulated link.

    Parameters
    ----------
    name:
        Unique source identifier (e.g. ``"db2.orders"`` or ``"mirror-eu"``).
    relation:
        The data the source exports.  The exported schema is the relation's
        schema qualified with the relation name.
    profile:
        Timing/reliability model for the connection.
    max_concurrent:
        Upper bound on simultaneously streaming connections (``None`` =
        unbounded, the single-query default).  An autonomous source serves
        only so many clients at once; when the multi-query server opens a
        connection past the bound, its stream is *queued* — the arrival
        timetable starts when the earliest-finishing active connection
        frees its slot, so queued fetches wait on the shared virtual
        timeline exactly like slow links do.
    """

    def __init__(
        self,
        name: str,
        relation: Relation,
        profile: NetworkProfile | None = None,
        max_concurrent: int | None = None,
    ) -> None:
        if max_concurrent is not None and max_concurrent <= 0:
            raise ValueError(f"max_concurrent must be positive, got {max_concurrent}")
        self.name = name
        self.relation = relation
        self.profile = profile or NetworkProfile()
        self.max_concurrent = max_concurrent
        self.stats = SourceStats()
        #: Busy-until time per occupied connection slot (bounded sources only).
        self._slots: list[float] = []
        self._encoded_columns: list | None = None
        self._encoded_dictionaries: list | None = None
        self._encoded_for_cardinality = -1

    @property
    def exported_schema(self):
        """Schema visible to the integration system (qualified names)."""
        return self.relation.schema.qualified(self.relation.name)

    def encoded_column_cache(self) -> tuple[list, list]:
        """The relation translated once into typed/encoded columns.

        Source data is static, so the wrapper's translation step (the XML
        parsing/Unicode conversion of the original system — here the
        typed/dictionary-encoded column build) is done once per source and
        shared by every wrapper: connections deliver rows sequentially, so a
        block is a pair of C-level column slices over this cache.  Returns
        ``(columns, dictionaries)``; rebuilt if the relation's cardinality
        changed since the last build.
        """
        cardinality = self.relation.cardinality
        if self._encoded_columns is None or self._encoded_for_cardinality != cardinality:
            from repro.storage.columns import build_columns, make_dictionaries

            schema = self.exported_schema
            dictionaries = make_dictionaries(schema)
            rows = self.relation.rows
            if rows:
                columns = build_columns(
                    schema, list(zip(*(row.values for row in rows))), True, dictionaries
                )
            else:
                columns = [[] for _ in range(len(schema))]
            # Freeze: the cache outlives any one query and is shared by every
            # consumer downstream.  A consumer mixing in values from another
            # source (a union/collector concat, a join output accumulator)
            # must degrade its own column, never grow this dictionary.
            for dictionary in dictionaries:
                if dictionary is not None:
                    dictionary.freeze()
            self._encoded_columns = columns
            self._encoded_dictionaries = dictionaries
            self._encoded_for_cardinality = cardinality
        return self._encoded_columns, self._encoded_dictionaries

    @property
    def cardinality(self) -> int:
        return self.relation.cardinality

    @property
    def size_bytes(self) -> int:
        return self.relation.size_bytes

    def set_profile(self, profile: NetworkProfile) -> None:
        """Swap the network profile (benchmarks vary link conditions this way)."""
        self.profile = profile

    def open(self, at_ms: float = 0.0, start_row: int = 0) -> "SourceConnection":
        """Open a connection at virtual time ``at_ms``.

        On a concurrency-bounded source the stream may be queued: the
        connection object exists immediately, but its arrival timetable
        starts only when a slot frees (``queued_ms`` on the connection and
        the source stats records the delay).

        ``start_row`` re-requests the stream from an offset (a follower of a
        partial cached extent fetching just the tail): the timetable covers
        only the remaining rows, laid out from the stream start as any fresh
        request would be.
        """
        self.stats.connections_opened += 1
        start_ms, slot = self._claim_slot(at_ms)
        connection = SourceConnection(
            self, start_ms, slot=slot, requested_at_ms=at_ms, start_row=start_row
        )
        if slot is not None:
            # The slot stays busy until the last scheduled arrival (released
            # earlier if the reader closes before draining the stream).
            busy_until = connection._arrivals[-1] if connection._arrivals else start_ms
            self._slots[slot] = busy_until
        if start_ms > at_ms:
            self.stats.queued_ms += start_ms - at_ms
            self.stats.connections_queued += 1
        return connection

    def _claim_slot(self, at_ms: float) -> tuple[float, int | None]:
        """Effective stream start and slot index under the concurrency bound.

        Each slot tracks a single busy-until time, so an open can queue
        behind a window claimed by a session running *ahead* on the shared
        timeline even if the slot was idle at the opener's own virtual
        time.  This is a deliberate conservative approximation (queueing
        may be overestimated, never missed): the scheduler's frontier-first
        order makes it deterministic, and it matches the batch-granular
        coarseness the drive modes already accept.  Exact sharing would
        need per-slot busy *interval* bookkeeping.
        """
        if self.max_concurrent is None or self.profile.unavailable:
            return at_ms, None
        # Reuse a slot already free at ``at_ms`` before queueing behind one.
        for index, busy_until in enumerate(self._slots):
            if busy_until <= at_ms:
                return at_ms, index
        if len(self._slots) < self.max_concurrent:
            self._slots.append(at_ms)
            return at_ms, len(self._slots) - 1
        index = min(range(len(self._slots)), key=self._slots.__getitem__)
        return max(at_ms, self._slots[index]), index

    def _release_slot(self, slot: int, at_ms: float) -> None:
        """Free a slot earlier than projected (reader closed mid-stream)."""
        if 0 <= slot < len(self._slots) and at_ms < self._slots[slot]:
            self._slots[slot] = at_ms

    def free_slots(self, at_ms: float) -> int | None:
        """Connection slots free at ``at_ms`` (``None`` = unbounded).

        Side-effect free: the prefetcher's decision hook uses this to warm
        sources within *spare* capacity only, without claiming anything.
        """
        if self.max_concurrent is None:
            return None
        busy = sum(1 for busy_until in self._slots if busy_until > at_ms)
        return max(0, self.max_concurrent - busy)

    def reset_concurrency(self) -> None:
        """Forget slot occupancy (benchmark repetitions restart virtual time)."""
        self._slots = []

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DataSource({self.name!r}, {self.relation.cardinality} tuples, "
            f"profile={self.profile.name!r})"
        )


class SourceConnection:
    """A single streaming connection to a :class:`DataSource`.

    The connection pre-computes arrival timestamps for all tuples when it is
    opened; :meth:`next_arrival` exposes the timestamp of the next undelivered
    tuple so that data-driven operators (the double pipelined join, the
    collector) can choose which input to service first.
    """

    def __init__(
        self,
        source: DataSource,
        opened_at_ms: float,
        slot: int | None = None,
        requested_at_ms: float | None = None,
        start_row: int = 0,
    ) -> None:
        self.source = source
        #: When the stream actually starts — past ``requested_at_ms`` when
        #: the connection queued for a slot on a concurrency-bounded source.
        self.opened_at_ms = opened_at_ms
        self.requested_at_ms = opened_at_ms if requested_at_ms is None else requested_at_ms
        #: First row of the export this connection streams (tail re-requests).
        self.base_row = start_row
        self._slot = slot
        self._cursor = 0
        self._closed = False
        relation = source.relation
        if source.profile.unavailable:
            self._arrivals: list[float] = []
            self._rows: list[Row] = []
        else:
            qualified = relation.qualified()
            rows = qualified.rows
            self._rows = rows[start_row:] if start_row else rows
            sizes = [row.size_bytes for row in self._rows]
            self._arrivals = source.profile.arrival_schedule(sizes, start_ms=opened_at_ms)
        limit = source.profile.drop_after_tuples
        if limit is not None:
            # The failure point is a property of the source's export, not of
            # this connection: a tail re-request still dies at the same row.
            limit = max(0, limit - start_row)
        self._fail_at_index = limit

    # -- streaming interface -----------------------------------------------------

    @property
    def exhausted(self) -> bool:
        """True once every available tuple has been delivered."""
        if self.source.profile.unavailable:
            return False  # a dead source never finishes, it times out
        return self._cursor >= len(self._rows)

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def delivered(self) -> int:
        return self._cursor

    def next_arrival(self) -> float | None:
        """Virtual arrival time of the next tuple, or ``None`` when exhausted.

        For an unavailable source this returns ``float('inf')`` — the tuple
        never arrives, which is what drives timeout events.
        """
        if self._closed:
            return None
        if self.source.profile.unavailable:
            return float("inf")
        if self.exhausted:
            return None
        return self._arrivals[self._cursor]

    def fetch(self) -> tuple[Row, float]:
        """Deliver the next tuple as ``(row, arrival_ms)``.

        Raises
        ------
        SourceUnavailableError
            If the source is dead, has failed mid-transfer, or is exhausted.
        """
        if self._closed:
            raise SourceUnavailableError(f"connection to {self.source.name!r} is closed")
        if self.source.profile.unavailable:
            self.source.stats.failures += 1
            raise SourceUnavailableError(f"source {self.source.name!r} is not responding")
        if self._fail_at_index is not None and self._cursor >= self._fail_at_index:
            self.source.stats.failures += 1
            raise SourceUnavailableError(
                f"source {self.source.name!r} failed after {self._cursor} tuples"
            )
        if self.exhausted:
            raise SourceUnavailableError(f"source {self.source.name!r} is exhausted")
        row = self._rows[self._cursor]
        arrival = self._arrivals[self._cursor]
        self._cursor += 1
        self.source.stats.tuples_sent += 1
        return row.with_arrival(arrival), arrival

    def fetch_block(
        self, max_rows: int, arrival_bound: float | None = None, arrival_limit: float | None = None
    ) -> tuple[list[Row], list[float]]:
        """Deliver up to ``max_rows`` tuples in one call (batch scan support).

        Stops *without raising* at the failure point, the timetable's end, or
        the first tuple arriving at/after ``arrival_bound`` (exclusive) or
        beyond ``arrival_limit`` (inclusive — the caller's timeout horizon);
        the caller falls back to :meth:`fetch`, which surfaces failures and
        timeouts with exact per-tuple semantics.  Rows are returned unstamped
        alongside their arrival times.
        """
        if self._closed or self.source.profile.unavailable or max_rows <= 0:
            return [], []
        start = self._cursor
        stop = len(self._rows)
        if self._fail_at_index is not None:
            stop = min(stop, self._fail_at_index)
        stop = min(stop, start + max_rows)
        if arrival_bound is not None or arrival_limit is not None:
            arrivals = self._arrivals
            # Walk rather than bisect: jittered schedules are only loosely
            # sorted, and the block is materialized row by row anyway.
            for index in range(start, stop):
                arrival = arrivals[index]
                if arrival_bound is not None and arrival >= arrival_bound:
                    stop = index
                    break
                if arrival_limit is not None and arrival > arrival_limit:
                    stop = index
                    break
        if stop <= start:
            return [], []
        rows = self._rows[start:stop]
        arrivals_out = self._arrivals[start:stop]
        self._cursor = stop
        self.source.stats.tuples_sent += stop - start
        return rows, arrivals_out

    @property
    def queued_ms(self) -> float:
        """How long this connection waited for a slot before streaming."""
        return self.opened_at_ms - self.requested_at_ms

    def close(self, at_ms: float | None = None) -> None:
        """Tear down the connection (collector `deactivate` uses this).

        ``at_ms`` (the closer's virtual time) lets a concurrency-bounded
        source free the connection slot earlier than the projected end of
        the stream when the reader abandons it mid-transfer.
        """
        self._closed = True
        if self._slot is not None and at_ms is not None:
            self.source._release_slot(self._slot, at_ms)

    def remaining(self) -> int:
        """Tuples not yet delivered (0 for unavailable sources)."""
        if self.source.profile.unavailable:
            return 0
        limit = len(self._rows)
        if self._fail_at_index is not None:
            limit = min(limit, self._fail_at_index)
        return max(0, limit - self._cursor)


def make_mirror(
    source: DataSource,
    name: str,
    profile: NetworkProfile,
    coverage: float = 1.0,
    seed: int = 0,
) -> DataSource:
    """Create a mirror of ``source`` carrying a random ``coverage`` fraction of rows.

    Mirrors with coverage < 1.0 model partially overlapping sources; coverage
    1.0 models a true mirror.  Row selection is deterministic given ``seed``.
    """
    if not 0.0 < coverage <= 1.0:
        raise ValueError(f"coverage must be in (0, 1], got {coverage}")
    base = source.relation
    if coverage >= 1.0:
        rows = list(base.rows)
    else:
        rng = random.Random(seed)
        rows = [row for row in base.rows if rng.random() < coverage]
    mirrored = Relation(base.name, base.schema, rows)
    return DataSource(name, mirrored, profile)
