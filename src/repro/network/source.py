"""Simulated autonomous data sources.

A :class:`DataSource` holds a base relation and a
:class:`~repro.network.profiles.NetworkProfile`.  When a connection is opened
it lays out the arrival timetable for every tuple; the wrapper then streams
tuples in arrival order.  Sources can be unavailable (never respond), fail
mid-transfer, or mirror another source's contents — everything the paper's
collector and rescheduling experiments need.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from repro.errors import SourceUnavailableError
from repro.network.profiles import NetworkProfile
from repro.storage.relation import Relation
from repro.storage.tuples import Row


@dataclass
class SourceStats:
    """Per-source counters maintained across a query."""

    connections_opened: int = 0
    tuples_sent: int = 0
    failures: int = 0


class DataSource:
    """An autonomous source exporting one relation over a simulated link.

    Parameters
    ----------
    name:
        Unique source identifier (e.g. ``"db2.orders"`` or ``"mirror-eu"``).
    relation:
        The data the source exports.  The exported schema is the relation's
        schema qualified with the relation name.
    profile:
        Timing/reliability model for the connection.
    """

    def __init__(self, name: str, relation: Relation, profile: NetworkProfile | None = None) -> None:
        self.name = name
        self.relation = relation
        self.profile = profile or NetworkProfile()
        self.stats = SourceStats()
        self._encoded_columns: list | None = None
        self._encoded_dictionaries: list | None = None
        self._encoded_for_cardinality = -1

    @property
    def exported_schema(self):
        """Schema visible to the integration system (qualified names)."""
        return self.relation.schema.qualified(self.relation.name)

    def encoded_column_cache(self) -> tuple[list, list]:
        """The relation translated once into typed/encoded columns.

        Source data is static, so the wrapper's translation step (the XML
        parsing/Unicode conversion of the original system — here the
        typed/dictionary-encoded column build) is done once per source and
        shared by every wrapper: connections deliver rows sequentially, so a
        block is a pair of C-level column slices over this cache.  Returns
        ``(columns, dictionaries)``; rebuilt if the relation's cardinality
        changed since the last build.
        """
        cardinality = self.relation.cardinality
        if self._encoded_columns is None or self._encoded_for_cardinality != cardinality:
            from repro.storage.columns import build_columns, make_dictionaries

            schema = self.exported_schema
            dictionaries = make_dictionaries(schema)
            rows = self.relation.rows
            if rows:
                columns = build_columns(
                    schema, list(zip(*(row.values for row in rows))), True, dictionaries
                )
            else:
                columns = [[] for _ in range(len(schema))]
            # Freeze: the cache outlives any one query and is shared by every
            # consumer downstream.  A consumer mixing in values from another
            # source (a union/collector concat, a join output accumulator)
            # must degrade its own column, never grow this dictionary.
            for dictionary in dictionaries:
                if dictionary is not None:
                    dictionary.freeze()
            self._encoded_columns = columns
            self._encoded_dictionaries = dictionaries
            self._encoded_for_cardinality = cardinality
        return self._encoded_columns, self._encoded_dictionaries

    @property
    def cardinality(self) -> int:
        return self.relation.cardinality

    @property
    def size_bytes(self) -> int:
        return self.relation.size_bytes

    def set_profile(self, profile: NetworkProfile) -> None:
        """Swap the network profile (benchmarks vary link conditions this way)."""
        self.profile = profile

    def open(self, at_ms: float = 0.0) -> "SourceConnection":
        """Open a connection at virtual time ``at_ms``."""
        self.stats.connections_opened += 1
        return SourceConnection(self, at_ms)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DataSource({self.name!r}, {self.relation.cardinality} tuples, "
            f"profile={self.profile.name!r})"
        )


class SourceConnection:
    """A single streaming connection to a :class:`DataSource`.

    The connection pre-computes arrival timestamps for all tuples when it is
    opened; :meth:`next_arrival` exposes the timestamp of the next undelivered
    tuple so that data-driven operators (the double pipelined join, the
    collector) can choose which input to service first.
    """

    def __init__(self, source: DataSource, opened_at_ms: float) -> None:
        self.source = source
        self.opened_at_ms = opened_at_ms
        self._cursor = 0
        self._closed = False
        relation = source.relation
        if source.profile.unavailable:
            self._arrivals: list[float] = []
            self._rows: list[Row] = []
        else:
            qualified = relation.qualified()
            self._rows = qualified.rows
            sizes = [row.size_bytes for row in self._rows]
            self._arrivals = source.profile.arrival_schedule(sizes, start_ms=opened_at_ms)
        limit = source.profile.drop_after_tuples
        self._fail_at_index = limit if limit is not None else None

    # -- streaming interface -----------------------------------------------------

    @property
    def exhausted(self) -> bool:
        """True once every available tuple has been delivered."""
        if self.source.profile.unavailable:
            return False  # a dead source never finishes, it times out
        return self._cursor >= len(self._rows)

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def delivered(self) -> int:
        return self._cursor

    def next_arrival(self) -> float | None:
        """Virtual arrival time of the next tuple, or ``None`` when exhausted.

        For an unavailable source this returns ``float('inf')`` — the tuple
        never arrives, which is what drives timeout events.
        """
        if self._closed:
            return None
        if self.source.profile.unavailable:
            return float("inf")
        if self.exhausted:
            return None
        return self._arrivals[self._cursor]

    def fetch(self) -> tuple[Row, float]:
        """Deliver the next tuple as ``(row, arrival_ms)``.

        Raises
        ------
        SourceUnavailableError
            If the source is dead, has failed mid-transfer, or is exhausted.
        """
        if self._closed:
            raise SourceUnavailableError(f"connection to {self.source.name!r} is closed")
        if self.source.profile.unavailable:
            self.source.stats.failures += 1
            raise SourceUnavailableError(f"source {self.source.name!r} is not responding")
        if self._fail_at_index is not None and self._cursor >= self._fail_at_index:
            self.source.stats.failures += 1
            raise SourceUnavailableError(
                f"source {self.source.name!r} failed after {self._cursor} tuples"
            )
        if self.exhausted:
            raise SourceUnavailableError(f"source {self.source.name!r} is exhausted")
        row = self._rows[self._cursor]
        arrival = self._arrivals[self._cursor]
        self._cursor += 1
        self.source.stats.tuples_sent += 1
        return row.with_arrival(arrival), arrival

    def fetch_block(
        self, max_rows: int, arrival_bound: float | None = None, arrival_limit: float | None = None
    ) -> tuple[list[Row], list[float]]:
        """Deliver up to ``max_rows`` tuples in one call (batch scan support).

        Stops *without raising* at the failure point, the timetable's end, or
        the first tuple arriving at/after ``arrival_bound`` (exclusive) or
        beyond ``arrival_limit`` (inclusive — the caller's timeout horizon);
        the caller falls back to :meth:`fetch`, which surfaces failures and
        timeouts with exact per-tuple semantics.  Rows are returned unstamped
        alongside their arrival times.
        """
        if self._closed or self.source.profile.unavailable or max_rows <= 0:
            return [], []
        start = self._cursor
        stop = len(self._rows)
        if self._fail_at_index is not None:
            stop = min(stop, self._fail_at_index)
        stop = min(stop, start + max_rows)
        if arrival_bound is not None or arrival_limit is not None:
            arrivals = self._arrivals
            # Walk rather than bisect: jittered schedules are only loosely
            # sorted, and the block is materialized row by row anyway.
            for index in range(start, stop):
                arrival = arrivals[index]
                if arrival_bound is not None and arrival >= arrival_bound:
                    stop = index
                    break
                if arrival_limit is not None and arrival > arrival_limit:
                    stop = index
                    break
        if stop <= start:
            return [], []
        rows = self._rows[start:stop]
        arrivals_out = self._arrivals[start:stop]
        self._cursor = stop
        self.source.stats.tuples_sent += stop - start
        return rows, arrivals_out

    def close(self) -> None:
        """Tear down the connection (collector `deactivate` uses this)."""
        self._closed = True

    def remaining(self) -> int:
        """Tuples not yet delivered (0 for unavailable sources)."""
        if self.source.profile.unavailable:
            return 0
        limit = len(self._rows)
        if self._fail_at_index is not None:
            limit = min(limit, self._fail_at_index)
        return max(0, limit - self._cursor)


def make_mirror(
    source: DataSource,
    name: str,
    profile: NetworkProfile,
    coverage: float = 1.0,
    seed: int = 0,
) -> DataSource:
    """Create a mirror of ``source`` carrying a random ``coverage`` fraction of rows.

    Mirrors with coverage < 1.0 model partially overlapping sources; coverage
    1.0 models a true mirror.  Row selection is deterministic given ``seed``.
    """
    if not 0.0 < coverage <= 1.0:
        raise ValueError(f"coverage must be in (0, 1], got {coverage}")
    base = source.relation
    if coverage >= 1.0:
        rows = list(base.rows)
    else:
        rng = random.Random(seed)
        rows = [row for row in base.rows if rng.random() < coverage]
    mirrored = Relation(base.name, base.schema, rows)
    return DataSource(name, mirrored, profile)
