"""Memory allocation across a plan's join operators.

The optimizer divides the query's memory pool among its join operators in
proportion to their estimated build sizes (with a floor so that no join
starves), following the memory-allocation-as-optimization-decision view the
paper takes from Bouganim et al. and Nag & DeWitt.

Under the multi-query server the "pool" is no longer a fixed per-query
number: :func:`negotiate_memory` restates the same division against what the
server-wide broker can *actually* provide right now (free capacity plus
everything revocable from other sessions' leases), and
:func:`negotiate_plan_memory` rewrites a finished plan's per-join allotments
accordingly at admission time.  The runtime grants that follow are still
individual broker leases — a grant the broker cannot honour in full triggers
real revocations then — but negotiating first means a plan admitted under
pressure *starts* with honest allotments instead of discovering the squeeze
one overflow at a time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.errors import OptimizationError

#: Smallest allotment ever granted to a join operator.
MIN_JOIN_ALLOTMENT_BYTES = 64 * 1024


@dataclass(frozen=True)
class JoinMemoryRequest:
    """One join operator's demand for memory.

    ``estimated_build_bytes`` is expressed in *columnar* byte estimates —
    the unit the hash tables actually charge against their budgets — so the
    allotment that comes back is directly comparable to the runtime overflow
    threshold (a join overflows exactly when its columnar resident bytes
    exceed its allotment).
    """

    operator_id: str
    estimated_build_bytes: int


def split_allotment_across_lanes(total_bytes: int | None, lanes: int) -> list[int | None]:
    """Divide one operator's memory allotment across its exchange lanes.

    Each lane's budget becomes an *individual* broker lease, so the same
    :data:`MIN_JOIN_ALLOTMENT_BYTES` floor applies per lane: a total below
    ``lanes * floor`` is widened rather than starving every lane (lanes
    multiply the floor, which is the honest cost of partitioning — each lane
    keeps its own hash-table skeleton resident).  ``None`` (unbounded)
    splits into unbounded lanes.
    """
    if lanes < 1:
        raise OptimizationError(f"lane count must be >= 1, got {lanes}")
    if total_bytes is None:
        return [None] * lanes
    if lanes == 1:
        return [int(total_bytes)]
    return [max(MIN_JOIN_ALLOTMENT_BYTES, int(total_bytes) // lanes)] * lanes


def columnar_build_row_bytes(
    leaf_sources: Iterable[str], statistics, assumed_bytes: int
) -> int:
    """Estimated columnar bytes of one build-side tuple over ``leaf_sources``.

    Restates the optimizer's per-tuple memory unit in the byte units the
    columnar hash tables actually charge at runtime — the *encoded* row
    footprint (dictionary codes for strings) under the engine's default
    encoding: the mean of the leaves' published columnar tuple sizes
    (:attr:`SourceStatistics.columnar_tuple_size_bytes`), with
    ``assumed_bytes`` standing in for any leaf the catalog knows nothing
    about.  The mean (not the concatenated width) is deliberate — memory
    division across a plan's joins is driven by the *cardinality* estimates
    (the quantity the paper's interleaving experiment shows to be unreliable,
    and the one replanning corrects); width-weighting the demands would let a
    deep join's concatenated schema crowd out upstream joins whenever the
    selectivity estimates are bad, which is exactly when allocation matters
    most.
    """
    sizes = []
    for name in leaf_sources:
        stats = statistics.source(name)
        size = getattr(stats, "columnar_tuple_size_bytes", None)
        sizes.append(size if size is not None else assumed_bytes)
    if not sizes:
        return assumed_bytes
    return max(1, sum(sizes) // len(sizes))


def allocate_memory(
    requests: list[JoinMemoryRequest], pool_bytes: int | None
) -> dict[str, int | None]:
    """Split ``pool_bytes`` across the requesting joins.

    With an unbounded pool every join gets an unbounded allotment.  With a
    bounded pool, allotments are proportional to estimated build sizes but
    never exceed the operator's own estimated need (with 25% headroom) —
    granting more than an operator is believed to require would waste memory
    other queries could use.  Every join receives at least
    :data:`MIN_JOIN_ALLOTMENT_BYTES`, and the total never exceeds the pool.

    Because allotments are driven by *estimates*, a join whose input size was
    badly under-estimated is starved and will overflow at runtime; this is the
    behaviour the interleaved-planning experiment exploits.

    Raises
    ------
    OptimizationError
        If the pool cannot even provide the floor allotment to every join.
    """
    if not requests:
        return {}
    if pool_bytes is None:
        return {request.operator_id: None for request in requests}
    floor_total = MIN_JOIN_ALLOTMENT_BYTES * len(requests)
    if pool_bytes < floor_total:
        raise OptimizationError(
            f"memory pool of {pool_bytes} bytes cannot give {len(requests)} joins "
            f"the minimum of {MIN_JOIN_ALLOTMENT_BYTES} bytes each"
        )
    demand_total = sum(max(1, request.estimated_build_bytes) for request in requests)
    allocations: dict[str, int] = {}
    # Grant proportionally, cap at the estimated need plus headroom, then clamp
    # to the floor and scale down if the floors pushed the total over the pool.
    for request in requests:
        demand = max(1, request.estimated_build_bytes)
        share = int(pool_bytes * demand / demand_total)
        capped = min(share, int(demand * 1.25))
        allocations[request.operator_id] = max(MIN_JOIN_ALLOTMENT_BYTES, capped)
    granted = sum(allocations.values())
    if granted > pool_bytes:
        # Scale down the above-floor portion so that the total fits.
        excess = granted - pool_bytes
        above_floor = {
            op: amount - MIN_JOIN_ALLOTMENT_BYTES
            for op, amount in allocations.items()
            if amount > MIN_JOIN_ALLOTMENT_BYTES
        }
        above_total = sum(above_floor.values())
        if above_total > 0:
            for op, surplus in above_floor.items():
                reduction = int(excess * surplus / above_total)
                allocations[op] = max(MIN_JOIN_ALLOTMENT_BYTES, allocations[op] - reduction)
    return allocations


def negotiate_memory(
    requests: list[JoinMemoryRequest], broker, requested_pool_bytes: int | None
) -> dict[str, int | None]:
    """:func:`allocate_memory` against a broker's attainable capacity.

    ``requested_pool_bytes`` is the single-tenant pool the optimizer assumed
    (``None`` = demand-driven: the joins' estimated needs with the
    allocator's 25% headroom).  The broker answers with what it could
    provide right now — free capacity plus every other lease's revocable
    headroom, never below one floor allotment per join — and the standard
    proportional division runs against that answer.  No lease is taken
    here; the runtime grants negotiate (and revoke) for real.
    """
    if not requests:
        return {}
    demand_total = sum(
        int(max(1, request.estimated_build_bytes) * 1.25) for request in requests
    )
    requested = demand_total if requested_pool_bytes is None else min(
        requested_pool_bytes, demand_total
    )
    floor_total = MIN_JOIN_ALLOTMENT_BYTES * len(requests)
    requested = max(requested, floor_total)
    if broker is None or broker.capacity_bytes is None:
        return allocate_memory(requests, requested_pool_bytes)
    attainable = broker.attainable_bytes(requested, floor_bytes=floor_total)
    return allocate_memory(requests, attainable)


def negotiate_plan_memory(plan, broker) -> dict[str, int]:
    """Rewrite a plan's join allotments to what the broker can provide.

    Walks every fragment for join nodes that already carry a bounded
    ``memory_limit_bytes`` (the optimizer's single-tenant allotment, which
    doubles as the demand estimate), renegotiates the set against the
    broker, and writes the results back onto the specs.  Returns the new
    allotments by operator id.
    """
    nodes = {}
    for fragment in plan.fragments:
        for node in fragment.root.walk():
            if getattr(node, "memory_limit_bytes", None) is not None:
                nodes[node.operator_id] = node
    if not nodes:
        return {}
    requests = [
        JoinMemoryRequest(operator_id, estimated_build_bytes=node.memory_limit_bytes)
        for operator_id, node in nodes.items()
    ]
    requested = sum(node.memory_limit_bytes for node in nodes.values())
    allocations = negotiate_memory(requests, broker, requested)
    for operator_id, allotment in allocations.items():
        if allotment is not None:
            nodes[operator_id].memory_limit_bytes = allotment
    return {op: alloc for op, alloc in allocations.items() if alloc is not None}
