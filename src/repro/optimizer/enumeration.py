"""System-R style dynamic-programming join enumeration with saved state.

The enumerator builds the classical bottom-up dynamic program over connected
relation subsets.  Its distinguishing features (Sections 3 and 6.5 of the
paper) are:

* the DP table can be **saved** and later **incrementally re-optimized** when
  the actual cardinality of a completed fragment becomes known;
* the saved state carries **usage pointers** from every subquery to the larger
  subqueries that can use it, so incremental re-optimization visits only the
  entries whose best plan could change;
* a re-optimization mode *without* usage pointers is provided as the paper's
  negative control (it must scan the whole table and ends up slower than
  replanning from scratch).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations

from repro.errors import OptimizationError
from repro.optimizer.cost_model import CardinalityEstimate, CostModel
from repro.query.conjunctive import ConjunctiveQuery, JoinPredicate


@dataclass
class DPEntry:
    """Best known plan for one relation subset."""

    subset: frozenset[str]
    cost: float
    cardinality: CardinalityEstimate
    left: frozenset[str] | None = None
    right: frozenset[str] | None = None
    predicates: tuple[JoinPredicate, ...] = ()
    #: Set when the subset corresponds to a materialized intermediate result.
    materialized_as: str | None = None

    @property
    def is_leaf(self) -> bool:
        return self.left is None


@dataclass
class UsagePointers:
    """Navigation structure over the DP table (Section 6.5).

    ``usable_by`` maps a subset to every larger enumerated subset that could
    use it as a child; ``used_by`` maps a subset to the subsets whose *best*
    plan actually uses it.  Incremental re-optimization walks ``usable_by``
    upward from the changed subset instead of scanning the whole table.
    """

    usable_by: dict[frozenset[str], set[frozenset[str]]] = field(default_factory=dict)
    used_by: dict[frozenset[str], set[frozenset[str]]] = field(default_factory=dict)

    def record_usable(self, child: frozenset[str], parent: frozenset[str]) -> None:
        self.usable_by.setdefault(child, set()).add(parent)

    def record_used(self, child: frozenset[str], parent: frozenset[str]) -> None:
        self.used_by.setdefault(child, set()).add(parent)

    def clear_used_for(self, parent: frozenset[str]) -> None:
        for users in self.used_by.values():
            users.discard(parent)

    def supersets_of(self, subset: frozenset[str]) -> set[frozenset[str]]:
        """Transitive closure of ``usable_by`` starting at ``subset``."""
        seen: set[frozenset[str]] = set()
        frontier = [subset]
        while frontier:
            current = frontier.pop()
            for parent in self.usable_by.get(current, ()):  # pragma: no branch
                if parent not in seen:
                    seen.add(parent)
                    frontier.append(parent)
        return seen


@dataclass
class OptimizerState:
    """The saved search space: DP table, usage pointers, and bookkeeping."""

    query: ConjunctiveQuery
    table: dict[frozenset[str], DPEntry] = field(default_factory=dict)
    pointers: UsagePointers = field(default_factory=UsagePointers)
    #: Groups of relations already collapsed into materialized intermediates.
    materialized_groups: list[tuple[frozenset[str], str]] = field(default_factory=list)
    nodes_visited: int = 0
    reoptimizations: int = 0

    def entry(self, subset: frozenset[str]) -> DPEntry:
        try:
            return self.table[subset]
        except KeyError:
            raise OptimizationError(f"no DP entry for subset {sorted(subset)}") from None

    @property
    def full_set(self) -> frozenset[str]:
        return frozenset(self.query.relations)

    def best_plan(self) -> DPEntry:
        return self.entry(self.full_set)


class JoinEnumerator:
    """Builds and incrementally maintains the dynamic program."""

    def __init__(self, cost_model: CostModel, count_leaf_visits: bool = True) -> None:
        self.cost_model = cost_model
        self.count_leaf_visits = count_leaf_visits

    # -- initial enumeration --------------------------------------------------------------------

    def enumerate(
        self,
        query: ConjunctiveQuery,
        primary_sources: dict[str, str],
        memory_limit_bytes: int | None = None,
    ) -> OptimizerState:
        """Build the full dynamic program for ``query``.

        ``primary_sources`` maps each mediated relation to the source whose
        statistics should be used for its leaf estimates.
        """
        state = OptimizerState(query=query)
        relations = list(query.relations)
        # Leaf entries.
        for relation in relations:
            source = primary_sources.get(relation, relation)
            cardinality = self.cost_model.source_cardinality(source)
            entry = DPEntry(
                subset=frozenset({relation}),
                cost=self.cost_model.source_scan_cost(source),
                cardinality=cardinality,
            )
            state.table[entry.subset] = entry
            if self.count_leaf_visits:
                state.nodes_visited += 1
        # Larger subsets, smallest first.
        for size in range(2, len(relations) + 1):
            for combo in combinations(relations, size):
                subset = frozenset(combo)
                self._compute_entry(state, subset, memory_limit_bytes)
        if state.full_set not in state.table:
            raise OptimizationError(
                f"query {query.name!r} has a disconnected join graph; "
                "cross products are not enumerated"
            )
        return state

    # -- entry computation ---------------------------------------------------------------------------

    def _splits(
        self, state: OptimizerState, subset: frozenset[str]
    ) -> list[tuple[frozenset[str], frozenset[str]]]:
        """Candidate (left, right) partitions of ``subset``.

        Both halves must already have DP entries, and no materialized group may
        be split across the two halves.
        """
        members = sorted(subset)
        splits = []
        # Enumerate subsets via bitmasks over the member list (excluding empty/full).
        for mask in range(1, 2 ** len(members) - 1):
            left = frozenset(members[i] for i in range(len(members)) if mask & (1 << i))
            right = subset - left
            if left not in state.table or right not in state.table:
                continue
            if any(
                group & left and group & right
                for group, _ in state.materialized_groups
                if group <= subset
            ):
                continue
            splits.append((left, right))
        return splits

    def _compute_entry(
        self,
        state: OptimizerState,
        subset: frozenset[str],
        memory_limit_bytes: int | None,
    ) -> DPEntry | None:
        """(Re)compute the best plan for ``subset``; returns None if not joinable."""
        query = state.query
        best: DPEntry | None = None
        for left, right in self._splits(state, subset):
            # Usage pointers are recorded for every partition whose halves have
            # entries ("can use it as a left or right child"), even when the
            # halves are not joinable: this guarantees that every enumerated
            # superset of a subquery is reachable through the pointers.
            state.pointers.record_usable(left, subset)
            state.pointers.record_usable(right, subset)
            predicates = query.predicates_between(left, right)
            if not predicates:
                continue  # avoid cross products
            left_entry = state.table[left]
            right_entry = state.table[right]
            cardinality = self.cost_model.join_cardinality(
                left_entry.cardinality, right_entry.cardinality, predicates
            )
            cost = (
                left_entry.cost
                + right_entry.cost
                + self.cost_model.join_cost(
                    left_entry.cardinality,
                    right_entry.cardinality,
                    cardinality,
                    memory_limit_bytes,
                )
            )
            if best is None or cost < best.cost:
                best = DPEntry(
                    subset=subset,
                    cost=cost,
                    cardinality=cardinality,
                    left=left,
                    right=right,
                    predicates=tuple(predicates),
                )
        if best is not None:
            # Only joinable (connected) subsets become dynamic-program entries;
            # they are what the work counter measures.
            state.nodes_visited += 1
            previous = state.table.get(subset)
            state.table[subset] = best
            state.pointers.clear_used_for(subset)
            state.pointers.record_used(best.left, subset)
            state.pointers.record_used(best.right, subset)
            if previous is not None and previous.materialized_as is not None:
                # A materialized subset stays materialized: keep the cheaper option.
                if previous.cost <= best.cost:
                    state.table[subset] = previous
        return state.table.get(subset)

    # -- incremental re-optimization ---------------------------------------------------------------------

    def apply_materialization(
        self,
        state: OptimizerState,
        covered: frozenset[str],
        result_name: str,
        actual_cardinality: int,
    ) -> None:
        """Replace ``covered``'s entry with the materialized result's true size."""
        entry = DPEntry(
            subset=covered,
            cost=self.cost_model.rescan_cost(actual_cardinality),
            cardinality=CardinalityEstimate(actual_cardinality, reliable=True),
            materialized_as=result_name,
        )
        state.table[covered] = entry
        if (covered, result_name) not in state.materialized_groups:
            state.materialized_groups.append((covered, result_name))

    def reoptimize_with_saved_state(
        self,
        state: OptimizerState,
        covered: frozenset[str],
        result_name: str,
        actual_cardinality: int,
        memory_limit_bytes: int | None = None,
        use_usage_pointers: bool = True,
    ) -> OptimizerState:
        """Incrementally re-optimize after ``covered`` was materialized.

        With usage pointers, only the entries reachable from ``covered`` are
        recomputed.  Without them, every entry must be visited to decide
        whether it is affected — the paper's negative control.
        """
        state.reoptimizations += 1
        self.apply_materialization(state, covered, result_name, actual_cardinality)
        if use_usage_pointers:
            affected = state.pointers.supersets_of(covered)
        else:
            # No navigation structure: inspect the entire table.
            affected = set()
            for subset in state.table:
                state.nodes_visited += 1
                if covered < subset:
                    affected.add(subset)
        for subset in sorted(affected, key=len):
            if covered < subset:
                self._compute_entry(state, subset, memory_limit_bytes)
        return state

    def replan_from_scratch(
        self,
        state: OptimizerState,
        covered: frozenset[str],
        result_name: str,
        actual_cardinality: int,
        primary_sources: dict[str, str],
        memory_limit_bytes: int | None = None,
    ) -> OptimizerState:
        """Re-optimize by rebuilding the dynamic program for the residual query.

        The covered subset collapses into a single pseudo-relation, so the
        residual query has ``n - |covered| + 1`` relations.
        """
        query = state.query
        fresh = OptimizerState(query=query)
        fresh.reoptimizations = state.reoptimizations + 1
        fresh.materialized_groups = list(state.materialized_groups)
        if (covered, result_name) not in fresh.materialized_groups:
            fresh.materialized_groups.append((covered, result_name))
        # Leaf entries: one per un-covered relation plus one per materialized group.
        covered_all: set[str] = set()
        for group, name in fresh.materialized_groups:
            cardinality = (
                actual_cardinality
                if name == result_name
                else state.entry(group).cardinality.value
            )
            fresh.table[group] = DPEntry(
                subset=group,
                cost=self.cost_model.rescan_cost(cardinality),
                cardinality=CardinalityEstimate(cardinality, reliable=True),
                materialized_as=name,
            )
            fresh.nodes_visited += 1
            covered_all.update(group)
        for relation in query.relations:
            if relation in covered_all:
                continue
            source = primary_sources.get(relation, relation)
            fresh.table[frozenset({relation})] = DPEntry(
                subset=frozenset({relation}),
                cost=self.cost_model.source_scan_cost(source),
                cardinality=self.cost_model.source_cardinality(source),
            )
            fresh.nodes_visited += 1
        # Enumerate combinations of the residual units (groups + single relations).
        units: list[frozenset[str]] = [group for group, _ in fresh.materialized_groups]
        units.extend(
            frozenset({relation})
            for relation in query.relations
            if relation not in covered_all
        )
        for size in range(2, len(units) + 1):
            for combo in combinations(units, size):
                subset = frozenset().union(*combo)
                self._compute_entry(fresh, subset, memory_limit_bytes)
        return fresh
