"""The Tukwila query optimizer.

The optimizer takes a reformulated query and produces an annotated,
fragmented query execution plan plus the rules that drive runtime adaptivity.
Its non-traditional aspects (Section 3):

* it may emit a **partial plan** covering only the first join when statistics
  are missing or uncertain, deferring the rest until real cardinalities exist;
* it attaches **event-condition-action rules** (re-optimization checks at
  materialization points, reschedule-on-timeout, overflow policies);
* it **saves its search space** (:class:`~repro.optimizer.enumeration.OptimizerState`)
  so re-optimization after a fragment completes is incremental.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.catalog.catalog import DataSourceCatalog
from repro.errors import OptimizationError
from repro.optimizer.cost_model import CostModel, CostParameters
from repro.optimizer.enumeration import DPEntry, JoinEnumerator, OptimizerState
from repro.optimizer.memory_alloc import (
    JoinMemoryRequest,
    allocate_memory,
    columnar_build_row_bytes,
)
from repro.optimizer.rulegen import rules_for_fragment
from repro.plan.fragments import Fragment, QueryPlan
from repro.plan.physical import (
    JoinImplementation,
    OperatorSpec,
    OperatorType,
    OverflowMethod,
    collector,
    join,
    table_scan,
    wrapper_scan,
)
from repro.query.reformulation import ReformulatedQuery


class PlanningStrategy(str, Enum):
    """How the optimizer fragments the plan (the Figure 5 strategies)."""

    PIPELINE = "pipeline"
    MATERIALIZE = "materialize"
    MATERIALIZE_REPLAN = "materialize_replan"
    PARTIAL = "partial"


class ReoptimizationMode(str, Enum):
    """How re-optimization reuses prior work (the Section 6.5 comparison)."""

    SAVED_STATE = "saved_state"
    SAVED_STATE_NO_POINTERS = "saved_state_no_pointers"
    SCRATCH = "scratch"


@dataclass
class OptimizerConfig:
    """Optimizer tunables.

    Parameters
    ----------
    dpj_max_build_bytes:
        If a join's (reliable) estimated combined input size exceeds this,
        the optimizer chooses a hybrid hash join instead of the double
        pipelined join.
    replan_factor:
        A fragment triggers re-optimization when its actual cardinality is
        off by at least this factor (the paper uses 2).
    reschedule_on_timeout:
        Whether timeout rules (query scrambling) are attached to fragments.
    default_overflow_method:
        Overflow strategy configured on double pipelined joins.
    memory_pool_bytes:
        Query memory pool divided among join operators (``None`` = unbounded).
    assumed_tuple_size_bytes:
        Tuple size used when the catalog does not know it.
    """

    dpj_max_build_bytes: int | None = None
    replan_factor: float = 2.0
    reschedule_on_timeout: bool = True
    default_overflow_method: OverflowMethod = OverflowMethod.LEFT_FLUSH
    memory_pool_bytes: int | None = None
    assumed_tuple_size_bytes: int = 64
    cost_parameters: CostParameters = field(default_factory=CostParameters)


@dataclass
class OptimizationResult:
    """Everything the optimizer hands to the execution layer."""

    plan: QueryPlan
    state: OptimizerState
    primary_sources: dict[str, str]
    strategy: PlanningStrategy
    statistics_reliable: bool


class Optimizer:
    """System-R style optimizer with partial plans, rules, and saved state."""

    def __init__(self, catalog: DataSourceCatalog, config: OptimizerConfig | None = None) -> None:
        self.catalog = catalog
        self.config = config or OptimizerConfig()
        self.cost_model = CostModel(catalog, self.config.cost_parameters)
        self.enumerator = JoinEnumerator(self.cost_model)

    # -- leaf construction --------------------------------------------------------------------

    def _leaf_spec(self, reformulated: ReformulatedQuery, relation: str, suffix: str) -> OperatorSpec:
        """Build the access spec for one mediated relation leaf."""
        leaf = reformulated.leaf(relation)
        if not leaf.is_disjunctive:
            return wrapper_scan(
                leaf.primary.source_name, operator_id=f"scan_{relation}_{suffix}"
            )
        children = [
            wrapper_scan(alt.source_name, operator_id=f"scan_{relation}_{alt.source_name}_{suffix}")
            for alt in leaf.alternatives
        ]
        dedup_keys = list(
            self.catalog.source(leaf.primary.source_name).exported_schema.names
        )
        spec = collector(children, operator_id=f"coll_{relation}_{suffix}")
        spec.params["dedup_keys"] = dedup_keys
        # Start with the primary source plus one fallback mirror; further
        # mirrors are contacted only on failure or by policy rules.
        initially = [children[0].operator_id]
        if len(children) > 1:
            initially.append(children[1].operator_id)
        spec.params["initially_active"] = initially
        return spec

    def _primary_sources(self, reformulated: ReformulatedQuery) -> dict[str, str]:
        return {
            relation: reformulated.leaf(relation).primary.source_name
            for relation in reformulated.query.relations
        }

    # -- join tree construction ----------------------------------------------------------------------

    def _choose_join_implementation(
        self, left: DPEntry, right: DPEntry
    ) -> JoinImplementation:
        threshold = self.config.dpj_max_build_bytes
        if threshold is None:
            return JoinImplementation.DOUBLE_PIPELINED
        if not (left.cardinality.reliable and right.cardinality.reliable):
            return JoinImplementation.DOUBLE_PIPELINED
        build_bytes = (
            left.cardinality.value + right.cardinality.value
        ) * self.config.assumed_tuple_size_bytes
        if build_bytes > threshold:
            return JoinImplementation.HYBRID_HASH
        return JoinImplementation.DOUBLE_PIPELINED

    def _join_spec_for_entry(
        self,
        state: OptimizerState,
        entry: DPEntry,
        reformulated: ReformulatedQuery,
        suffix: str,
        leaf_override: dict[frozenset[str], OperatorSpec] | None = None,
    ) -> OperatorSpec:
        """Recursively build the operator tree for a DP entry."""
        leaf_override = leaf_override or {}
        if entry.subset in leaf_override:
            return leaf_override[entry.subset]
        if entry.materialized_as is not None:
            return table_scan(entry.materialized_as, operator_id=f"tscan_{entry.materialized_as}_{suffix}")
        if entry.is_leaf:
            (relation,) = tuple(entry.subset)
            spec = self._leaf_spec(reformulated, relation, suffix)
            spec.estimated_cardinality = entry.cardinality.value
            spec.estimate_reliable = entry.cardinality.reliable
            return spec
        left_entry = state.entry(entry.left)
        right_entry = state.entry(entry.right)
        left_spec = self._join_spec_for_entry(state, left_entry, reformulated, suffix, leaf_override)
        right_spec = self._join_spec_for_entry(state, right_entry, reformulated, suffix, leaf_override)
        implementation = self._choose_join_implementation(left_entry, right_entry)
        if implementation == JoinImplementation.HYBRID_HASH:
            # The smaller input becomes the build (inner/right) side.
            if left_entry.cardinality.value < right_entry.cardinality.value:
                left_entry, right_entry = right_entry, left_entry
                left_spec, right_spec = right_spec, left_spec
        predicates = [p.oriented(_any_member(p.tables(), left_entry.subset)) for p in entry.predicates]
        left_keys = [p.left_qualified for p in predicates]
        right_keys = [p.right_qualified for p in predicates]
        spec = join(
            left_spec,
            right_spec,
            left_keys,
            right_keys,
            implementation=implementation,
            estimated_cardinality=entry.cardinality.value,
            overflow_method=self.config.default_overflow_method,
            operator_id=f"join_{'_'.join(sorted(entry.subset))}_{suffix}",
        )
        spec.estimate_reliable = entry.cardinality.reliable
        return spec

    # -- fragmentation ----------------------------------------------------------------------------------

    def _linear_join_order(self, state: OptimizerState, entry: DPEntry) -> list[DPEntry]:
        """Join nodes of the best plan in bottom-up execution order."""
        if entry.is_leaf or entry.materialized_as is not None:
            return []
        order: list[DPEntry] = []
        order.extend(self._linear_join_order(state, state.entry(entry.left)))
        order.extend(self._linear_join_order(state, state.entry(entry.right)))
        order.append(entry)
        return order

    def _fragment_per_join(
        self,
        state: OptimizerState,
        reformulated: ReformulatedQuery,
        strategy: PlanningStrategy,
        suffix: str,
    ) -> tuple[list[Fragment], dict[str, set[str]]]:
        """Build one fragment per join of the best plan (materializing strategies)."""
        query = reformulated.query
        best = state.best_plan()
        join_entries = self._linear_join_order(state, best)
        fragments: list[Fragment] = []
        dependencies: dict[str, set[str]] = {}
        produced: dict[frozenset[str], tuple[str, str]] = {}  # subset -> (result, fragment)
        for index, entry in enumerate(join_entries, start=1):
            result_name = f"{query.name}_{suffix}_r{index}"
            fragment_id = f"{query.name}_{suffix}_f{index}"
            leaf_override: dict[frozenset[str], OperatorSpec] = {}
            deps: set[str] = set()
            for side in (entry.left, entry.right):
                if side in produced:
                    prior_result, prior_fragment = produced[side]
                    rescan = table_scan(prior_result, operator_id=f"tscan_{prior_result}")
                    rescan.estimated_cardinality = state.entry(side).cardinality.value
                    rescan.estimate_reliable = state.entry(side).cardinality.reliable
                    leaf_override[side] = rescan
                    deps.add(prior_fragment)
            root = self._join_spec_for_entry(state, entry, reformulated, f"{suffix}{index}", leaf_override)
            fragment = Fragment(
                fragment_id=fragment_id,
                root=root,
                result_name=result_name,
                estimated_cardinality=entry.cardinality.value,
                estimate_reliable=entry.cardinality.reliable,
                covers=entry.subset,
            )
            fragment.rules = rules_for_fragment(
                fragment,
                replan_factor=self.config.replan_factor,
                reschedule_on_timeout=self.config.reschedule_on_timeout,
            )
            if strategy != PlanningStrategy.MATERIALIZE_REPLAN:
                fragment.rules = [
                    rule for rule in fragment.rules if not rule.name.startswith("replan-")
                ]
            fragments.append(fragment)
            if deps:
                dependencies[fragment_id] = deps
            produced[entry.subset] = (result_name, fragment_id)
        return fragments, dependencies

    def _single_fragment(
        self,
        state: OptimizerState,
        reformulated: ReformulatedQuery,
        suffix: str,
    ) -> Fragment:
        """One fully pipelined fragment for the whole query."""
        query = reformulated.query
        best = state.best_plan()
        root = self._join_spec_for_entry(state, best, reformulated, suffix)
        fragment = Fragment(
            fragment_id=f"{query.name}_{suffix}_f1",
            root=root,
            result_name=f"{query.name}_{suffix}_answer",
            estimated_cardinality=best.cardinality.value,
            estimate_reliable=best.cardinality.reliable,
            covers=best.subset,
        )
        fragment.rules = rules_for_fragment(
            fragment,
            replan_factor=self.config.replan_factor,
            reschedule_on_timeout=self.config.reschedule_on_timeout,
        )
        fragment.rules = [r for r in fragment.rules if not r.name.startswith("replan-")]
        return fragment

    def _allocate_memory(self, fragments: list[Fragment]) -> None:
        """Divide the memory pool among all join operators in the plan.

        A join's demand is the estimated size of the inputs it must hold in
        memory: both inputs for the double pipelined join, the smaller input
        for a hybrid hash join.  Poor selectivity estimates therefore starve
        exactly the joins whose inputs were under-estimated — which is what
        re-optimization later corrects.
        """
        requests = []
        statistics = self.catalog.statistics
        assumed = self.config.assumed_tuple_size_bytes
        for fragment in fragments:
            # Demands are stated in columnar bytes — the unit the hash tables
            # charge at runtime, so an allotment is directly an overflow
            # threshold.  The per-tuple unit is one fragment-wide estimate
            # (the mean columnar size of the scanned sources): the *division*
            # of memory between joins stays driven by the cardinality
            # estimates, which is the quantity this experiment-bearing code
            # path knows to be unreliable and that replanning corrects.
            unit = columnar_build_row_bytes(
                fragment.root.leaf_sources(), statistics, assumed
            )
            for node in fragment.root.walk():
                if node.operator_type == OperatorType.JOIN:
                    child_estimates = [
                        child.estimated_cardinality
                        if child.estimated_cardinality is not None
                        else statistics.default_cardinality
                        for child in node.children
                    ]
                    if node.implementation == JoinImplementation.HYBRID_HASH.value:
                        build_tuples = min(child_estimates)
                    else:
                        build_tuples = sum(child_estimates)
                    requests.append(
                        JoinMemoryRequest(
                            node.operator_id,
                            estimated_build_bytes=build_tuples * unit,
                        )
                    )
        allocations = allocate_memory(requests, self.config.memory_pool_bytes)
        for fragment in fragments:
            for node in fragment.root.walk():
                if node.operator_id in allocations:
                    node.memory_limit_bytes = allocations[node.operator_id]

    # -- public API ---------------------------------------------------------------------------------------

    def should_plan_partially(self, reformulated: ReformulatedQuery) -> bool:
        """Heuristic from Section 3: plan partially when statistics are unreliable."""
        return not self.cost_model.has_reliable_statistics(
            reformulated.query, self._primary_sources(reformulated)
        )

    def optimize(
        self,
        reformulated: ReformulatedQuery,
        strategy: PlanningStrategy = PlanningStrategy.MATERIALIZE_REPLAN,
        plan_suffix: str = "p1",
    ) -> OptimizationResult:
        """Produce a plan (and saved state) for a reformulated query."""
        query = reformulated.query
        primary_sources = self._primary_sources(reformulated)
        state = self.enumerator.enumerate(
            query, primary_sources, memory_limit_bytes=self.config.memory_pool_bytes
        )
        reliable = self.cost_model.has_reliable_statistics(query, primary_sources)

        if len(query.relations) == 1 or strategy == PlanningStrategy.PIPELINE:
            fragments = [self._single_fragment(state, reformulated, plan_suffix)]
            dependencies: dict[str, set[str]] = {}
        else:
            fragments, dependencies = self._fragment_per_join(
                state, reformulated, strategy, plan_suffix
            )
            if strategy == PlanningStrategy.PARTIAL and len(fragments) > 1:
                first = fragments[0]
                fragments = [first]
                dependencies = {}
        self._allocate_memory(fragments)
        plan = QueryPlan(
            query_name=query.name,
            fragments=fragments,
            dependencies=dependencies,
            partial=(strategy == PlanningStrategy.PARTIAL and len(query.relations) > 2),
        )
        return OptimizationResult(
            plan=plan,
            state=state,
            primary_sources=primary_sources,
            strategy=strategy,
            statistics_reliable=reliable,
        )

    def reoptimize(
        self,
        previous: OptimizationResult,
        reformulated: ReformulatedQuery,
        materializations: list[tuple[frozenset[str], str, int]],
        mode: ReoptimizationMode = ReoptimizationMode.SAVED_STATE,
        plan_suffix: str = "p2",
    ) -> OptimizationResult:
        """Re-optimize after one or more fragments materialized.

        ``materializations`` lists ``(covered relations, result name, actual
        cardinality)`` for each completed fragment whose result should be
        treated as a base relation.  The returned plan joins those results
        with the remaining relations; the mode controls how much of the
        previous dynamic program is reused.
        """
        if not materializations:
            raise OptimizationError("re-optimization requires at least one materialization")
        state = previous.state
        for covered, result_name, actual_cardinality in materializations:
            if not covered:
                raise OptimizationError("re-optimization requires non-empty covered sets")
            if mode == ReoptimizationMode.SCRATCH:
                state = self.enumerator.replan_from_scratch(
                    state,
                    covered,
                    result_name,
                    actual_cardinality,
                    previous.primary_sources,
                    memory_limit_bytes=self.config.memory_pool_bytes,
                )
            else:
                state = self.enumerator.reoptimize_with_saved_state(
                    state,
                    covered,
                    result_name,
                    actual_cardinality,
                    memory_limit_bytes=self.config.memory_pool_bytes,
                    use_usage_pointers=(mode == ReoptimizationMode.SAVED_STATE),
                )
        fragments, dependencies = self._fragment_per_join(
            state, reformulated, previous.strategy, plan_suffix
        )
        # Drop fragments that only re-materialize already-covered subsets.
        covered_union: frozenset[str] = frozenset().union(
            *(covered for covered, _, _ in materializations)
        )
        fragments = [f for f in fragments if not f.covers <= covered_union]
        if not fragments:
            raise OptimizationError(
                "re-optimization produced no remaining fragments; the query was already complete"
            )
        kept_ids = {f.fragment_id for f in fragments}
        dependencies = {
            fid: {d for d in deps if d in kept_ids}
            for fid, deps in dependencies.items()
            if fid in kept_ids
        }
        dependencies = {fid: deps for fid, deps in dependencies.items() if deps}
        self._allocate_memory(fragments)
        plan = QueryPlan(
            query_name=reformulated.query.name,
            fragments=fragments,
            dependencies=dependencies,
            partial=False,
        )
        return OptimizationResult(
            plan=plan,
            state=state,
            primary_sources=previous.primary_sources,
            strategy=previous.strategy,
            statistics_reliable=previous.statistics_reliable,
        )


def _any_member(tables: frozenset[str], subset: frozenset[str]) -> str:
    """The table of ``tables`` that lies in ``subset`` (for predicate orientation)."""
    for table in tables:
        if table in subset:
            return table
    raise OptimizationError(f"predicate tables {sorted(tables)} do not intersect {sorted(subset)}")
