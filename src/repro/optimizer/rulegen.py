"""Rule generation: the optimizer's adaptive-behaviour output.

Besides the annotated operator tree, the Tukwila optimizer emits the
event-condition-action rules that define runtime adaptivity: when to
re-optimize at materialization points, when to reschedule on source timeouts,
and how double pipelined joins should resolve memory overflow.
"""

from __future__ import annotations

from repro.plan.fragments import Fragment
from repro.plan.physical import OperatorSpec, OperatorType, OverflowMethod
from repro.plan.rules import (
    Compare,
    EventType,
    Or,
    Rule,
    constant,
    event_value,
    replan,
    reschedule,
    set_overflow_method,
)


def replan_rule(
    fragment: Fragment,
    estimated_cardinality: int,
    factor: float = 2.0,
    name: str | None = None,
) -> Rule:
    """Re-optimize when a fragment's actual result size is off by ``factor``.

    The generated rule follows the paper's example::

        when closed(frag1)
        if card(join1) >= 2 * est_card(join1) then replan

    The ``closed`` event for a fragment carries the actual result cardinality
    as its value, so the condition compares the event value to the estimate.
    """
    over = Compare(event_value(), ">=", constant(estimated_cardinality), scale=factor)
    under = Compare(event_value(), "<=", constant(estimated_cardinality), scale=1.0 / factor)
    return Rule(
        name=name or f"replan-{fragment.fragment_id}",
        owner=fragment.fragment_id,
        event_type=EventType.CLOSED,
        subject=fragment.fragment_id,
        condition=Or(over, under),
        actions=[replan()],
    )


def timeout_reschedule_rule(source_name: str, owner: str, name: str | None = None) -> Rule:
    """Reschedule the plan when ``source_name`` times out (query scrambling)."""
    return Rule(
        name=name or f"reschedule-{source_name}",
        owner=owner,
        event_type=EventType.TIMEOUT,
        subject=source_name,
        actions=[reschedule()],
    )


def timeout_replan_rule(source_name: str, owner: str, name: str | None = None) -> Rule:
    """Re-optimize when ``source_name`` times out (used when rescheduling is exhausted)."""
    return Rule(
        name=name or f"replan-timeout-{source_name}",
        owner=owner,
        event_type=EventType.TIMEOUT,
        subject=source_name,
        actions=[replan()],
    )


def overflow_method_rule(
    join_spec: OperatorSpec,
    method: OverflowMethod,
    owner: str,
    name: str | None = None,
) -> Rule:
    """Select the overflow strategy of a double pipelined join when it first overflows."""
    return Rule(
        name=name or f"overflow-{join_spec.operator_id}",
        owner=owner,
        event_type=EventType.OUT_OF_MEMORY,
        subject=join_spec.operator_id,
        actions=[set_overflow_method(join_spec.operator_id, method.value)],
    )


def rules_for_fragment(
    fragment: Fragment,
    replan_factor: float = 2.0,
    reschedule_on_timeout: bool = True,
    overflow_method: OverflowMethod | None = None,
) -> list[Rule]:
    """The standard rule set the optimizer attaches to a fragment.

    * a re-optimization rule when the fragment's estimate is unreliable,
    * a reschedule-on-timeout rule per source the fragment reads,
    * optionally, an overflow-method rule for each double pipelined join.
    """
    rules: list[Rule] = []
    if not fragment.estimate_reliable and fragment.estimated_cardinality is not None and not fragment.is_final:
        rules.append(replan_rule(fragment, fragment.estimated_cardinality, replan_factor))
    if reschedule_on_timeout:
        for source in fragment.sources():
            rules.append(
                timeout_reschedule_rule(
                    source,
                    owner=fragment.fragment_id,
                    name=f"reschedule-{fragment.fragment_id}-{source}",
                )
            )
    if overflow_method is not None:
        for node in fragment.root.walk():
            if node.operator_type == OperatorType.JOIN and node.implementation == "double_pipelined":
                rules.append(
                    overflow_method_rule(
                        node,
                        overflow_method,
                        owner=fragment.fragment_id,
                        name=f"overflow-{fragment.fragment_id}-{node.operator_id}",
                    )
                )
    return rules
