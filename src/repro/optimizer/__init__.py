"""The Tukwila query optimizer: cost model, DP enumeration, saved state, rules."""

from repro.optimizer.cost_model import CardinalityEstimate, CostModel, CostParameters
from repro.optimizer.enumeration import DPEntry, JoinEnumerator, OptimizerState, UsagePointers
from repro.optimizer.memory_alloc import (
    MIN_JOIN_ALLOTMENT_BYTES,
    JoinMemoryRequest,
    allocate_memory,
)
from repro.optimizer.optimizer import (
    OptimizationResult,
    Optimizer,
    OptimizerConfig,
    PlanningStrategy,
    ReoptimizationMode,
)
from repro.optimizer.rulegen import (
    overflow_method_rule,
    replan_rule,
    rules_for_fragment,
    timeout_replan_rule,
    timeout_reschedule_rule,
)

__all__ = [
    "CardinalityEstimate",
    "CostModel",
    "CostParameters",
    "DPEntry",
    "JoinEnumerator",
    "JoinMemoryRequest",
    "MIN_JOIN_ALLOTMENT_BYTES",
    "OptimizationResult",
    "Optimizer",
    "OptimizerConfig",
    "OptimizerState",
    "PlanningStrategy",
    "ReoptimizationMode",
    "UsagePointers",
    "allocate_memory",
    "overflow_method_rule",
    "replan_rule",
    "rules_for_fragment",
    "timeout_replan_rule",
    "timeout_reschedule_rule",
]
