"""The optimizer's cost model.

Costs are expressed in virtual milliseconds of *response time*, matching the
execution engine's clock: transferring tuples from sources, per-tuple CPU,
hash-table build/probe work, spill I/O when an operator's estimated build size
exceeds its memory allotment, and materialization writes.  Cardinality
estimation follows the classical System-R formulas, using catalog join
selectivities when they are known and documented defaults when they are not —
the absence of reliable selectivities is precisely what the interleaved
planning experiments exploit.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.catalog.catalog import DataSourceCatalog
from repro.catalog.statistics import DEFAULT_JOIN_SELECTIVITY
from repro.query.conjunctive import ConjunctiveQuery, JoinPredicate


@dataclass(frozen=True)
class CostParameters:
    """Tunable constants of the cost model (all times in virtual ms)."""

    per_tuple_cpu_ms: float = 0.002
    per_tuple_build_ms: float = 0.003
    per_tuple_probe_ms: float = 0.002
    per_tuple_materialize_ms: float = 0.004
    per_tuple_spill_ms: float = 0.3
    default_transfer_rate_kbps: float = 400.0
    default_access_cost_ms: float = 50.0
    default_tuple_size_bytes: int = 64


@dataclass(frozen=True)
class CardinalityEstimate:
    """An estimated cardinality plus whether it rests on real statistics."""

    value: int
    reliable: bool

    def scaled(self, factor: float, reliable: bool | None = None) -> "CardinalityEstimate":
        return CardinalityEstimate(
            max(1, int(self.value * factor)),
            self.reliable if reliable is None else reliable,
        )


class CostModel:
    """Cardinality and cost estimation over the data source catalog."""

    def __init__(self, catalog: DataSourceCatalog, params: CostParameters | None = None) -> None:
        self.catalog = catalog
        self.params = params or CostParameters()

    # -- leaf (source) estimates ---------------------------------------------------------------

    def source_cardinality(self, source_name: str) -> CardinalityEstimate:
        """Cardinality of a source scan."""
        stats = self.catalog.statistics.source(source_name)
        if stats.has_cardinality:
            return CardinalityEstimate(stats.cardinality or 1, reliable=True)
        return CardinalityEstimate(self.catalog.statistics.default_cardinality, reliable=False)

    def source_scan_cost(self, source_name: str) -> float:
        """Response-time cost of streaming one source completely."""
        stats = self.catalog.statistics.source(source_name)
        cardinality = self.source_cardinality(source_name).value
        tuple_size = stats.tuple_size_bytes or self.params.default_tuple_size_bytes
        rate_kbps = stats.transfer_rate_kbps or self.params.default_transfer_rate_kbps
        access = (
            stats.access_cost_ms
            if stats.access_cost_ms is not None
            else self.params.default_access_cost_ms
        )
        transfer_ms = (cardinality * tuple_size) / (rate_kbps * 1.024)
        cpu_ms = cardinality * self.params.per_tuple_cpu_ms
        return access + transfer_ms + cpu_ms

    # -- join estimates -----------------------------------------------------------------------------

    def join_selectivity(
        self, predicates: list[JoinPredicate], left_card: int, right_card: int
    ) -> tuple[float, bool]:
        """Combined selectivity of the equi-join predicates and its reliability."""
        if not predicates:
            return 1.0, True  # cross product: "reliable" in that it needs no statistics
        selectivity = 1.0
        reliable = True
        registry = self.catalog.statistics
        for predicate in predicates:
            if registry.knows_join_selectivity(
                predicate.left_qualified, predicate.right_qualified
            ):
                selectivity *= registry.join_selectivity(
                    predicate.left_qualified, predicate.right_qualified
                )
            else:
                selectivity *= DEFAULT_JOIN_SELECTIVITY
                reliable = False
        return selectivity, reliable

    def join_cardinality(
        self,
        left: CardinalityEstimate,
        right: CardinalityEstimate,
        predicates: list[JoinPredicate],
    ) -> CardinalityEstimate:
        """System-R style join size estimate."""
        selectivity, selectivity_reliable = self.join_selectivity(
            predicates, left.value, right.value
        )
        value = max(1, int(left.value * right.value * selectivity))
        return CardinalityEstimate(
            value, reliable=left.reliable and right.reliable and selectivity_reliable
        )

    def join_cost(
        self,
        left: CardinalityEstimate,
        right: CardinalityEstimate,
        output: CardinalityEstimate,
        memory_limit_bytes: int | None,
        tuple_size_bytes: int | None = None,
        pipelined: bool = True,
    ) -> float:
        """Cost of performing one join given the inputs' estimated sizes.

        ``pipelined`` distinguishes the double pipelined join (both inputs
        resident) from a hybrid hash join (only the smaller input resident).
        """
        params = self.params
        tuple_size = tuple_size_bytes or params.default_tuple_size_bytes
        build_tuples = left.value + right.value if pipelined else min(left.value, right.value)
        probe_tuples = left.value + right.value if pipelined else max(left.value, right.value)
        cost = (
            build_tuples * params.per_tuple_build_ms
            + probe_tuples * params.per_tuple_probe_ms
            + output.value * params.per_tuple_cpu_ms
        )
        if memory_limit_bytes is not None:
            needed = build_tuples * tuple_size
            if needed > memory_limit_bytes:
                spilled = (needed - memory_limit_bytes) / tuple_size
                cost += spilled * params.per_tuple_spill_ms
        return cost

    def materialization_cost(self, cardinality: CardinalityEstimate) -> float:
        """Cost of writing an intermediate result to the local store."""
        return cardinality.value * self.params.per_tuple_materialize_ms

    def rescan_cost(self, cardinality: int) -> float:
        """Cost of reading a materialized intermediate result back."""
        return cardinality * self.params.per_tuple_cpu_ms

    # -- query-level helpers ---------------------------------------------------------------------------

    def has_reliable_statistics(self, query: ConjunctiveQuery, primary_sources: dict[str, str]) -> bool:
        """True when every leaf cardinality and join selectivity is known."""
        for relation in query.relations:
            source = primary_sources.get(relation, relation)
            if not self.catalog.statistics.knows_cardinality(source):
                return False
        for predicate in query.join_predicates:
            if not self.catalog.statistics.knows_join_selectivity(
                predicate.left_qualified, predicate.right_qualified
            ):
                return False
        return True
