"""The Tukwila system facade: the library's primary entry point.

:class:`Tukwila` ties the components together the way Figure 2 of the paper
does: users register data sources (wrappers + catalog metadata), define or
derive a mediated schema, and pose conjunctive queries; the system reformulates,
optimizes with partial plans and rules as appropriate, and executes with the
adaptive engine, interleaving planning and execution.
"""

from __future__ import annotations

from repro.catalog.catalog import DataSourceCatalog
from repro.catalog.source_desc import SourceDescription
from repro.catalog.statistics import SourceStatistics
from repro.engine.context import EngineConfig, ExecutionContext
from repro.core.interleaving import InterleavedExecutionDriver, QueryResult
from repro.errors import QueryError
from repro.network.cache import SourceCache
from repro.network.source import DataSource
from repro.optimizer.optimizer import (
    OptimizationResult,
    Optimizer,
    OptimizerConfig,
    PlanningStrategy,
    ReoptimizationMode,
)
from repro.query.conjunctive import ConjunctiveQuery
from repro.query.mediated import MediatedSchema
from repro.query.parser import parse_query
from repro.query.reformulation import ReformulatedQuery, Reformulator


class Tukwila:
    """An adaptive query execution system for data integration.

    Parameters
    ----------
    mediated_schema:
        The virtual schema users query against.  When omitted, an empty
        schema is created and relations are added implicitly as sources are
        registered (each source's relation name becomes a mediated relation).
    optimizer_config / engine_config:
        Tunables for planning and execution.
    reoptimization_mode:
        How re-optimization reuses the saved search space.
    """

    def __init__(
        self,
        mediated_schema: MediatedSchema | None = None,
        optimizer_config: OptimizerConfig | None = None,
        engine_config: EngineConfig | None = None,
        reoptimization_mode: ReoptimizationMode = ReoptimizationMode.SAVED_STATE,
    ) -> None:
        self.mediated_schema = mediated_schema or MediatedSchema()
        self.catalog = DataSourceCatalog()
        self.optimizer = Optimizer(self.catalog, optimizer_config)
        self.reformulator = Reformulator(self.catalog)
        self.engine_config = engine_config or EngineConfig()
        self.reoptimization_mode = reoptimization_mode
        # One cache shared by every query this system executes (when enabled).
        self.source_cache = (
            SourceCache(max_age_ms=self.engine_config.source_cache_max_age_ms)
            if self.engine_config.enable_source_caching
            else None
        )

    # -- registration ----------------------------------------------------------------------

    def register_source(
        self,
        source: DataSource,
        description: SourceDescription | None = None,
        statistics: SourceStatistics | None = None,
        publish_statistics: bool = True,
    ) -> None:
        """Register a data source (and implicitly extend the mediated schema)."""
        self.catalog.register_source(
            source,
            description=description,
            statistics=statistics,
            publish_statistics=publish_statistics,
        )
        mediated_relation = (
            description.mediated_relation if description is not None else source.relation.name
        )
        if mediated_relation not in self.mediated_schema:
            self.mediated_schema.add_relation(mediated_relation, source.exported_schema)

    def declare_mirrors(self, source_a: str, source_b: str) -> None:
        """Record that two registered sources mirror each other."""
        self.catalog.overlap.set_mirrors(source_a, source_b)

    def set_overlap(self, container: str, contained: str, probability: float) -> None:
        """Record partial overlap between two registered sources."""
        self.catalog.overlap.set_overlap(container, contained, probability)

    # -- query processing --------------------------------------------------------------------------

    def reformulate(self, query: ConjunctiveQuery | str, name: str = "query") -> ReformulatedQuery:
        """Reformulate a mediated query (SQL text or a ConjunctiveQuery) over the sources."""
        if isinstance(query, str):
            query = parse_query(query, name=name)
        self.mediated_schema.validate_query_relations(list(query.relations))
        if not query.join_connected():
            raise QueryError(
                f"query {query.name!r} has a disconnected join graph; "
                "add join predicates connecting every relation"
            )
        return self.reformulator.reformulate(query)

    def plan(
        self,
        query: ConjunctiveQuery | str,
        strategy: PlanningStrategy | None = None,
        name: str = "query",
    ) -> OptimizationResult:
        """Optimize a query without executing it (useful for inspection)."""
        reformulated = self.reformulate(query, name=name)
        chosen = strategy or self._default_strategy(reformulated)
        return self.optimizer.optimize(reformulated, strategy=chosen)

    def execute(
        self,
        query: ConjunctiveQuery | str,
        strategy: PlanningStrategy | None = None,
        name: str = "query",
        context: ExecutionContext | None = None,
    ) -> QueryResult:
        """Reformulate, optimize, and execute a query with interleaved planning."""
        reformulated = self.reformulate(query, name=name)
        chosen = strategy or self._default_strategy(reformulated)
        driver = InterleavedExecutionDriver(
            self.catalog,
            self.optimizer,
            engine_config=self.engine_config,
            reoptimization_mode=self.reoptimization_mode,
        )
        if context is None:
            context = self.new_context(query_name=reformulated.query.name)
        return driver.run(reformulated, strategy=chosen, context=context)

    def _default_strategy(self, reformulated: ReformulatedQuery) -> PlanningStrategy:
        """Partial planning when statistics are missing, otherwise materialize+replan."""
        if self.optimizer.should_plan_partially(reformulated):
            return PlanningStrategy.PARTIAL
        return PlanningStrategy.MATERIALIZE_REPLAN

    def new_context(self, query_name: str = "query") -> ExecutionContext:
        """A fresh execution context bound to this system's catalog and cache."""
        return ExecutionContext(
            self.catalog,
            config=self.engine_config,
            query_name=query_name,
            source_cache=self.source_cache,
        )
