"""Collector policies: rule sets governing access to overlapping sources.

A collector policy decides which sources to contact, in what order, and when
to give up on a slow or failed mirror.  Policies are expressed as ordinary
event-condition-action rules (Section 4.1), generated here from the catalog's
overlap information.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.catalog.overlap import OverlapCatalog
from repro.plan.physical import OperatorSpec, OperatorType
from repro.plan.rules import (
    Compare,
    EventType,
    Rule,
    activate,
    constant,
    deactivate,
    event_value,
)


@dataclass(frozen=True)
class CollectorPolicy:
    """A named policy: initial activations plus the rules that adapt them."""

    name: str
    initially_active: list[str]
    rules: list[Rule]


def _child_ids(collector_spec: OperatorSpec) -> list[str]:
    if collector_spec.operator_type != OperatorType.COLLECTOR:
        raise ValueError(f"{collector_spec.operator_id!r} is not a collector")
    return [child.operator_id for child in collector_spec.children]


def contact_all_policy(collector_spec: OperatorSpec) -> CollectorPolicy:
    """Contact every source at once (maximises robustness, not efficiency)."""
    children = _child_ids(collector_spec)
    return CollectorPolicy(name="contact-all", initially_active=children, rules=[])


def primary_with_fallback_policy(
    collector_spec: OperatorSpec,
    source_of_child: dict[str, str],
    overlap: OverlapCatalog,
) -> CollectorPolicy:
    """Contact the primary source only; activate mirrors when it fails or times out.

    Fallbacks are ordered by how much of the primary they cover according to
    the overlap catalog.
    """
    children = _child_ids(collector_spec)
    if not children:
        raise ValueError("collector has no children")
    primary = children[0]
    primary_source = source_of_child[primary]
    ranked = overlap.rank_by_coverage(
        primary_source, [source_of_child[c] for c in children[1:]]
    )
    fallback_children = sorted(
        children[1:],
        key=lambda c: ranked.index(source_of_child[c]) if source_of_child[c] in ranked else len(ranked),
    )
    rules: list[Rule] = []
    previous = primary
    for index, fallback in enumerate(fallback_children, start=1):
        for event_type in (EventType.TIMEOUT, EventType.ERROR):
            rules.append(
                Rule(
                    name=f"{collector_spec.operator_id}-fallback{index}-{event_type.value}",
                    owner=collector_spec.operator_id,
                    event_type=event_type,
                    subject=previous,
                    actions=[activate(collector_spec.operator_id, fallback)],
                )
            )
        previous = fallback
    return CollectorPolicy(name="primary-with-fallback", initially_active=[primary], rules=rules)


def race_policy(
    collector_spec: OperatorSpec,
    threshold: int = 10,
    racers: int = 2,
) -> CollectorPolicy:
    """Race the first ``racers`` children; the first to deliver ``threshold`` tuples wins.

    This reproduces the paper's example policy: start A and B; whichever sends
    10 tuples first deactivates the other; if a racer times out, the next
    child is activated and the racers are deactivated.
    """
    children = _child_ids(collector_spec)
    racing = children[:racers]
    rules: list[Rule] = []
    for winner in racing:
        losers = [c for c in racing if c != winner]
        rules.append(
            Rule(
                name=f"{collector_spec.operator_id}-win-{winner}",
                owner=collector_spec.operator_id,
                event_type=EventType.THRESHOLD,
                subject=winner,
                condition=Compare(event_value(), ">=", constant(threshold)),
                actions=[deactivate(loser) for loser in losers],
            )
        )
    remaining = children[racers:]
    if remaining:
        backup = remaining[0]
        for racer in racing:
            rules.append(
                Rule(
                    name=f"{collector_spec.operator_id}-timeout-{racer}",
                    owner=collector_spec.operator_id,
                    event_type=EventType.TIMEOUT,
                    subject=racer,
                    actions=[activate(collector_spec.operator_id, backup)]
                    + [deactivate(other) for other in racing],
                )
            )
    return CollectorPolicy(name="race", initially_active=racing, rules=rules)


def apply_policy(collector_spec: OperatorSpec, policy: CollectorPolicy) -> list[Rule]:
    """Write the policy's activation list into the spec and return its rules."""
    collector_spec.params["initially_active"] = list(policy.initially_active)
    collector_spec.params["policy"] = policy.name
    return list(policy.rules)
