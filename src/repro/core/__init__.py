"""The Tukwila system core: facade, interleaved execution driver, policies."""

from repro.core.interleaving import InterleavedExecutionDriver, QueryResult
from repro.core.policies import (
    CollectorPolicy,
    apply_policy,
    contact_all_policy,
    primary_with_fallback_policy,
    race_policy,
)
from repro.core.system import Tukwila

__all__ = [
    "CollectorPolicy",
    "InterleavedExecutionDriver",
    "QueryResult",
    "Tukwila",
    "apply_policy",
    "contact_all_policy",
    "primary_with_fallback_policy",
    "race_policy",
]
