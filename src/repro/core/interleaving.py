"""Interleaved planning and execution.

The driver in this module alternates between the optimizer and the execution
engine: it executes the current plan until the engine either finishes,
requests re-optimization (a materialized result was far from its estimate, or
a partial plan ran out of fragments), or requests rescheduling (a source
timed out).  Statistics gathered during execution are fed back to the
optimizer before each re-invocation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.catalog.catalog import DataSourceCatalog
from repro.engine.context import EngineConfig, ExecutionContext
from repro.engine.executor import ExecutionOutcome, ExecutionStatus, QueryExecutor
from repro.engine.stats import QueryRuntimeStats, TupleTimeline
from repro.errors import ExecutionError
from repro.optimizer.optimizer import Optimizer, PlanningStrategy, ReoptimizationMode
from repro.plan.fragments import QueryPlan
from repro.plan.physical import OperatorType
from repro.query.reformulation import ReformulatedQuery
from repro.storage.relation import Relation


@dataclass
class QueryResult:
    """The outcome of running one query end to end."""

    query_name: str
    answer: Relation | None
    status: ExecutionStatus
    total_time_ms: float
    time_to_first_tuple_ms: float | None
    stats: QueryRuntimeStats
    plans: list[QueryPlan] = field(default_factory=list)
    reoptimizations: int = 0
    reschedules: int = 0
    error: str = ""

    @property
    def cardinality(self) -> int:
        return self.answer.cardinality if self.answer is not None else 0

    @property
    def output_timeline(self) -> TupleTimeline:
        return self.stats.output_timeline

    @property
    def succeeded(self) -> bool:
        return self.status == ExecutionStatus.COMPLETED


class InterleavedExecutionDriver:
    """Coordinates the optimizer and execution engine for one query."""

    def __init__(
        self,
        catalog: DataSourceCatalog,
        optimizer: Optimizer,
        engine_config: EngineConfig | None = None,
        reoptimization_mode: ReoptimizationMode = ReoptimizationMode.SAVED_STATE,
        max_replans: int = 8,
        max_reschedules: int = 3,
    ) -> None:
        self.catalog = catalog
        self.optimizer = optimizer
        self.engine_config = engine_config or EngineConfig()
        self.reoptimization_mode = reoptimization_mode
        self.max_replans = max_replans
        self.max_reschedules = max_reschedules

    # -- helpers ---------------------------------------------------------------------------

    def _materializations_from(
        self, plan: QueryPlan, outcome: ExecutionOutcome
    ) -> list[tuple[frozenset[str], str, int]]:
        """Maximal completed fragments as (covered, result name, cardinality)."""
        completed = []
        for fragment_id in outcome.completed_fragments:
            fragment = plan.fragment(fragment_id)
            cardinality = outcome.observed_cardinalities.get(fragment.result_name)
            if cardinality is None or not fragment.covers:
                continue
            completed.append((fragment.covers, fragment.result_name, cardinality))
        # Keep only maximal covers (a fragment subsumed by a later one is redundant).
        maximal = []
        for covers, name, cardinality in completed:
            if any(covers < other for other, _, _ in completed):
                continue
            maximal.append((covers, name, cardinality))
        return maximal

    def _reschedule_plan(self, plan: QueryPlan, outcome: ExecutionOutcome) -> QueryPlan:
        """Reorder the remaining fragments so unaffected ones run first.

        This is the query-scrambling response: fragments that do not read a
        failed source are moved ahead of those that do, giving the slow
        source time to recover before it is needed again.  Scans of the
        sources that timed out are retried with a relaxed (4x) timeout, since
        contacting an autonomous source again restarts its startup delay.
        """
        remaining_ids = set(outcome.remaining_fragments)
        remaining = [f for f in plan.fragments if f.fragment_id in remaining_ids]
        failed = set(outcome.failed_sources)
        unaffected = [f for f in remaining if not (set(f.sources()) & failed)]
        affected = [f for f in remaining if set(f.sources()) & failed]
        for fragment in affected:
            for node in fragment.root.walk():
                if node.operator_type == OperatorType.WRAPPER_SCAN and node.params.get("source") in failed:
                    current = node.params.get("timeout_ms")
                    base = float(current) if current not in (None, "") else (
                        self.engine_config.default_timeout_ms or 0.0
                    )
                    node.params["timeout_ms"] = base * 4 if base else None
        reordered = unaffected + affected
        dependencies = {
            fid: {d for d in deps if d in remaining_ids}
            for fid, deps in plan.dependencies.items()
            if fid in remaining_ids
        }
        dependencies = {fid: deps for fid, deps in dependencies.items() if deps}
        return QueryPlan(
            query_name=plan.query_name,
            fragments=reordered,
            dependencies=dependencies,
            global_rules=[r for r in plan.global_rules if not r.fired],
            partial=plan.partial,
            answer_name=plan.answer_name,
            choice_groups=plan.choice_groups,
        )

    # -- main loop ------------------------------------------------------------------------------

    def run(
        self,
        reformulated: ReformulatedQuery,
        strategy: PlanningStrategy = PlanningStrategy.MATERIALIZE_REPLAN,
        context: ExecutionContext | None = None,
    ) -> QueryResult:
        """Plan and execute ``reformulated``, interleaving as needed."""
        context = context or ExecutionContext(
            self.catalog, config=self.engine_config, query_name=reformulated.query.name
        )
        result = self.optimizer.optimize(reformulated, strategy=strategy, plan_suffix="p1")
        plans = [result.plan]
        plan = result.plan
        replans = 0
        reschedules = 0
        outcome: ExecutionOutcome | None = None

        while True:
            executor = QueryExecutor(context)
            outcome = executor.execute(plan)

            if outcome.status == ExecutionStatus.COMPLETED:
                if plan.partial:
                    # The partial plan ran out of fragments: return to the
                    # optimizer with the observed cardinalities.
                    materializations = self._materializations_from(plan, outcome)
                    if not materializations:
                        raise ExecutionError(
                            "partial plan completed without materializing any fragment"
                        )
                    replans += 1
                    result = self.optimizer.reoptimize(
                        result,
                        reformulated,
                        materializations,
                        mode=self.reoptimization_mode,
                        plan_suffix=f"p{len(plans) + 1}",
                    )
                    plan = result.plan
                    plans.append(plan)
                    continue
                break

            if outcome.status == ExecutionStatus.NEEDS_REOPTIMIZATION:
                if replans >= self.max_replans:
                    break
                materializations = self._materializations_from(plan, outcome)
                if not materializations:
                    break
                replans += 1
                result = self.optimizer.reoptimize(
                    result,
                    reformulated,
                    materializations,
                    mode=self.reoptimization_mode,
                    plan_suffix=f"p{len(plans) + 1}",
                )
                plan = result.plan
                plans.append(plan)
                continue

            if outcome.status == ExecutionStatus.RESCHEDULE_REQUESTED:
                if reschedules >= self.max_reschedules:
                    break
                reschedules += 1
                plan = self._reschedule_plan(plan, outcome)
                plans.append(plan)
                continue

            break  # FAILED

        stats = context.stats
        answer = outcome.answer if outcome is not None else None
        if answer is None and plan.answer_name in context.local_store:
            answer = context.local_store.get(plan.answer_name)
        return QueryResult(
            query_name=reformulated.query.name,
            answer=answer,
            status=outcome.status if outcome is not None else ExecutionStatus.FAILED,
            total_time_ms=context.clock.now,
            time_to_first_tuple_ms=stats.time_to_first_tuple,
            stats=stats,
            plans=plans,
            reoptimizations=replans,
            reschedules=reschedules,
            error=outcome.error if outcome is not None else "",
        )
