"""Semantic source descriptions.

A :class:`SourceDescription` states which mediated relation a data source
provides (or partially provides), how its exported attributes map onto the
mediated relation's attributes, and whether the source is complete for that
relation.  The reformulator uses these descriptions to rewrite mediated
queries into source-level queries with disjunction at the leaves.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import CatalogError


@dataclass(frozen=True)
class SourceDescription:
    """Describes one data source's contents in terms of the mediated schema.

    Parameters
    ----------
    source_name:
        Name of the data source (matches :class:`~repro.network.source.DataSource`).
    mediated_relation:
        The mediated relation this source provides tuples for.
    attribute_map:
        Mapping from mediated attribute base names to the source's attribute
        base names.  An empty map means the names coincide.
    complete:
        Whether the source is believed to contain *all* tuples of the
        mediated relation (local completeness).
    coverage:
        Estimated fraction of the mediated relation's extension present at
        this source (1.0 for complete sources).
    """

    source_name: str
    mediated_relation: str
    attribute_map: dict[str, str] = field(default_factory=dict)
    complete: bool = True
    coverage: float = 1.0

    def __post_init__(self) -> None:
        if not self.source_name:
            raise CatalogError("source description requires a source name")
        if not self.mediated_relation:
            raise CatalogError("source description requires a mediated relation")
        if not 0.0 < self.coverage <= 1.0:
            raise CatalogError(f"coverage must be in (0, 1], got {self.coverage}")
        if self.complete and self.coverage < 1.0:
            raise CatalogError(
                f"source {self.source_name!r} declared complete but coverage is "
                f"{self.coverage}"
            )

    def source_attribute(self, mediated_attr: str) -> str:
        """Source-side attribute name for a mediated attribute base name."""
        return self.attribute_map.get(mediated_attr, mediated_attr)

    def mediated_attribute(self, source_attr: str) -> str:
        """Mediated attribute base name for a source attribute base name."""
        for mediated, source in self.attribute_map.items():
            if source == source_attr:
                return mediated
        return source_attr
