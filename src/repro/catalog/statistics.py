"""Statistics about data sources: cardinalities, selectivities, access costs.

In a data integration setting these statistics are sparse and unreliable
(Section 1.1 of the paper), so every accessor distinguishes *known* values
from *defaults*, and the optimizer records which estimates were guesses so
that re-optimization rules can be attached to the corresponding fragments.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import CatalogError

#: Selectivity assumed for a join predicate with no statistics at all.
DEFAULT_JOIN_SELECTIVITY = 0.001
#: Selectivity assumed for a selection predicate with no statistics.
DEFAULT_SELECTION_SELECTIVITY = 0.1


@dataclass
class SourceStatistics:
    """Per-source statistics, any of which may be unknown (``None``).

    Parameters
    ----------
    cardinality:
        Number of tuples the source exports, if known.
    tuple_size_bytes:
        Average exported tuple size in bytes, if known.
    access_cost_ms:
        Fixed cost to initiate a transfer (connection + query startup).
    transfer_rate_kbps:
        Estimated sustained transfer rate in KB/s.
    distinct_values:
        Optional per-attribute distinct-value counts (for join selectivity).
    """

    cardinality: int | None = None
    tuple_size_bytes: int | None = None
    access_cost_ms: float | None = None
    transfer_rate_kbps: float | None = None
    distinct_values: dict[str, int] = field(default_factory=dict)
    #: Average bytes one exported tuple occupies in columnar engine storage
    #: under the engine's default *encoded* layout (packed numeric arrays,
    #: dictionary-coded strings, arrival stamp); this is the unit hash-table
    #: memory budgets charge, so memory allotments and overflow thresholds
    #: are computed from it rather than from the boxed row estimate in
    #: ``tuple_size_bytes``.
    columnar_tuple_size_bytes: int | None = None
    #: The same estimate in the *plain* (unencoded) columnar layout, for
    #: consumers planning against ``EngineConfig(encoded_columns=False)``.
    plain_columnar_tuple_size_bytes: int | None = None

    @property
    def has_cardinality(self) -> bool:
        return self.cardinality is not None

    def cardinality_or(self, default: int) -> int:
        return self.cardinality if self.cardinality is not None else default

    def distinct_or(self, attr: str, default: int) -> int:
        """Distinct count of ``attr`` (base name), or ``default``."""
        base = attr.rsplit(".", 1)[-1]
        value = self.distinct_values.get(attr, self.distinct_values.get(base))
        return value if value is not None else default


class StatisticsRegistry:
    """Catalog-wide store of per-source statistics and join selectivities."""

    def __init__(self, default_cardinality: int = 10_000) -> None:
        if default_cardinality <= 0:
            raise CatalogError("default cardinality must be positive")
        self.default_cardinality = default_cardinality
        self._by_source: dict[str, SourceStatistics] = {}
        self._join_selectivities: dict[frozenset[str], float] = {}
        self._selection_selectivities: dict[str, float] = {}

    # -- source statistics --------------------------------------------------------

    def set_source(self, source_name: str, stats: SourceStatistics) -> None:
        self._by_source[source_name] = stats

    def source(self, source_name: str) -> SourceStatistics:
        """Statistics for ``source_name`` (empty statistics when unknown)."""
        return self._by_source.get(source_name, SourceStatistics())

    def knows_cardinality(self, source_name: str) -> bool:
        return self.source(source_name).has_cardinality

    def cardinality(self, source_name: str) -> int:
        """Best cardinality estimate (falls back to the registry default)."""
        return self.source(source_name).cardinality_or(self.default_cardinality)

    # -- selectivities --------------------------------------------------------------

    @staticmethod
    def _join_key(left_attr: str, right_attr: str) -> frozenset[str]:
        return frozenset((left_attr, right_attr))

    def set_join_selectivity(self, left_attr: str, right_attr: str, selectivity: float) -> None:
        """Record the selectivity of the equi-join ``left_attr = right_attr``.

        Attributes are fully qualified (``table.attr``).
        """
        if not 0.0 < selectivity <= 1.0:
            raise CatalogError(f"selectivity must be in (0, 1], got {selectivity}")
        self._join_selectivities[self._join_key(left_attr, right_attr)] = selectivity

    def join_selectivity(self, left_attr: str, right_attr: str) -> float:
        """Selectivity of an equi-join, or the default when unknown."""
        return self._join_selectivities.get(
            self._join_key(left_attr, right_attr), DEFAULT_JOIN_SELECTIVITY
        )

    def knows_join_selectivity(self, left_attr: str, right_attr: str) -> bool:
        return self._join_key(left_attr, right_attr) in self._join_selectivities

    def set_selection_selectivity(self, qualified_attr: str, selectivity: float) -> None:
        if not 0.0 < selectivity <= 1.0:
            raise CatalogError(f"selectivity must be in (0, 1], got {selectivity}")
        self._selection_selectivities[qualified_attr] = selectivity

    def selection_selectivity(self, qualified_attr: str) -> float:
        return self._selection_selectivities.get(
            qualified_attr, DEFAULT_SELECTION_SELECTIVITY
        )

    # -- bulk helpers ----------------------------------------------------------------

    def update_cardinality(self, source_name: str, cardinality: int) -> None:
        """Overwrite a source's cardinality (used when execution feeds back stats)."""
        stats = self._by_source.setdefault(source_name, SourceStatistics())
        stats.cardinality = cardinality

    def sources_with_statistics(self) -> list[str]:
        return sorted(self._by_source)
