"""Overlap information between data sources.

The catalog records, for pairs of sources exporting the same mediated
relation, the probability that a data value appearing in one source also
appears in the other (following the probabilistic model of Florescu, Koller
and Levy).  The collector's policy generator uses this to order source
accesses and pick fallback mirrors.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import CatalogError


@dataclass(frozen=True)
class OverlapEntry:
    """P(value in ``contained``  |  value in ``container``)."""

    container: str
    contained: str
    probability: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise CatalogError(
                f"overlap probability must be in [0, 1], got {self.probability}"
            )


class OverlapCatalog:
    """Pairwise overlap probabilities and mirror relationships."""

    def __init__(self) -> None:
        self._entries: dict[tuple[str, str], float] = {}

    def set_overlap(self, container: str, contained: str, probability: float) -> None:
        """Record P(value appears in ``contained`` | it appears in ``container``)."""
        entry = OverlapEntry(container, contained, probability)
        self._entries[(container, contained)] = entry.probability

    def set_mirrors(self, source_a: str, source_b: str) -> None:
        """Declare two sources to be full mirrors of each other."""
        self.set_overlap(source_a, source_b, 1.0)
        self.set_overlap(source_b, source_a, 1.0)

    def overlap(self, container: str, contained: str) -> float:
        """Recorded overlap probability, or 0.0 when unknown."""
        return self._entries.get((container, contained), 0.0)

    def are_mirrors(self, source_a: str, source_b: str) -> bool:
        """True when overlap is 1.0 in both directions."""
        return (
            self.overlap(source_a, source_b) >= 1.0
            and self.overlap(source_b, source_a) >= 1.0
        )

    def mirrors_of(self, source: str, candidates: list[str]) -> list[str]:
        """Candidates that fully mirror ``source``."""
        return [c for c in candidates if c != source and self.are_mirrors(source, c)]

    def expected_coverage(self, primary: str, others: list[str]) -> float:
        """Expected fraction of ``primary``'s data recoverable from ``others``.

        Assumes independence across the other sources, matching the
        probabilistic-reasoning approach the paper cites.
        """
        miss_probability = 1.0
        for other in others:
            if other == primary:
                return 1.0
            miss_probability *= 1.0 - self.overlap(primary, other)
        return 1.0 - miss_probability

    def rank_by_coverage(self, primary: str, candidates: list[str]) -> list[str]:
        """Candidates ordered by how much of ``primary`` they cover (descending)."""
        return sorted(
            (c for c in candidates if c != primary),
            key=lambda c: (-self.overlap(primary, c), c),
        )

    def entries(self) -> list[OverlapEntry]:
        """All recorded entries (for serialization and tests)."""
        return [
            OverlapEntry(container, contained, probability)
            for (container, contained), probability in sorted(self._entries.items())
        ]
