"""Data source catalog: source descriptions, statistics, overlap information."""

from repro.catalog.catalog import DataSourceCatalog
from repro.catalog.overlap import OverlapCatalog, OverlapEntry
from repro.catalog.source_desc import SourceDescription
from repro.catalog.statistics import (
    DEFAULT_JOIN_SELECTIVITY,
    DEFAULT_SELECTION_SELECTIVITY,
    SourceStatistics,
    StatisticsRegistry,
)

__all__ = [
    "DEFAULT_JOIN_SELECTIVITY",
    "DEFAULT_SELECTION_SELECTIVITY",
    "DataSourceCatalog",
    "OverlapCatalog",
    "OverlapEntry",
    "SourceDescription",
    "SourceStatistics",
    "StatisticsRegistry",
]
