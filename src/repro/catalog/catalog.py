"""The data source catalog.

The catalog (Section 2 of the paper) holds three kinds of metadata:

1. semantic descriptions of each source's contents (:class:`SourceDescription`),
2. overlap information between pairs of sources (:class:`OverlapCatalog`),
3. key statistics — access cost, cardinalities, selectivities
   (:class:`StatisticsRegistry`).

It also keeps the registry of :class:`~repro.network.source.DataSource`
objects themselves so that the execution engine can open wrappers by name.
"""

from __future__ import annotations

from repro.catalog.overlap import OverlapCatalog
from repro.catalog.source_desc import SourceDescription
from repro.catalog.statistics import SourceStatistics, StatisticsRegistry
from repro.errors import CatalogError
from repro.network.source import DataSource


class DataSourceCatalog:
    """Registry of data sources, their descriptions, overlap info, and statistics."""

    def __init__(self, default_cardinality: int = 10_000) -> None:
        self._sources: dict[str, DataSource] = {}
        self._descriptions: dict[str, SourceDescription] = {}
        self.statistics = StatisticsRegistry(default_cardinality=default_cardinality)
        self.overlap = OverlapCatalog()

    # -- registration -----------------------------------------------------------

    def register_source(
        self,
        source: DataSource,
        description: SourceDescription | None = None,
        statistics: SourceStatistics | None = None,
        publish_statistics: bool = True,
    ) -> None:
        """Register a data source.

        Parameters
        ----------
        source:
            The simulated data source.
        description:
            Semantic description; when omitted, the source is assumed to
            completely provide a mediated relation with the same name as its
            relation.
        statistics:
            Explicit statistics.  When omitted and ``publish_statistics`` is
            true, accurate cardinality/size statistics are derived from the
            source itself (the "sources export their own stats" case); when
            ``publish_statistics`` is false, the catalog records nothing,
            modelling an autonomous source with no metadata.
        """
        if source.name in self._sources:
            raise CatalogError(f"source {source.name!r} is already registered")
        self._sources[source.name] = source
        if description is None:
            description = SourceDescription(
                source_name=source.name, mediated_relation=source.relation.name
            )
        if description.source_name != source.name:
            raise CatalogError(
                f"description is for {description.source_name!r}, not {source.name!r}"
            )
        self._descriptions[source.name] = description
        if statistics is not None:
            self.statistics.set_source(source.name, statistics)
        elif publish_statistics:
            self.statistics.set_source(
                source.name,
                SourceStatistics(
                    cardinality=source.relation.cardinality,
                    tuple_size_bytes=source.relation.schema.tuple_size,
                    access_cost_ms=source.profile.initial_latency_ms,
                    transfer_rate_kbps=source.profile.bandwidth_kbps,
                    # Published in *encoded* columnar units (dictionary codes
                    # for strings) — the unit hash-table budgets charge under
                    # the engine's default encoding, so optimizer allotments
                    # stated in it are the runtime overflow thresholds.  The
                    # plain unit is published alongside for plans executed
                    # with ``encoded_columns=False``.
                    columnar_tuple_size_bytes=source.relation.schema.encoded_row_size,
                    plain_columnar_tuple_size_bytes=source.relation.schema.columnar_row_size,
                ),
            )

    # -- lookup ------------------------------------------------------------------

    def source(self, name: str) -> DataSource:
        try:
            return self._sources[name]
        except KeyError:
            raise CatalogError(f"unknown data source {name!r}") from None

    def description(self, name: str) -> SourceDescription:
        try:
            return self._descriptions[name]
        except KeyError:
            raise CatalogError(f"no description for source {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._sources

    @property
    def source_names(self) -> list[str]:
        return sorted(self._sources)

    def sources_for_relation(self, mediated_relation: str) -> list[str]:
        """Names of sources that provide ``mediated_relation`` (sorted)."""
        return sorted(
            name
            for name, desc in self._descriptions.items()
            if desc.mediated_relation == mediated_relation
        )

    def complete_sources_for_relation(self, mediated_relation: str) -> list[str]:
        """Sources declared complete for ``mediated_relation``."""
        return [
            name
            for name in self.sources_for_relation(mediated_relation)
            if self._descriptions[name].complete
        ]

    def mediated_relations(self) -> list[str]:
        """All mediated relations covered by at least one source."""
        return sorted({desc.mediated_relation for desc in self._descriptions.values()})

    # -- statistics convenience -----------------------------------------------------

    def cardinality_estimate(self, source_name: str) -> int:
        """Best cardinality estimate for a source."""
        return self.statistics.cardinality(source_name)

    def has_reliable_cardinality(self, source_name: str) -> bool:
        """Whether the catalog has an explicit cardinality for the source."""
        return self.statistics.knows_cardinality(source_name)

    def record_observed_cardinality(self, source_name: str, cardinality: int) -> None:
        """Feed back an observed cardinality from the execution engine.

        Intermediate results are recorded under their fragment/result name, so
        names that are not registered sources are accepted.
        """
        self.statistics.update_cardinality(source_name, cardinality)
