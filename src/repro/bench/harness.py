"""Shared benchmark harness: experiment setups, series capture, reporting.

Every benchmark in ``benchmarks/`` reproduces one table or figure from the
paper.  This module centralizes the pieces they share: building a simulated
"TPC-D in DB2 behind wrappers" deployment at a given scale, running a join
with a chosen physical plan and network profile, capturing tuples-vs-time
series, and printing the rows/series the paper reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.catalog.catalog import DataSourceCatalog
from repro.catalog.statistics import SourceStatistics
from repro.datagen.tpcd import TPCDDatabase, TPCDGenerator
from repro.engine.builder import build_operator
from repro.engine.context import EngineConfig, ExecutionContext
from repro.engine.iterators import DEFAULT_BATCH_SIZE
from repro.engine.operators.materialize import Materialize
from repro.engine.stats import TupleTimeline
from repro.network.profiles import NetworkProfile, lan
from repro.network.source import DataSource
from repro.plan.physical import OperatorSpec
from repro.storage.relation import Relation


@dataclass
class Deployment:
    """A simulated deployment: generated data published through data sources."""

    database: TPCDDatabase
    catalog: DataSourceCatalog
    sources: dict[str, DataSource] = field(default_factory=dict)

    def source_for(self, table: str) -> DataSource:
        return self.sources[table]

    def set_profile(self, table: str, profile: NetworkProfile) -> None:
        """Change the network profile of one table's source."""
        self.sources[table].set_profile(profile)

    def set_all_profiles(self, profile: NetworkProfile) -> None:
        for source in self.sources.values():
            source.set_profile(profile)


def build_deployment(
    scale_mb: float,
    tables: list[str],
    profile: NetworkProfile | None = None,
    seed: int = 42,
    publish_statistics: bool = True,
    fk_skew: float = 0.0,
) -> Deployment:
    """Generate TPC-D tables at ``scale_mb`` and expose each through a source.

    Source names equal table names, so workload queries (which reference
    mediated relations named after the TPC-D tables) resolve directly.
    """
    database = TPCDGenerator(scale_mb=scale_mb, seed=seed, fk_skew=fk_skew).generate(tables)
    catalog = DataSourceCatalog()
    profile = profile or lan()
    sources: dict[str, DataSource] = {}
    for table in tables:
        source = DataSource(table, database[table], profile)
        catalog.register_source(source, publish_statistics=publish_statistics)
        sources[table] = source
    return Deployment(database=database, catalog=catalog, sources=sources)


@dataclass
class RunResult:
    """Output of executing one operator tree in isolation."""

    cardinality: int
    completion_time_ms: float
    time_to_first_tuple_ms: float | None
    timeline: TupleTimeline
    relation: Relation
    context: ExecutionContext


def run_operator_tree(
    spec: OperatorSpec,
    catalog: DataSourceCatalog,
    result_name: str = "bench_result",
    engine_config: EngineConfig | None = None,
    capture_points: int | None = None,
    batch_size: int | None = DEFAULT_BATCH_SIZE,
    columnar: bool | None = None,
) -> RunResult:
    """Execute one physical operator tree to completion against ``catalog``.

    This bypasses the optimizer so that benchmarks can compare hand-chosen
    plans (exactly what the paper does for the join experiments, which used
    hand-coded query plans for greater control).

    ``batch_size`` and ``columnar`` select among the three drive modes:

    * the default pulls columnar (struct-of-arrays) batches of up to
      ``batch_size`` rows through the vectorized ``next_batch`` protocol
      (ramping up from one row so time-to-first-tuple stays exact);
    * ``columnar=False`` keeps the batch protocol but forces row-backed
      batches — PR 1's "row-batch" drive, the baseline that
      ``benchmarks/bench_columnar_pipeline.py`` measures against;
    * ``batch_size=None`` drives the tree tuple-at-a-time, the
      pre-vectorization baseline of ``benchmarks/bench_batch_pipeline.py``.

    ``columnar=None`` defers to the engine config (columnar by default).
    """
    context = ExecutionContext(catalog, config=engine_config, query_name=result_name)
    if columnar is not None:
        context.columnar = columnar
    root = build_operator(spec, context)
    root = Materialize(f"{result_name}-mat", context, root, result_name=result_name)
    timeline = TupleTimeline()
    root.open()
    produced = 0
    if batch_size is None:
        while True:
            row = root.next()
            if row is None:
                break
            produced += 1
            timeline.record(context.clock.now, produced)
    else:
        current = 1
        last_time = 0.0
        while True:
            batch = root.next_batch(current)
            if not batch:
                break
            # Batches carry their virtual arrival stamps, so the
            # tuples-vs-time series keeps tuple-level resolution (the
            # figures' curves — e.g. the overflow stall shapes — survive
            # batch-at-a-time driving).  Reading the arrival column directly
            # avoids materializing rows for columnar batches.
            for arrival in batch.arrivals:
                produced += 1
                if arrival > last_time:
                    last_time = arrival
                timeline.record(last_time, produced)
            current = min(current * 4, batch_size)
    root.close()
    relation = context.local_store.get(result_name)
    return RunResult(
        cardinality=produced,
        completion_time_ms=context.clock.now,
        time_to_first_tuple_ms=timeline.time_to_first,
        timeline=timeline,
        relation=relation,
        context=context,
    )


def hide_statistics(catalog: DataSourceCatalog, attribute_pairs_known: bool = False) -> None:
    """Strip cardinality statistics, modelling autonomous sources with no metadata."""
    for name in list(catalog.statistics.sources_with_statistics()):
        catalog.statistics.set_source(name, SourceStatistics())
    if not attribute_pairs_known:
        # Selectivities default when unknown; nothing further to clear.
        return
