"""Shared harness used by the ``benchmarks/`` directory."""

from repro.bench.harness import (
    Deployment,
    RunResult,
    build_deployment,
    hide_statistics,
    run_operator_tree,
)
from repro.bench.reporting import (
    SeriesPoint,
    ascii_chart,
    format_table,
    speedup,
    timeline_series,
)

__all__ = [
    "Deployment",
    "RunResult",
    "SeriesPoint",
    "ascii_chart",
    "build_deployment",
    "format_table",
    "hide_statistics",
    "run_operator_tree",
    "speedup",
    "timeline_series",
]
