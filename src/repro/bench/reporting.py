"""Reporting helpers: render the rows/series the paper's tables and figures show."""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine.stats import TupleTimeline


@dataclass(frozen=True)
class SeriesPoint:
    """One point of a tuples-vs-time series."""

    tuples: int
    time_ms: float


def timeline_series(timeline: TupleTimeline, points: int = 12) -> list[SeriesPoint]:
    """Downsample a timeline to ``points`` evenly spaced tuple counts.

    The paper's Figures 3 and 4 plot time (y) against number of tuples output
    (x); this produces the same orientation.
    """
    total = timeline.total
    if total == 0:
        return []
    series = []
    step = max(1, total // points)
    for count in range(step, total + 1, step):
        time_ms = timeline.time_for_count(count)
        if time_ms is not None:
            series.append(SeriesPoint(tuples=count, time_ms=time_ms))
    if not series or series[-1].tuples != total:
        completion = timeline.completion_time
        if completion is not None:
            series.append(SeriesPoint(tuples=total, time_ms=completion))
    return series


def format_table(headers: list[str], rows: list[list[object]]) -> str:
    """Plain-text table used by the benchmark harness output."""
    widths = [len(h) for h in headers]
    rendered_rows = []
    for row in rows:
        rendered = [_format_cell(cell) for cell in row]
        rendered_rows.append(rendered)
        widths = [max(w, len(cell)) for w, cell in zip(widths, rendered)]
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for rendered in rendered_rows:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(rendered, widths)))
    return "\n".join(lines)


def _format_cell(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.1f}"
    return str(cell)


def speedup(baseline: float, improved: float) -> float:
    """Baseline-over-improved speedup factor (>1 means improved wins)."""
    if improved <= 0:
        raise ValueError("improved time must be positive")
    return baseline / improved


def ascii_chart(
    series: dict[str, list[tuple[float, float]]],
    width: int = 60,
    height: int = 12,
    x_label: str = "tuples",
    y_label: str = "time (ms)",
) -> str:
    """Render several (x, y) series as a rough ASCII scatter chart.

    Used by the examples to show tuples-vs-time curves (the paper's Figures 3
    and 4) without any plotting dependency.  Each series is drawn with its own
    marker character, assigned in order.
    """
    if not series:
        return "(no data)"
    markers = "*o+x#@"
    points = [(x, y) for values in series.values() for x, y in values]
    if not points:
        return "(no data)"
    max_x = max(x for x, _ in points) or 1.0
    max_y = max(y for _, y in points) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for index, (label, values) in enumerate(series.items()):
        marker = markers[index % len(markers)]
        for x, y in values:
            column = min(width - 1, int(x / max_x * (width - 1)))
            row = min(height - 1, int(y / max_y * (height - 1)))
            grid[height - 1 - row][column] = marker
    lines = [f"{y_label} (max {max_y:.1f})"]
    lines.extend("|" + "".join(row) for row in grid)
    lines.append("+" + "-" * width)
    lines.append(f" {x_label} (max {max_x:.0f})")
    legend = "  ".join(
        f"{markers[i % len(markers)]} = {label}" for i, label in enumerate(series)
    )
    lines.append(" " + legend)
    return "\n".join(lines)
