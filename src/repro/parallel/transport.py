"""Framed pipe messaging between the exchange parent and its lane workers.

Every message is one :func:`repro.storage.wire.pack` frame sent with a single
``send_bytes`` call, so a message is atomic on the pipe and the receiver
never sees a partial frame.  Batch payloads inside a message are already
wire-encoded tuples (:class:`~repro.storage.wire.WireEncoder` output); pack's
out-of-band buffer handling keeps their column bytes unboxed end to end.

The parent ships routed input through a :class:`Shipper` — one daemon thread
per worker that only performs the (GIL-releasing, possibly blocking) pipe
writes, so a lane that is slow to drain stalls its own shipper, never the
parent's pump loop.  Workers are always draining their pipe until the
``collect`` barrier, which is what makes the blocking writes deadlock-free.
"""

from __future__ import annotations

import queue
import threading
from typing import Any

from repro.storage.wire import pack, unpack


def send_msg(conn, message: Any) -> None:
    """Send one framed message on a ``multiprocessing`` connection."""
    conn.send_bytes(pack(message))


def recv_msg(conn) -> Any:
    """Receive one framed message (raises ``EOFError`` on a dead peer)."""
    return unpack(conn.recv_bytes())


class Shipper:
    """Background sender for one parent->worker pipe.

    ``post`` enqueues a pre-packed frame and returns immediately; the thread
    drains the queue in order.  After a send failure (worker died) the error
    is kept and subsequent frames are dropped — the parent discovers the
    death via :attr:`error` or the reply pipe's EOF, never by blocking.
    """

    def __init__(self, conn) -> None:
        self._conn = conn
        self._queue: queue.Queue[bytes | None] = queue.Queue()
        self.error: Exception | None = None
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()

    def post(self, blob: bytes) -> None:
        self._queue.put(blob)

    def post_msg(self, message: Any) -> None:
        self._queue.put(pack(message))

    def finish(self) -> None:
        """Flush everything queued so far and stop the thread."""
        self._queue.put(None)
        self._thread.join()

    def stop(self) -> None:
        """Abandon unsent frames (failure cleanup); never blocks on the pipe."""
        self.error = self.error or ConnectionError("shipper stopped")
        self._queue.put(None)

    def _run(self) -> None:
        while True:
            blob = self._queue.get()
            if blob is None:
                return
            if self.error is not None:
                continue  # drop: the peer is gone, keep draining the queue
            try:
                self._conn.send_bytes(blob)
            except Exception as exc:  # noqa: BLE001 - any pipe failure ends shipping
                self.error = exc
