"""The lane worker process: one exchange lane's subtree, rebuilt and driven.

The worker receives a picklable init description (lane index, the
:class:`~repro.parallel.spec.LaneSpec`, input schemas, engine config), builds
the lane's operator subtree over real :class:`ExchangeSource` leaves, and
runs it on a private :class:`~repro.network.simclock.SimClock` started at the
lane's admission time — the exact clock an inline lane would have used.  All
virtual-time effects (waits, CPU, spill I/O, overflow resolution) happen
*here*; every reply carries a ``sync`` payload (clock position and breakdown,
absolute budget usage, drained events) the parent mirrors onto its registered
lane clock, which is how process execution reproduces inline's virtual-time
accounting exactly.

Two drive modes, selected by the parent:

* **free** (standalone, no broker): after ``run``, the worker steps its lane
  to completion, pulling routed input off the pipe as the subtree demands it
  (:class:`_WorkerFeed` turns a blocked pull into a pipe read) — so lanes
  compute concurrently with the parent's pumping.  Outputs buffer locally
  and are sent only after the ``collect`` barrier, which keeps the pipe
  protocol deadlock-free: the worker never writes while the parent is
  writing.
* **lockstep** (under the multi-query server): all input is shipped before
  the first step, then each ``step`` command advances the lane's generator
  exactly one event — the same generator inline uses — so broker revocations
  relayed between steps land at identical virtual-time boundaries.

Failure modes for the parent's graceful-death handling can be injected via
``REPRO_CRASH_LANE`` / ``REPRO_CRASH_MODE`` (``raise`` | ``exit`` |
``import``).
"""

from __future__ import annotations

import os
import pickle
import traceback
from typing import Iterator

from repro.catalog.catalog import DataSourceCatalog
from repro.engine.context import ExecutionContext
from repro.engine.iterators import DEFAULT_BATCH_SIZE, Operator
from repro.engine.operators.exchange import ExchangeSource, _wait_hint
from repro.errors import ExecutionError
from repro.network.simclock import SimClock
from repro.parallel.transport import recv_msg, send_msg
from repro.storage.memory import MemoryPool
from repro.storage.wire import WireDecoder, WireEncoder, pack


def ship_exception(exc: Exception, tb_text: str | None = None) -> dict:
    """Portable form of an exception: pickled when possible, text always."""
    try:
        blob = pickle.dumps(exc)
    except Exception:  # noqa: BLE001 - unpicklable payloads fall back to text
        blob = None
    return {"pickled": blob, "type": type(exc).__name__, "text": tb_text or str(exc)}


def revive_exception(shipped: dict) -> Exception:
    """Rebuild :func:`ship_exception`'s output, best effort."""
    if shipped["pickled"] is not None:
        try:
            return pickle.loads(shipped["pickled"])
        except Exception:  # repro: allow[swallowed-except] text form below carries the error
            pass
    return ExecutionError(f"{shipped['type']}: {shipped['text']}")


class _WorkerFeed:
    """The lane-side stand-in for the exchange's producer protocol.

    ``await_routed`` blocks on the parent pipe and dispatches exactly one
    message — a wall-clock wait, invisible to virtual time.  Because the
    parent ships inputs strictly in (input 0 …, eos 0, input 1 …, eos 1,
    collect) order, a lane can only finish after dispatching every ``eos``,
    so the ``collect`` barrier is always the next frame once stepping ends.
    """

    def __init__(self, conn, input_count: int) -> None:
        self._conn = conn
        self.sources: list[ExchangeSource] = []
        self.decoder = WireDecoder()
        self._done = [False] * input_count
        self._errors: list[Exception | None] = [None] * input_count
        self.collected = False

    def producer_done(self, input_index: int) -> bool:
        return self._done[input_index]

    def producer_error(self, input_index: int) -> Exception | None:
        return self._errors[input_index]

    def await_routed(self, input_index: int) -> None:
        self.dispatch(recv_msg(self._conn))

    def dispatch(self, message: tuple) -> None:
        kind = message[0]
        if kind == "input":
            _, input_index, available, batch_wire = message
            self.sources[input_index].enqueue(
                available, self.decoder.decode_batch(batch_wire)
            )
        elif kind == "eos":
            self._done[message[1]] = True
        elif kind == "input-error":
            _, input_index, shipped = message
            self._errors[input_index] = revive_exception(shipped)
            self._done[input_index] = True
        elif kind == "collect":
            self.collected = True
        else:
            raise ExecutionError(f"lane worker: unexpected frame {kind!r} in input stream")

    def drain_to_collect(self) -> None:
        """Consume (and discard into queues) everything up to the barrier."""
        while not self.collected:
            self.dispatch(recv_msg(self._conn))


def _lane_steps(root: Operator, clock: SimClock) -> Iterator[tuple]:
    """The inline backend's step generator, one event per yield.

    Identical ramping and event order to ``Exchange._lane_steps`` — this is
    load-bearing for parity: virtual stamps depend on the pull sizes and the
    wait/output event sequence, not on which process executes them.
    """
    size = 1
    while True:
        wait_until = _wait_hint(root, clock)
        if wait_until is not None:
            yield ("wait", wait_until, None)
        batch = root.next_batch(size)
        if not batch:
            return
        size = min(size * 4, DEFAULT_BATCH_SIZE)
        yield ("output", clock.now, batch)


def _sync_payload(context: ExecutionContext) -> dict:
    """Clock position/breakdown, absolute budget usage, and drained events."""
    clock = context.clock
    usage = {
        name: budget.used_bytes for name, budget in context.memory_pool.budgets.items()
    }
    return {
        "now": clock.now,
        "wait": clock.stats.wait_ms,
        "cpu": clock.stats.cpu_ms,
        "io": clock.stats.io_ms,
        "usage": usage,
        "events": context.events.drain(),
    }


def _build(init: dict, limits: dict, feed: _WorkerFeed):
    context = ExecutionContext(
        DataSourceCatalog(),
        clock=SimClock(start_ms=init["lane_start_ms"]),
        memory_pool=MemoryPool(),
        config=init["config"],
        query_name=init["query_name"],
    )
    context.columnar = init["columnar"]
    context.encoded_columns = init["encoded"]
    index = init["lane_index"]
    exchange_id = init["exchange_id"]
    sources = [
        ExchangeSource(
            f"{exchange_id}.in{input_index}.lane{index}", context, feed, input_index, schema
        )
        for input_index, schema in enumerate(init["input_schemas"])
    ]
    root = init["lane_spec"].build(index, context, sources, limits)
    return context, sources, root


def _run_free(conn, feed: _WorkerFeed, steps, context, encoder: WireEncoder) -> None:
    """Free-running drive: step to completion, then flush after the barrier."""
    outputs: list[tuple[float, object]] = []
    failure: dict | None = None
    try:
        for kind, value, batch in steps:
            if kind == "output":
                outputs.append((value, batch))
    except Exception as exc:  # noqa: BLE001 - reported to the parent, not lost
        failure = ship_exception(exc, traceback.format_exc())
    # Reach the collect barrier before writing anything: the parent may still
    # be shipping, and a worker that writes while its inbound pipe backs up
    # deadlocks both sides.
    feed.drain_to_collect()
    if failure is not None:
        send_msg(conn, ("lane-error", failure))
        return
    for produced_at, batch in outputs:
        wire = encoder.encode_batch(batch)
        blob = pack(("output", produced_at, wire))
        encoder.payload_bytes += len(blob)
        conn.send_bytes(blob)
    sync = _sync_payload(context)
    send_msg(conn, ("done", sync))


def _one_step(conn, steps, context, encoder: WireEncoder) -> None:
    """Lockstep drive: advance the generator one event and reply."""
    try:
        kind, value, batch = next(steps)
    except StopIteration:
        sync = _sync_payload(context)
        send_msg(conn, ("step-result", "done", None, None, sync))
        return
    except Exception as exc:  # noqa: BLE001 - reported to the parent, not lost
        failure = ship_exception(exc, traceback.format_exc())
        send_msg(conn, ("lane-error", failure))
        return
    output = None
    if kind == "output":
        output = (value, encoder.encode_batch(batch))
    sync = _sync_payload(context)
    blob = pack(("step-result", kind, value, output, sync))
    if output is not None:
        encoder.payload_bytes += len(blob)
    conn.send_bytes(blob)


def _close_reply(root, context, encoder: WireEncoder) -> dict:
    close_error = None
    try:
        if root is not None:
            root.close()
    except Exception:  # noqa: BLE001 - shipped back, re-raised parent-side
        close_error = traceback.format_exc()
    return {
        "sync": _sync_payload(context) if context is not None else None,
        "operator_stats": dict(context.stats.operator_stats) if context is not None else {},
        "wire": encoder.report(),
        "close_error": close_error,
    }


def _serve(conn, init: dict, crash_mode: str | None) -> None:
    send_msg(conn, ("ready",))
    feed = _WorkerFeed(conn, len(init["input_schemas"]))
    encoder = WireEncoder()
    context = None
    root = None
    steps = None
    while True:
        message = recv_msg(conn)
        kind = message[0]
        if kind in ("input", "eos", "input-error"):
            feed.dispatch(message)
        elif kind == "build":
            context, sources, root = _build(init, message[1], feed)
            feed.sources = sources
            sync = _sync_payload(context)
            send_msg(conn, ("built", sync))
        elif kind == "open":
            try:
                root.open()
            except Exception as exc:  # noqa: BLE001 - reported, not lost
                failure = ship_exception(exc, traceback.format_exc())
                send_msg(conn, ("lane-error", failure))
                continue
            if crash_mode == "exit":
                os._exit(3)
            steps = _lane_steps(root, context.clock)
            sync = _sync_payload(context)
            send_msg(conn, ("opened", sync))
        elif kind == "run":
            if crash_mode == "raise":
                raise RuntimeError("injected lane worker crash")
            _run_free(conn, feed, steps, context, encoder)
        elif kind == "step":
            if crash_mode == "raise":
                raise RuntimeError("injected lane worker crash")
            _one_step(conn, steps, context, encoder)
        elif kind == "revoke":
            _, budget_name, new_limit = message
            context.memory_pool.budget(budget_name).revoke_to(new_limit)
            sync = _sync_payload(context)
            send_msg(conn, ("revoked", sync))
        elif kind == "close":
            reply = _close_reply(root, context, encoder)
            send_msg(conn, ("closed", reply))
            return
        else:
            raise ExecutionError(f"lane worker: unknown command {kind!r}")


def worker_main(conn, init: dict) -> None:
    """Process entry point (must stay importable top-level for spawn)."""
    crash_mode = None
    if os.environ.get("REPRO_CRASH_LANE") == str(init["lane_index"]):
        crash_mode = os.environ.get("REPRO_CRASH_MODE")
    if crash_mode == "import":
        raise ImportError("injected import failure in lane worker")
    try:
        _serve(conn, init, crash_mode)
    except Exception:  # noqa: BLE001 - last-resort report before dying
        text = traceback.format_exc()
        try:
            send_msg(conn, ("error", text))
        except Exception:  # repro: allow[swallowed-except] the pipe may already be gone
            pass
    finally:
        try:
            conn.close()
        except Exception:  # repro: allow[swallowed-except] already closed is fine
            pass
