"""Multicore lane execution for the exchange operator.

This package is the ``process`` exchange backend
(``EngineConfig(exchange_backend="process")``): each exchange lane's operator
subtree runs in its own OS process, fed routed batches over the columnar wire
format (:mod:`repro.storage.wire`), and reports results plus per-lane virtual
time back to the parent — with result multisets *and* virtual-time accounting
identical to the default ``inline`` backend (the parity tests pin both).

Layout:

* :mod:`repro.parallel.spec` — picklable lane-subtree descriptions the
  builder hands the exchange (what a worker process rebuilds);
* :mod:`repro.parallel.transport` — framed pipe messaging and the parent's
  shipper threads;
* :mod:`repro.parallel.worker` — the lane worker process entry point;
* :mod:`repro.parallel.backend` — the parent-side
  :class:`~repro.parallel.backend.ProcessLanes` lifecycle (spawn, feed,
  lockstep stepping, broker-lease mirroring, failure cleanup).
"""

from repro.parallel.spec import CollectorLaneSpec, JoinLaneSpec, LaneSpec

__all__ = ["CollectorLaneSpec", "JoinLaneSpec", "LaneSpec"]
