"""Parent-side lifecycle of the ``process`` exchange backend.

:class:`ProcessLanes` owns the lane worker processes of one
:class:`~repro.engine.operators.exchange.Exchange`: it spawns one process per
lane, mirrors each lane's broker leases, feeds routed batches through the
columnar wire format, and folds every worker report (clock position, budget
usage, events, operator stats) back onto the parent's registered lane
clocks — so the exchange's merge side, the server timeline, and the broker
see exactly what the inline backend would have produced.

Two drive modes, picked by whether the session pool is broker-backed:

* **free** (no broker — standalone queries): workers run their lanes
  concurrently while the parent pumps producers; all lane output is gathered
  at open, after the ``collect`` barrier.  Real multicore parallelism.
* **lockstep** (broker-backed — the multi-query server): each lane advances
  one event per ``step`` RPC, driven by the exchange's earliest-event merge
  loop exactly like inline generators, so broker revocations — relayed to
  the worker holding the real allotment by :class:`_MirrorBudget` — land at
  identical virtual-time boundaries.

Memory protocol: every budget a lane subtree grants worker-side is
pre-granted parent-side under the same name, in lane-index order, as a
*mirror* (:class:`_MirrorBudget`) on the session pool — so broker leasing,
capacity checks, and revocation targeting are byte-identical to inline.  The
possibly-shrunk granted sizes ride the ``build`` command; worker usage
reports are applied to the mirrors as deltas through the official
reserve/release path, keeping ``broker.used_bytes`` live.

A dead worker (killed, crashed, lost pipe) raises
:class:`~repro.errors.QueryExecutionError` after terminating every process
and releasing every mirror lease — no hang, no leaked leases.
"""

from __future__ import annotations

import multiprocessing
import os
from multiprocessing.connection import wait as connection_wait

from repro.errors import ExecutionError, QueryExecutionError
from repro.parallel.transport import Shipper, recv_msg
from repro.parallel.worker import revive_exception, ship_exception, worker_main
from repro.storage.memory import MemoryBudget
from repro.storage.wire import WireDecoder, WireEncoder, pack


class _MirrorBudget(MemoryBudget):
    """Parent-side twin of a budget whose real allotment lives in a worker.

    Carved from the (possibly broker-backed) session pool like any budget, so
    leasing and usage propagation are inherited unchanged.  A broker
    revocation is *relayed first*: the worker shrinks the real budget (its
    overflow resolution spills at the worker's clock), the resulting usage
    and clock movement are folded back, and only then does the mirror adopt
    the new limit — so reclaimed bytes are real before the broker continues,
    exactly as inline.
    """

    #: Installed by the backend after the grant; ``None`` until then.
    relay = None

    def revoke_to(self, new_limit_bytes: int) -> None:
        if self.relay is not None:
            self.relay(self.name, new_limit_bytes)
        super().revoke_to(new_limit_bytes)


class _LaneOutbox:
    """Stands in for an inline lane's :class:`ExchangeSource` during routing.

    ``Exchange.pump`` enqueues routed slices here; each is wire-encoded on
    the pump loop's thread (one encoder per lane, so dictionary deltas and
    schema refs accumulate per link) and handed to the lane's shipper.
    """

    __slots__ = ("_state", "_input_index")

    def __init__(self, state: "_LaneState", input_index: int) -> None:
        self._state = state
        self._input_index = input_index

    def enqueue(self, available_ms: float, batch) -> None:
        state = self._state
        encoded = state.encoder.encode_batch(batch)
        blob = pack(("input", self._input_index, available_ms, encoded))
        state.encoder.payload_bytes += len(blob)
        state.shipper.post(blob)


class _LaneState:
    """Everything the parent tracks for one lane worker."""

    __slots__ = (
        "lane",
        "process",
        "conn",
        "shipper",
        "encoder",
        "decoder",
        "mirrors",
        "wire_from_worker",
    )

    def __init__(self, lane, process, conn) -> None:
        self.lane = lane
        self.process = process
        self.conn = conn
        self.shipper = Shipper(conn)
        self.encoder = WireEncoder()
        self.decoder = WireDecoder()
        self.mirrors: dict[str, _MirrorBudget] = {}
        self.wire_from_worker: dict | None = None


def _start_context():
    """The multiprocessing context: fork where available (cheap on Linux),
    overridable via ``REPRO_MP_START`` (the spawn smoke test uses this)."""
    method = os.environ.get("REPRO_MP_START")
    if not method:
        method = "fork" if "fork" in multiprocessing.get_all_start_methods() else None
    return multiprocessing.get_context(method)


class ProcessLanes:
    """Run one exchange's lanes in worker processes (see module docstring)."""

    def __init__(self, exchange, lanes) -> None:
        if exchange.lane_spec is None:
            raise ExecutionError(
                f"exchange {exchange.operator_id!r}: the process backend needs a "
                f"picklable lane spec (plans built by the planner have one; "
                f"hand-built exchanges with closure lanes must run inline)"
            )
        self.exchange = exchange
        self.lanes = lanes
        self.pool = exchange.context.memory_pool
        self.mode = "lockstep" if self.pool.broker is not None else "free"
        self.states: list[_LaneState] = []
        self._closed = False
        self._failed = False

    # -- lifecycle ---------------------------------------------------------------

    def open(self) -> None:
        self._spawn()
        for state in self.states:
            self._receive(state, "ready")
            self._grant_mirrors(state)
        for state in self.states:
            reply = self._command(state, ("open",), "opened")
            self._apply_sync(state, reply[1])
            state.lane.next_event_ms = state.lane.context.clock.now
        input_count = len(self.exchange._producers)
        for state in self.states:
            state.lane.sources = [
                _LaneOutbox(state, input_index) for input_index in range(input_count)
            ]
        if self.mode == "free":
            self._run_free()
        else:
            self._ship_inputs()
            for state in self.states:
                state.lane.steps = self._rpc_steps(state)

    def close(self) -> None:
        if self._closed or self._failed:
            return
        self._closed = True
        close_error: Exception | None = None
        for state in self.states:
            reply = self._command(state, ("close",), "closed")
            report = reply[1]
            if report["sync"] is not None:
                self._apply_sync(state, report["sync"])
            self.exchange.context.stats.operator_stats.update(report["operator_stats"])
            state.wire_from_worker = report["wire"]
            if report["close_error"] and close_error is None:
                close_error = ExecutionError(report["close_error"])
        self._release_mirrors()
        self._shutdown()
        self.exchange.wire_report = [
            {
                "lane": state.lane.index,
                "mode": self.mode,
                "to_worker": state.encoder.report(),
                "from_worker": state.wire_from_worker,
            }
            for state in self.states
        ]
        if close_error is not None:
            raise close_error

    # -- spawn / build ------------------------------------------------------------

    def _spawn(self) -> None:
        ctx = _start_context()
        exchange = self.exchange
        schemas = [driver.root.output_schema for driver in exchange._producers]
        for lane in self.lanes:
            parent_conn, child_conn = ctx.Pipe()
            init = {
                "mode": self.mode,
                "lane_index": lane.index,
                "exchange_id": exchange.operator_id,
                "lane_spec": exchange.lane_spec,
                "lane_start_ms": lane.context.clock.now,
                "input_schemas": schemas,
                "config": exchange.context.config,
                "columnar": exchange.context.columnar,
                "encoded": exchange.context.encoded_columns,
                "query_name": f"{exchange.context.stats.query_name}.lane{lane.index}",
            }
            process = ctx.Process(
                target=worker_main,
                args=(child_conn, init),
                daemon=True,
                name=f"{exchange.operator_id}-lane{lane.index}",
            )
            process.start()
            child_conn.close()
            self.states.append(_LaneState(lane, process, parent_conn))

    def _grant_mirrors(self, state: _LaneState) -> None:
        """Lease lane budgets parent-side (lane-index order — the order the
        inline backend's lane constructors would have granted them)."""
        limits: dict[str, int | None] = {}
        for name, nbytes in self.exchange.lane_spec.budget_requests(state.lane.index):
            mirror = self.pool.grant(name, nbytes, budget_class=_MirrorBudget)
            state.mirrors[name] = mirror
            limits[name] = mirror.limit_bytes
        reply = self._command(state, ("build", limits), "built")
        self._apply_sync(state, reply[1])
        # Only now can a relayed revocation find the worker's real budget.
        for mirror in state.mirrors.values():
            mirror.relay = lambda name, limit, _state=state: self._relay_revoke(
                _state, name, limit
            )

    def _relay_revoke(self, state: _LaneState, budget_name: str, new_limit: int) -> None:
        reply = self._command(state, ("revoke", budget_name, new_limit), "revoked")
        self._apply_sync(state, reply[1])

    # -- free-running drive --------------------------------------------------------

    def _run_free(self) -> None:
        exchange = self.exchange
        for state in self.states:
            state.shipper.post_msg(("run",))
        try:
            exchange._drain_producers()
        except Exception:
            # Unrecorded pump failures are infrastructure errors: the lanes
            # cannot complete, so tear the workers down before propagating.
            self._cleanup_after_failure()
            raise
        self._ship_stream_ends()
        for state in self.states:
            state.shipper.post_msg(("collect",))
        self._gather()

    def _gather(self) -> None:
        by_conn = {state.conn: state for state in self.states}
        pending = set(self.states)
        while pending:
            ready = connection_wait([state.conn for state in pending])
            for conn in ready:
                state = by_conn[conn]
                message = self._read(state)
                kind = message[0]
                if kind == "output":
                    _, produced_at, encoded = message
                    state.lane.output.append(
                        (produced_at, state.decoder.decode_batch(encoded))
                    )
                elif kind == "done":
                    self._apply_sync(state, message[1])
                    state.lane.finished = True
                    state.lane.next_event_ms = state.lane.context.clock.now
                    pending.discard(state)
                else:
                    self._unexpected(state, message)

    # -- lockstep drive ------------------------------------------------------------

    def _ship_inputs(self) -> None:
        """Drain producers and ship everything before the first step RPC —
        the worker's command pipe is FIFO, so all input precedes stepping."""
        self.exchange._drain_producers()
        self._ship_stream_ends()

    def _rpc_steps(self, state: _LaneState):
        lane = state.lane
        while True:
            reply = self._command(state, ("step",), "step-result")
            _, kind, value, output, sync = reply
            self._apply_sync(state, sync)
            if kind == "done":
                return
            if kind == "output":
                produced_at, encoded = output
                lane.output.append((produced_at, state.decoder.decode_batch(encoded)))
            yield value

    # -- shared plumbing -----------------------------------------------------------

    def _ship_stream_ends(self) -> None:
        for input_index, driver in enumerate(self.exchange._producers):
            if driver.error is not None:
                shipped = ship_exception(driver.error)
                for state in self.states:
                    state.shipper.post_msg(("input-error", input_index, shipped))
            else:
                for state in self.states:
                    state.shipper.post_msg(("eos", input_index))

    def _apply_sync(self, state: _LaneState, sync: dict) -> None:
        """Fold a worker report onto the parent's lane clock, mirrors, events."""
        clock = state.lane.context.clock
        clock.restore(sync["now"], sync["wait"], sync["cpu"], sync["io"])
        for name, used in sync["usage"].items():
            mirror = state.mirrors.get(name)
            if mirror is None:
                continue
            delta = used - mirror.used_bytes
            if delta > 0:
                mirror.force_reserve(delta)
            elif delta < 0:
                mirror.release(-delta)
        for event in sync["events"]:
            self.exchange.context.events.push(event)

    def _command(self, state: _LaneState, message: tuple, expect: str) -> tuple:
        state.shipper.post_msg(message)
        return self._receive(state, expect)

    def _read(self, state: _LaneState) -> tuple:
        try:
            return recv_msg(state.conn)
        except (EOFError, OSError, ConnectionError) as exc:
            self._cleanup_after_failure()
            raise QueryExecutionError(
                f"exchange {self.exchange.operator_id!r}: lane {state.lane.index} "
                f"worker died without reporting (killed, or crashed before the "
                f"protocol started)"
            ) from exc

    def _receive(self, state: _LaneState, expect: str) -> tuple:
        while True:
            message = self._read(state)
            kind = message[0]
            if kind == expect:
                return message
            if kind == "lane-error":
                failure = revive_exception(message[1])
                self._cleanup_after_failure()
                raise failure
            self._unexpected(state, message)

    def _unexpected(self, state: _LaneState, message: tuple) -> None:
        kind = message[0]
        self._cleanup_after_failure()
        if kind == "error":
            raise QueryExecutionError(
                f"exchange {self.exchange.operator_id!r}: lane {state.lane.index} "
                f"worker failed:\n{message[1]}"
            )
        raise QueryExecutionError(
            f"exchange {self.exchange.operator_id!r}: lane {state.lane.index} "
            f"sent unexpected frame {kind!r}"
        )

    # -- teardown ------------------------------------------------------------------

    def _release_mirrors(self) -> None:
        """Zero mirror usage and return every lease to the pool/broker."""
        error: Exception | None = None
        for state in self.states:
            for name, mirror in list(state.mirrors.items()):
                try:
                    self._release_mirror(name, mirror)
                except Exception as exc:  # keep releasing the other lanes
                    if error is None:
                        error = exc
            state.mirrors.clear()
        if error is not None:
            raise error

    def _release_mirror(self, name: str, mirror: _MirrorBudget) -> None:
        try:
            residual = mirror.used_bytes
            if residual > 0:
                mirror.release(residual)
        finally:
            # Even a failed usage release must not strand the lease:
            # broker.used == sum(resident_bytes) depends on its return.
            self.pool.revoke(name)

    def _shutdown(self) -> None:
        for state in self.states:
            state.shipper.finish()
            try:
                state.conn.close()
            except OSError:
                pass
            state.process.join(timeout=10)
            if state.process.is_alive():  # pragma: no cover - defensive
                state.process.terminate()
                state.process.join(timeout=10)

    def _cleanup_after_failure(self) -> None:
        """Terminate everything, release every lease, leave no waiter behind."""
        if self._failed:
            return
        self._failed = True
        for state in self.states:
            state.shipper.stop()
            try:
                state.conn.close()
            except OSError:
                pass
            if state.process.is_alive():
                state.process.terminate()
        for state in self.states:
            state.process.join(timeout=10)
        self._release_mirrors()
        for lane in self.lanes:
            lane.finished = True
            lane.steps = None
