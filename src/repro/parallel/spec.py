"""Picklable lane-subtree descriptions.

The inline exchange backend builds lane subtrees with a closure; a closure
cannot cross a process boundary.  A :class:`LaneSpec` is the declarative
twin: plain data naming the operator a lane runs and its per-lane parameters,
with a :meth:`~LaneSpec.build` method both backends call — inline directly
(the spec doubles as the exchange's ``build_lane`` callable), the process
backend after shipping the spec to the worker.  One code path, two execution
sites.

``limits`` lets the parent override the static per-lane memory allotment with
what the broker *actually* granted: mirror leases are negotiated parent-side
(where the broker lives), possibly shrunk under pressure, and the granted
sizes ride the ``build`` command so the worker's real budgets match its
parent's mirrors byte for byte.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.plan.physical import JoinImplementation


@dataclass
class LaneSpec:
    """Base class: identity plus the budget names a lane will grant.

    ``budget_requests(index)`` lists ``(budget_name, limit_bytes)`` pairs —
    exactly the grants lane ``index``'s subtree performs in its constructor —
    so the parent can pre-grant mirror leases under the same names, in the
    same order, against the broker-backed session pool.
    """

    operator_id: str

    def lane_id(self, index: int) -> str:
        return f"{self.operator_id}.lane{index}"

    def budget_requests(self, index: int) -> list[tuple[str, int | None]]:
        raise NotImplementedError

    def build(self, index: int, lane_context, sources, limits=None):
        """Construct lane ``index``'s subtree over its source leaves.

        ``limits`` maps budget name to granted bytes (``None`` entries mean
        unbounded); omitted, the static per-lane allotment applies — the
        inline path, where the operator's own grant negotiates with the
        broker directly.
        """
        raise NotImplementedError

    def __call__(self, index: int, lane_context, sources):
        # The exchange's ``build_lane`` protocol.
        return self.build(index, lane_context, sources)

    def _limit(self, limits, name: str, default: int | None) -> int | None:
        if limits is None:
            return default
        return limits.get(name, default)


@dataclass
class JoinLaneSpec(LaneSpec):
    """One hash-join lane (double pipelined or hybrid hash)."""

    left_keys: list[str] = field(default_factory=list)
    right_keys: list[str] = field(default_factory=list)
    implementation: str = JoinImplementation.DOUBLE_PIPELINED.value
    overflow_method: str = "left_flush"
    #: Per-lane memory allotments (the operator's limit split across lanes).
    allotments: list[int | None] = field(default_factory=list)
    lane_estimated: int | None = None

    def budget_requests(self, index: int) -> list[tuple[str, int | None]]:
        return [(self.lane_id(index), self.allotments[index])]

    def build(self, index: int, lane_context, sources, limits=None):
        from repro.engine.operators import DoublePipelinedJoin, HybridHashJoin

        lane_id = self.lane_id(index)
        limit = self._limit(limits, lane_id, self.allotments[index])
        if self.implementation == JoinImplementation.DOUBLE_PIPELINED.value:
            return DoublePipelinedJoin(
                lane_id,
                lane_context,
                sources[0],
                sources[1],
                left_keys=self.left_keys,
                right_keys=self.right_keys,
                memory_limit_bytes=limit,
                overflow_method=self.overflow_method,
                estimated_cardinality=self.lane_estimated,
            )
        return HybridHashJoin(
            lane_id,
            lane_context,
            sources[0],
            sources[1],
            left_keys=self.left_keys,
            right_keys=self.right_keys,
            memory_limit_bytes=limit,
            estimated_cardinality=self.lane_estimated,
        )


@dataclass
class CollectorLaneSpec(LaneSpec):
    """One deduplicating-collector lane."""

    dedup_keys: list[str] = field(default_factory=list)
    #: Positions (into ``sources``) of the initially active mirrors.
    active_positions: list[int] | None = None
    fallback: bool = True
    lane_budget: int | None = None
    lane_estimated: int | None = None

    def budget_requests(self, index: int) -> list[tuple[str, int | None]]:
        # DynamicCollector grants its dedup budget under ``<id>-dedup``.
        return [(f"{self.lane_id(index)}-dedup", self.lane_budget)]

    def build(self, index: int, lane_context, sources, limits=None):
        from repro.engine.operators import DynamicCollector

        lane_id = self.lane_id(index)
        limit = self._limit(limits, f"{lane_id}-dedup", self.lane_budget)
        active = (
            [sources[position].operator_id for position in self.active_positions]
            if self.active_positions is not None
            else None
        )
        return DynamicCollector(
            lane_id,
            lane_context,
            list(sources),
            initially_active=active,
            fallback_on_failure=self.fallback,
            dedup_keys=self.dedup_keys,
            estimated_cardinality=self.lane_estimated,
            dedup_budget_bytes=limit,
        )
