"""Simulated disk for overflow files.

The paper's overflow-resolution analysis (Section 4.2.3) counts tuple I/Os:
tuples written to bucket overflow files and read back for the recursive
hybrid-hash pass.  :class:`SimulatedDisk` provides exactly that accounting —
operators write and read :class:`OverflowFile` objects and the disk tracks
tuple and page counts plus the virtual time spent, so benchmarks can report
I/O costs alongside latencies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.errors import StorageError
from repro.storage.tuples import Row

#: Bytes per simulated disk page.  TPC-D era systems used 4-8 KB pages.
PAGE_SIZE_BYTES = 8192


@dataclass
class DiskStats:
    """Counters accumulated by a :class:`SimulatedDisk`."""

    tuples_written: int = 0
    tuples_read: int = 0
    bytes_written: int = 0
    bytes_read: int = 0
    pages_written: int = 0
    pages_read: int = 0

    @property
    def total_tuple_ios(self) -> int:
        """Total tuple I/O operations (reads + writes), the paper's cost metric."""
        return self.tuples_written + self.tuples_read

    @property
    def total_pages(self) -> int:
        return self.pages_written + self.pages_read

    def snapshot(self) -> "DiskStats":
        """Copy of the current counters."""
        return DiskStats(
            self.tuples_written,
            self.tuples_read,
            self.bytes_written,
            self.bytes_read,
            self.pages_written,
            self.pages_read,
        )


class OverflowFile:
    """A spill file holding rows flushed from a hash bucket.

    Rows may carry a *marked* flag, used by the double pipelined join's
    overflow algorithms to remember which tuples arrived after their bucket
    was flushed (the paper's duplicate-avoidance marking).
    """

    def __init__(self, disk: "SimulatedDisk", name: str) -> None:
        self._disk = disk
        self.name = name
        self._rows: list[tuple[Row, bool]] = []
        self.closed = False

    def write(self, row: Row, marked: bool = False) -> None:
        """Append one row to the file, accounting for the write I/O."""
        if self.closed:
            raise StorageError(f"overflow file {self.name!r} is closed")
        self._rows.append((row, marked))
        self._disk._record_write(row.size_bytes)

    def write_all(self, rows: list[Row], marked: bool = False) -> None:
        """Append many rows."""
        for row in rows:
            self.write(row, marked)

    def __len__(self) -> int:
        return len(self._rows)

    def read(self) -> Iterator[tuple[Row, bool]]:
        """Yield ``(row, marked)`` pairs, accounting for the read I/O."""
        for row, marked in self._rows:
            self._disk._record_read(row.size_bytes)
            yield row, marked

    def peek(self) -> list[tuple[Row, bool]]:
        """Contents without charging I/O (for tests and debugging)."""
        return list(self._rows)

    def close(self) -> None:
        """Mark the file read-only."""
        self.closed = True


class SimulatedDisk:
    """Creates overflow files and accumulates I/O statistics.

    Parameters
    ----------
    page_read_ms / page_write_ms:
        Virtual milliseconds charged per page read/written; consumed by the
        execution engine's clock when it asks :meth:`io_time_since`.
    """

    def __init__(self, page_read_ms: float = 0.12, page_write_ms: float = 0.15) -> None:
        self.page_read_ms = page_read_ms
        self.page_write_ms = page_write_ms
        self.stats = DiskStats()
        self._files: dict[str, OverflowFile] = {}
        self._sequence = 0
        self._pending_read_bytes = 0
        self._pending_write_bytes = 0

    def create_file(self, prefix: str = "overflow") -> OverflowFile:
        """Create a new, uniquely named overflow file."""
        self._sequence += 1
        name = f"{prefix}-{self._sequence}"
        handle = OverflowFile(self, name)
        self._files[name] = handle
        return handle

    def file(self, name: str) -> OverflowFile:
        """Look up a previously created file."""
        try:
            return self._files[name]
        except KeyError:
            raise StorageError(f"no overflow file named {name!r}") from None

    @property
    def files(self) -> dict[str, OverflowFile]:
        return dict(self._files)

    # -- accounting -------------------------------------------------------------

    def _record_write(self, nbytes: int) -> None:
        self.stats.tuples_written += 1
        self.stats.bytes_written += nbytes
        self._pending_write_bytes += nbytes
        while self._pending_write_bytes >= PAGE_SIZE_BYTES:
            self._pending_write_bytes -= PAGE_SIZE_BYTES
            self.stats.pages_written += 1

    def _record_read(self, nbytes: int) -> None:
        self.stats.tuples_read += 1
        self.stats.bytes_read += nbytes
        self._pending_read_bytes += nbytes
        while self._pending_read_bytes >= PAGE_SIZE_BYTES:
            self._pending_read_bytes -= PAGE_SIZE_BYTES
            self.stats.pages_read += 1

    def io_time_ms(self, since: DiskStats | None = None) -> float:
        """Virtual milliseconds of I/O performed since ``since`` (or ever)."""
        base_r = since.pages_read if since else 0
        base_w = since.pages_written if since else 0
        return (
            (self.stats.pages_read - base_r) * self.page_read_ms
            + (self.stats.pages_written - base_w) * self.page_write_ms
        )
