"""Simulated disk for overflow files (columnar, optionally encoded, spill format).

The paper's overflow-resolution analysis (Section 4.2.3) counts tuple I/Os:
tuples written to bucket overflow files and read back for the recursive
hybrid-hash pass.  :class:`SimulatedDisk` provides exactly that accounting —
operators write and read :class:`OverflowFile` objects and the disk tracks
tuple and page counts plus the virtual time spent, so benchmarks can report
I/O costs alongside latencies.

Spill files store *columnar chunks*: one column per attribute, a parallel
arrival-stamp column, and the marked/unmarked bit of the double pipelined
join's duplicate-avoidance discipline as one more column.  Whole bucket
flushes and batch spills move column sets in a single call with one
block-level accounting charge; the per-row ``write``/``read`` API remains
for tuple-at-a-time callers (and as the row-spill baseline the spill
benchmark measures against) and boxes rows only at that boundary.

Byte accounting is *representation-faithful*: each chunk is charged what its
columns actually cost.  A dictionary-encoded string column spills as 8-byte
codes plus each referenced dictionary entry once per file (actual value
bytes plus a slot pointer — the file has to carry the dictionary to be
readable); a run-length arrival column charges one stamp per run, counted
across chunk boundaries so per-row and chunk writes of the same tuple
sequence charge identical bytes; plain columns charge the estimated
columnar value size exactly as before.  The page-count model divides the
same (now smaller) byte totals by :data:`PAGE_SIZE_BYTES`, so compressed
spill directly reduces the virtual I/O time the clock observes.
"""

# repro: module-role[hot-path] -- per-row work here multiplies by the dataset size

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator, Sequence

from repro.errors import StorageError
from repro.storage.batch import gather_arrivals
from repro.storage.columns import (
    DICT_CODE_BYTES,
    DICT_SLOT_BYTES,
    _DEGRADE_ERRORS,
    DictColumn,
    RunLengthArrivals,
    append_value,
    arrival_run_count,
    compress_arrivals,
    empty_columns,
    gather as gather_column,
    make_dictionaries,
)
from repro.storage.schema import ARRIVAL_STAMP_BYTES, Schema
from repro.storage.tuples import Row

#: Bytes per simulated disk page.  TPC-D era systems used 4-8 KB pages.
PAGE_SIZE_BYTES = 8192

#: Bytes charged per row for the marked-bit column carried by spill files.
MARK_BIT_BYTES = 1


@dataclass
class DiskStats:
    """Counters accumulated by a :class:`SimulatedDisk`."""

    tuples_written: int = 0
    tuples_read: int = 0
    bytes_written: int = 0
    bytes_read: int = 0
    pages_written: int = 0
    pages_read: int = 0
    chunks_written: int = 0
    chunks_read: int = 0

    @property
    def total_tuple_ios(self) -> int:
        """Total tuple I/O operations (reads + writes), the paper's cost metric."""
        return self.tuples_written + self.tuples_read

    @property
    def total_pages(self) -> int:
        return self.pages_written + self.pages_read

    def snapshot(self) -> "DiskStats":
        """Copy of the current counters."""
        return DiskStats(
            self.tuples_written,
            self.tuples_read,
            self.bytes_written,
            self.bytes_read,
            self.pages_written,
            self.pages_read,
            self.chunks_written,
            self.chunks_read,
        )


class SpillChunk:
    """One columnar block of a spill file.

    ``columns`` holds the attribute columns (possibly dict-encoded),
    ``arrivals`` the parallel arrival stamps (possibly run-length encoded),
    and ``marked`` the marked-bit column (one bool per row).  ``byte_size``
    is the encoded footprint the chunk was charged on write; reads charge
    the same, so compressed chunks are exactly as cheap to re-read as they
    were to spill.
    """

    __slots__ = ("columns", "arrivals", "marked", "byte_size")

    def __init__(
        self,
        columns: list,
        arrivals,
        marked: list[bool],
        byte_size: int = 0,
    ) -> None:
        self.columns = columns
        self.arrivals = arrivals
        self.marked = marked
        self.byte_size = byte_size

    def __len__(self) -> int:
        return len(self.arrivals)


class OverflowFile:
    """A spill file holding rows flushed from a hash bucket.

    Rows may carry a *marked* flag, used by the double pipelined join's
    overflow algorithms to remember which tuples arrived after their bucket
    was flushed (the paper's duplicate-avoidance marking).  Contents live as
    :class:`SpillChunk` columnar blocks; per-row writes accumulate into an
    open tail chunk, bulk writes seal one chunk per call.

    With ``encoded`` true (inherited from the disk by default), the tail
    chunk's string columns dictionary-encode into file-owned dictionaries
    and its arrival column run-length encodes; chunks moved wholesale by
    ``write_columns`` keep whatever encoding their producer used.  See the
    module docstring for the byte-charging model.
    """

    def __init__(
        self,
        disk: "SimulatedDisk",
        name: str,
        schema: Schema | None = None,
        encoded: bool | None = None,
    ) -> None:
        self._disk = disk
        self.name = name
        self.schema = schema
        self.encoded = disk.encoded if encoded is None else encoded
        self._chunks: list[SpillChunk] = []
        self._tail: SpillChunk | None = None
        self._count = 0
        self.closed = False
        # Encoded-spill bookkeeping: fallback file-owned dictionaries for
        # tail chunks whose writers carry no dictionary of their own, the
        # set of dictionary *values* already charged to this file (a file
        # stores each distinct string once, no matter which producer's
        # dictionary coded it — and no matter how the writer's drive mode
        # shaped the chunks), and the last arrival written (runs span chunk
        # boundaries so the per-row and chunk write paths charge identical
        # bytes).
        self._dictionaries: list | None = None
        self._charged_values: set[str] = set()
        self._last_arrival: float | None = None

    # -- sizing ------------------------------------------------------------------

    def _row_bytes(self) -> int:
        """Plain columnar byte estimate per spilled row (incl. marked bit)."""
        assert self.schema is not None
        return self.schema.columnar_row_size + MARK_BIT_BYTES

    def _adopt_schema(self, schema: Schema) -> None:
        if self.schema is None:
            self.schema = schema

    def __len__(self) -> int:
        return self._count

    # -- encoded-spill accounting helpers ------------------------------------------

    def _dictionary_charge(self, dictionary, codes) -> int:
        """Bytes for dictionary entries this file has not stored yet."""
        seen = self._charged_values
        values = dictionary.values
        total = 0
        for code in set(codes):
            value = values[code]
            if value not in seen:
                seen.add(value)
                total += len(value) + DICT_SLOT_BYTES
        return total

    def _column_bytes(self, attribute, column, count: int) -> int:
        """Representation-faithful charge for one spilled column."""
        if type(column) is DictColumn:
            return DICT_CODE_BYTES * count + self._dictionary_charge(
                column.dictionary, column.codes
            )
        return attribute.column_size * count

    def _arrival_bytes(self, arrivals) -> int:
        """Arrival-column charge: one stamp per run in encoded mode.

        Runs continue across chunk boundaries (tracked via the last written
        stamp), so splitting one tuple sequence into many chunks never
        charges more than writing it row by row.
        """
        count = len(arrivals)
        if not count:
            return 0
        if not self.encoded:
            self._last_arrival = arrivals[count - 1]
            return ARRIVAL_STAMP_BYTES * count
        runs = arrival_run_count(arrivals)
        if self._last_arrival is not None and arrivals[0] == self._last_arrival:
            runs -= 1
        self._last_arrival = arrivals[count - 1]
        return ARRIVAL_STAMP_BYTES * runs

# -- writing ------------------------------------------------------------------

    def _check_open(self) -> None:
        if self.closed:
            raise StorageError(f"overflow file {self.name!r} is closed")

    def _tail_chunk(self, source_columns: Sequence | None = None) -> SpillChunk:
        """The open tail chunk, creating one when absent.

        In encoded mode a new tail's dict-encoded slots *adopt* the writer's
        dictionaries when ``source_columns`` carries dict columns (so
        positional spills move raw codes and create no per-file
        dictionaries); slots with no donor fall back to file-owned
        dictionaries, created once per file.
        """
        if self._tail is None:
            assert self.schema is not None
            if self.encoded:
                if self._dictionaries is None:
                    self._dictionaries = make_dictionaries(self.schema)
                dictionaries = self._dictionaries
                if source_columns is not None:
                    dictionaries = [
                        source.dictionary
                        if (own is not None and type(source) is DictColumn)
                        else own
                        for own, source in zip(dictionaries, source_columns)
                    ]
                columns = empty_columns(self.schema, True, dictionaries)
                arrivals: "RunLengthArrivals | list[float]" = RunLengthArrivals()
            else:
                columns = empty_columns(self.schema)
                arrivals = []
            self._tail = SpillChunk(columns, arrivals, [])
            self._chunks.append(self._tail)
        return self._tail

    def _append_row(
        self, values: Sequence[Any], arrival: float, marked: bool
    ) -> None:
        """Shared per-row write: append to the tail chunk and charge bytes.

        NOTE: the encode-and-charge rules here are intentionally duplicated
        in :meth:`write_position` (which layers a raw-code fast path on
        top); both sit on per-tuple spill paths too hot for a shared
        per-value helper.  Change the charging model in both places.
        """
        chunk = self._tail_chunk()
        columns = chunk.columns
        if self.encoded:
            nbytes = MARK_BIT_BYTES
            if self._last_arrival is None or arrival != self._last_arrival:
                nbytes += ARRIVAL_STAMP_BYTES
            self._last_arrival = arrival
            attributes = self.schema.attributes
            seen = self._charged_values
            for position, value in enumerate(values):
                column = columns[position]
                if type(column) is DictColumn:
                    dictionary = column.dictionary
                    try:
                        code = dictionary.encode(value)
                    except _DEGRADE_ERRORS:
                        # Misfit: the column degrades to an object list (the
                        # standard repair) and charges the plain estimate.
                        nbytes += attributes[position].column_size
                        append_value(columns, position, value)
                        continue
                    nbytes += DICT_CODE_BYTES
                    if value not in seen:
                        seen.add(value)
                        nbytes += len(value) + DICT_SLOT_BYTES
                    column.codes.append(code)
                else:
                    nbytes += attributes[position].column_size
                    append_value(columns, position, value)
        else:
            nbytes = self._row_bytes()
            self._last_arrival = arrival
            for position, value in enumerate(values):
                append_value(columns, position, value)
        chunk.arrivals.append(arrival)
        chunk.marked.append(marked)
        chunk.byte_size += nbytes
        self._count += 1
        self._disk._record_write(nbytes)

    def write(self, row: Row, marked: bool = False) -> None:
        """Append one row to the file, accounting for the write I/O."""
        self._check_open()
        self._adopt_schema(row.schema)
        self._append_row(row.values, row.arrival, marked)

    def write_all(self, rows: Sequence[Row], marked: bool = False) -> None:
        """Append many rows."""
        for row in rows:
            self.write(row, marked)

    def write_position(
        self,
        source_columns: Sequence[Sequence[Any]],
        index: int,
        arrival: float,
        marked: bool = False,
    ) -> None:
        """Append one row by position from batch/run columns — no row boxing.

        When the tail chunk's dict-encoded slots share the source's
        dictionaries (they adopt them on tail creation), string values move
        as raw codes — no decode, no re-encode, no per-value Python call.

        NOTE: the fallback branches duplicate :meth:`_append_row`'s
        encode-and-charge rules on purpose (hot path); keep the two in
        lockstep when changing the charging model.
        """
        self._check_open()
        if not self.encoded:
            self._append_row(
                tuple(source[index] for source in source_columns), arrival, marked
            )
            return
        chunk = self._tail_chunk(source_columns)
        columns = chunk.columns
        nbytes = MARK_BIT_BYTES
        if self._last_arrival is None or arrival != self._last_arrival:
            nbytes += ARRIVAL_STAMP_BYTES
        self._last_arrival = arrival
        attributes = self.schema.attributes
        seen = self._charged_values
        for position, column in enumerate(columns):
            source = source_columns[position]
            if (
                type(column) is DictColumn
                and type(source) is DictColumn
                and column.dictionary is source.dictionary
            ):
                code = source.codes[index]
                column.codes.append(code)
                nbytes += DICT_CODE_BYTES
                value = column.dictionary.values[code]
                if value not in seen:
                    seen.add(value)
                    nbytes += len(value) + DICT_SLOT_BYTES
                continue
            value = source[index]
            if type(column) is DictColumn:
                dictionary = column.dictionary
                try:
                    code = dictionary.encode(value)
                except _DEGRADE_ERRORS:
                    nbytes += attributes[position].column_size
                    append_value(columns, position, value)
                    continue
                nbytes += DICT_CODE_BYTES
                if value not in seen:
                    seen.add(value)
                    nbytes += len(value) + DICT_SLOT_BYTES
                column.codes.append(code)
            else:
                nbytes += attributes[position].column_size
                append_value(columns, position, value)
        chunk.arrivals.append(arrival)
        chunk.marked.append(marked)
        chunk.byte_size += nbytes
        self._count += 1
        self._disk._record_write(nbytes)

    def write_columns(
        self,
        columns: list,
        arrivals,
        marked: "bool | list[bool]" = False,
    ) -> None:
        """Append a whole column set as one sealed chunk (one block charge).

        Ownership of ``columns``/``arrivals`` transfers to the file — this is
        how bucket flushes move a partition to disk without copying.  The
        chunk keeps its producer's encoding (dict-code columns stay codes;
        the arrival column is run-length compressed when that pays off).
        """
        self._check_open()
        count = len(arrivals)
        if count == 0:
            return
        marks = marked if isinstance(marked, list) else [marked] * count
        self._tail = None
        if self.encoded:
            assert self.schema is not None
            nbytes = MARK_BIT_BYTES * count + self._arrival_bytes(arrivals)
            for attribute, column in zip(self.schema, columns):
                nbytes += self._column_bytes(attribute, column, count)
            arrivals = compress_arrivals(arrivals)
        else:
            nbytes = self._row_bytes() * count
            self._last_arrival = arrivals[count - 1]
        self._chunks.append(SpillChunk(columns, arrivals, marks, nbytes))
        self._count += count
        self._disk._record_write_block(nbytes, count)

    def write_gather(
        self,
        source_columns: Sequence[Sequence[Any]],
        source_arrivals: Sequence[float],
        indices: Sequence[int],
        marked: bool = False,
    ) -> None:
        """Append the rows of ``source_columns`` at ``indices`` as one chunk.

        Gathers preserve the source storage class, so dict-encoded columns
        spill as code gathers (sharing the source dictionary) and the chunk
        is charged the encoded footprint.
        """
        if not indices:
            return
        columns = [gather_column(column, indices) for column in source_columns]
        arrivals = gather_arrivals(source_arrivals, indices)
        self.write_columns(columns, arrivals, marked)

    # -- reading -------------------------------------------------------------------

    def read_chunks(self) -> Iterator[SpillChunk]:
        """Yield the file's chunks, charging read I/O at block granularity.

        Each chunk charges exactly the bytes it was charged on write, so an
        encoded spill is as cheap to re-read as it was to write.
        """
        for chunk in self._chunks:
            count = len(chunk)
            if count:
                self._disk._record_read_block(chunk.byte_size, count)
            yield chunk

    def read(self) -> Iterator[tuple[Row, bool]]:
        """Yield ``(row, marked)`` pairs, accounting for the read I/O.

        This is the row-at-a-time view: each spilled tuple is boxed back into
        a :class:`Row` — the re-boxing cost the columnar readers avoid.
        Values of dict-encoded columns decode to the dictionary's canonical
        string objects (no per-row string construction).
        """
        schema = self.schema
        make = Row.make  # repro: allow[hot-path-row] row-at-a-time spill view re-boxes by design
        for chunk in self.read_chunks():
            columns = chunk.columns
            for i, (arrival, marked) in enumerate(zip(chunk.arrivals, chunk.marked)):
                values = tuple(column[i] for column in columns)
                yield make(schema, values, arrival), marked

    def peek(self) -> list[tuple[Row, bool]]:
        """Contents without charging I/O (for tests and debugging)."""
        schema = self.schema
        make = Row.make  # repro: allow[hot-path-row] debugging/test peek, never on the hot path
        out: list[tuple[Row, bool]] = []
        for chunk in self._chunks:
            columns = chunk.columns
            for i, (arrival, marked) in enumerate(zip(chunk.arrivals, chunk.marked)):
                out.append((make(schema, tuple(c[i] for c in columns), arrival), marked))
        return out

    def close(self) -> None:
        """Mark the file read-only."""
        self.closed = True


class SimulatedDisk:
    """Creates overflow files and accumulates I/O statistics.

    Parameters
    ----------
    page_read_ms / page_write_ms:
        Virtual milliseconds charged per page read/written; consumed by the
        execution engine's clock when it asks :meth:`io_time_since`.
    encoded:
        Default encoding mode for files created here: dictionary-encoded
        string columns and run-length arrival stamps (charged their encoded
        footprint).  Disabled via ``EngineConfig(encoded_columns=False)``.
    """

    def __init__(
        self,
        page_read_ms: float = 0.12,
        page_write_ms: float = 0.15,
        encoded: bool = True,
    ) -> None:
        self.page_read_ms = page_read_ms
        self.page_write_ms = page_write_ms
        self.encoded = encoded
        self.stats = DiskStats()
        self._files: dict[str, OverflowFile] = {}
        self._sequence = 0
        self._pending_read_bytes = 0
        self._pending_write_bytes = 0

    def create_file(self, prefix: str = "overflow", schema: Schema | None = None) -> OverflowFile:
        """Create a new, uniquely named overflow file.

        ``schema`` fixes the file's columnar layout and byte accounting up
        front; when omitted it is adopted from the first row written.
        """
        self._sequence += 1
        name = f"{prefix}-{self._sequence}"
        handle = OverflowFile(self, name, schema=schema)
        self._files[name] = handle
        return handle

    def file(self, name: str) -> OverflowFile:
        """Look up a previously created file."""
        try:
            return self._files[name]
        except KeyError:
            raise StorageError(f"no overflow file named {name!r}") from None

    @property
    def files(self) -> dict[str, OverflowFile]:
        return dict(self._files)

    # -- accounting -------------------------------------------------------------

    def _record_write(self, nbytes: int) -> None:
        self.stats.tuples_written += 1
        self.stats.bytes_written += nbytes
        self._pending_write_bytes += nbytes
        while self._pending_write_bytes >= PAGE_SIZE_BYTES:
            self._pending_write_bytes -= PAGE_SIZE_BYTES
            self.stats.pages_written += 1

    def _record_write_block(self, nbytes: int, tuples: int) -> None:
        """One accounting call for a whole chunk (block-level, not per-tuple)."""
        self.stats.tuples_written += tuples
        self.stats.bytes_written += nbytes
        self.stats.chunks_written += 1
        self._pending_write_bytes += nbytes
        pages, self._pending_write_bytes = divmod(
            self._pending_write_bytes, PAGE_SIZE_BYTES
        )
        self.stats.pages_written += pages

    def _record_read(self, nbytes: int) -> None:
        self.stats.tuples_read += 1
        self.stats.bytes_read += nbytes
        self._pending_read_bytes += nbytes
        while self._pending_read_bytes >= PAGE_SIZE_BYTES:
            self._pending_read_bytes -= PAGE_SIZE_BYTES
            self.stats.pages_read += 1

    def _record_read_block(self, nbytes: int, tuples: int) -> None:
        """One accounting call for a whole chunk (block-level, not per-tuple)."""
        self.stats.tuples_read += tuples
        self.stats.bytes_read += nbytes
        self.stats.chunks_read += 1
        self._pending_read_bytes += nbytes
        pages, self._pending_read_bytes = divmod(
            self._pending_read_bytes, PAGE_SIZE_BYTES
        )
        self.stats.pages_read += pages

    def io_time_ms(self, since: DiskStats | None = None) -> float:
        """Virtual milliseconds of I/O performed since ``since`` (or ever)."""
        base_r = since.pages_read if since else 0
        base_w = since.pages_written if since else 0
        return (
            (self.stats.pages_read - base_r) * self.page_read_ms
            + (self.stats.pages_written - base_w) * self.page_write_ms
        )
