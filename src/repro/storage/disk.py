"""Simulated disk for overflow files (columnar spill format).

The paper's overflow-resolution analysis (Section 4.2.3) counts tuple I/Os:
tuples written to bucket overflow files and read back for the recursive
hybrid-hash pass.  :class:`SimulatedDisk` provides exactly that accounting —
operators write and read :class:`OverflowFile` objects and the disk tracks
tuple and page counts plus the virtual time spent, so benchmarks can report
I/O costs alongside latencies.

Spill files store *columnar chunks*: one column per attribute, a parallel
arrival-stamp column, and the marked/unmarked bit of the double pipelined
join's duplicate-avoidance discipline as one more column.  Whole bucket
flushes and batch spills move column sets in a single call with one
block-level accounting charge; the per-row ``write``/``read`` API remains
for tuple-at-a-time callers (and as the row-spill baseline the spill
benchmark measures against) and boxes rows only at that boundary.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator, Sequence

from repro.errors import StorageError
from repro.storage.columns import append_value, empty_columns
from repro.storage.schema import Schema
from repro.storage.tuples import Row

#: Bytes per simulated disk page.  TPC-D era systems used 4-8 KB pages.
PAGE_SIZE_BYTES = 8192

#: Bytes charged per row for the marked-bit column carried by spill files.
MARK_BIT_BYTES = 1


@dataclass
class DiskStats:
    """Counters accumulated by a :class:`SimulatedDisk`."""

    tuples_written: int = 0
    tuples_read: int = 0
    bytes_written: int = 0
    bytes_read: int = 0
    pages_written: int = 0
    pages_read: int = 0
    chunks_written: int = 0
    chunks_read: int = 0

    @property
    def total_tuple_ios(self) -> int:
        """Total tuple I/O operations (reads + writes), the paper's cost metric."""
        return self.tuples_written + self.tuples_read

    @property
    def total_pages(self) -> int:
        return self.pages_written + self.pages_read

    def snapshot(self) -> "DiskStats":
        """Copy of the current counters."""
        return DiskStats(
            self.tuples_written,
            self.tuples_read,
            self.bytes_written,
            self.bytes_read,
            self.pages_written,
            self.pages_read,
            self.chunks_written,
            self.chunks_read,
        )


class SpillChunk:
    """One columnar block of a spill file.

    ``columns`` holds the attribute columns, ``arrivals`` the parallel
    arrival stamps, and ``marked`` the marked-bit column (one bool per row).
    """

    __slots__ = ("columns", "arrivals", "marked")

    def __init__(
        self,
        columns: list,
        arrivals: list[float],
        marked: list[bool],
    ) -> None:
        self.columns = columns
        self.arrivals = arrivals
        self.marked = marked

    def __len__(self) -> int:
        return len(self.arrivals)


class OverflowFile:
    """A spill file holding rows flushed from a hash bucket.

    Rows may carry a *marked* flag, used by the double pipelined join's
    overflow algorithms to remember which tuples arrived after their bucket
    was flushed (the paper's duplicate-avoidance marking).  Contents live as
    :class:`SpillChunk` columnar blocks; per-row writes accumulate into an
    open tail chunk, bulk writes seal one chunk per call.
    """

    def __init__(self, disk: "SimulatedDisk", name: str, schema: Schema | None = None) -> None:
        self._disk = disk
        self.name = name
        self.schema = schema
        self._chunks: list[SpillChunk] = []
        self._tail: SpillChunk | None = None
        self._count = 0
        self.closed = False

    # -- sizing ------------------------------------------------------------------

    def _row_bytes(self) -> int:
        """Columnar byte estimate charged per spilled row (incl. marked bit)."""
        assert self.schema is not None
        return self.schema.columnar_row_size + MARK_BIT_BYTES

    def _adopt_schema(self, schema: Schema) -> None:
        if self.schema is None:
            self.schema = schema

    def __len__(self) -> int:
        return self._count

    # -- writing ------------------------------------------------------------------

    def _check_open(self) -> None:
        if self.closed:
            raise StorageError(f"overflow file {self.name!r} is closed")

    def _tail_chunk(self) -> SpillChunk:
        if self._tail is None:
            assert self.schema is not None
            self._tail = SpillChunk(empty_columns(self.schema), [], [])
            self._chunks.append(self._tail)
        return self._tail

    def write(self, row: Row, marked: bool = False) -> None:
        """Append one row to the file, accounting for the write I/O."""
        self._check_open()
        self._adopt_schema(row.schema)
        chunk = self._tail_chunk()
        columns = chunk.columns
        for position, value in enumerate(row.values):
            append_value(columns, position, value)
        chunk.arrivals.append(row.arrival)
        chunk.marked.append(marked)
        self._count += 1
        self._disk._record_write(self._row_bytes())

    def write_all(self, rows: Sequence[Row], marked: bool = False) -> None:
        """Append many rows."""
        for row in rows:
            self.write(row, marked)

    def write_position(
        self,
        source_columns: Sequence[Sequence[Any]],
        index: int,
        arrival: float,
        marked: bool = False,
    ) -> None:
        """Append one row by position from batch/run columns — no row boxing."""
        self._check_open()
        chunk = self._tail_chunk()
        columns = chunk.columns
        for position, source in enumerate(source_columns):
            append_value(columns, position, source[index])
        chunk.arrivals.append(arrival)
        chunk.marked.append(marked)
        self._count += 1
        self._disk._record_write(self._row_bytes())

    def write_columns(
        self,
        columns: list,
        arrivals: list[float],
        marked: "bool | list[bool]" = False,
    ) -> None:
        """Append a whole column set as one sealed chunk (one block charge).

        Ownership of ``columns``/``arrivals`` transfers to the file — this is
        how bucket flushes move a partition to disk without copying.
        """
        self._check_open()
        count = len(arrivals)
        if count == 0:
            return
        marks = marked if isinstance(marked, list) else [marked] * count
        self._tail = None
        self._chunks.append(SpillChunk(columns, arrivals, marks))
        self._count += count
        self._disk._record_write_block(self._row_bytes() * count, count)

    def write_gather(
        self,
        source_columns: Sequence[Sequence[Any]],
        source_arrivals: Sequence[float],
        indices: Sequence[int],
        marked: bool = False,
    ) -> None:
        """Append the rows of ``source_columns`` at ``indices`` as one chunk."""
        if not indices:
            return
        columns = [[column[i] for i in indices] for column in source_columns]
        arrivals = [source_arrivals[i] for i in indices]
        self.write_columns(columns, arrivals, marked)

    # -- reading -------------------------------------------------------------------

    def read_chunks(self) -> Iterator[SpillChunk]:
        """Yield the file's chunks, charging read I/O at block granularity."""
        row_bytes = self._row_bytes() if self.schema is not None else 0
        for chunk in self._chunks:
            count = len(chunk)
            if count:
                self._disk._record_read_block(row_bytes * count, count)
            yield chunk

    def read(self) -> Iterator[tuple[Row, bool]]:
        """Yield ``(row, marked)`` pairs, accounting for the read I/O.

        This is the row-at-a-time view: each spilled tuple is boxed back into
        a :class:`Row` — the re-boxing cost the columnar readers avoid.
        """
        schema = self.schema
        make = Row.make
        for chunk in self.read_chunks():
            columns = chunk.columns
            for i, (arrival, marked) in enumerate(zip(chunk.arrivals, chunk.marked)):
                values = tuple(column[i] for column in columns)
                yield make(schema, values, arrival), marked

    def peek(self) -> list[tuple[Row, bool]]:
        """Contents without charging I/O (for tests and debugging)."""
        schema = self.schema
        make = Row.make
        out: list[tuple[Row, bool]] = []
        for chunk in self._chunks:
            columns = chunk.columns
            for i, (arrival, marked) in enumerate(zip(chunk.arrivals, chunk.marked)):
                out.append((make(schema, tuple(c[i] for c in columns), arrival), marked))
        return out

    def close(self) -> None:
        """Mark the file read-only."""
        self.closed = True


class SimulatedDisk:
    """Creates overflow files and accumulates I/O statistics.

    Parameters
    ----------
    page_read_ms / page_write_ms:
        Virtual milliseconds charged per page read/written; consumed by the
        execution engine's clock when it asks :meth:`io_time_since`.
    """

    def __init__(self, page_read_ms: float = 0.12, page_write_ms: float = 0.15) -> None:
        self.page_read_ms = page_read_ms
        self.page_write_ms = page_write_ms
        self.stats = DiskStats()
        self._files: dict[str, OverflowFile] = {}
        self._sequence = 0
        self._pending_read_bytes = 0
        self._pending_write_bytes = 0

    def create_file(self, prefix: str = "overflow", schema: Schema | None = None) -> OverflowFile:
        """Create a new, uniquely named overflow file.

        ``schema`` fixes the file's columnar layout and byte accounting up
        front; when omitted it is adopted from the first row written.
        """
        self._sequence += 1
        name = f"{prefix}-{self._sequence}"
        handle = OverflowFile(self, name, schema=schema)
        self._files[name] = handle
        return handle

    def file(self, name: str) -> OverflowFile:
        """Look up a previously created file."""
        try:
            return self._files[name]
        except KeyError:
            raise StorageError(f"no overflow file named {name!r}") from None

    @property
    def files(self) -> dict[str, OverflowFile]:
        return dict(self._files)

    # -- accounting -------------------------------------------------------------

    def _record_write(self, nbytes: int) -> None:
        self.stats.tuples_written += 1
        self.stats.bytes_written += nbytes
        self._pending_write_bytes += nbytes
        while self._pending_write_bytes >= PAGE_SIZE_BYTES:
            self._pending_write_bytes -= PAGE_SIZE_BYTES
            self.stats.pages_written += 1

    def _record_write_block(self, nbytes: int, tuples: int) -> None:
        """One accounting call for a whole chunk (block-level, not per-tuple)."""
        self.stats.tuples_written += tuples
        self.stats.bytes_written += nbytes
        self.stats.chunks_written += 1
        self._pending_write_bytes += nbytes
        pages, self._pending_write_bytes = divmod(
            self._pending_write_bytes, PAGE_SIZE_BYTES
        )
        self.stats.pages_written += pages

    def _record_read(self, nbytes: int) -> None:
        self.stats.tuples_read += 1
        self.stats.bytes_read += nbytes
        self._pending_read_bytes += nbytes
        while self._pending_read_bytes >= PAGE_SIZE_BYTES:
            self._pending_read_bytes -= PAGE_SIZE_BYTES
            self.stats.pages_read += 1

    def _record_read_block(self, nbytes: int, tuples: int) -> None:
        """One accounting call for a whole chunk (block-level, not per-tuple)."""
        self.stats.tuples_read += tuples
        self.stats.bytes_read += nbytes
        self.stats.chunks_read += 1
        self._pending_read_bytes += nbytes
        pages, self._pending_read_bytes = divmod(
            self._pending_read_bytes, PAGE_SIZE_BYTES
        )
        self.stats.pages_read += pages

    def io_time_ms(self, since: DiskStats | None = None) -> float:
        """Virtual milliseconds of I/O performed since ``since`` (or ever)."""
        base_r = since.pages_read if since else 0
        base_w = since.pages_written if since else 0
        return (
            (self.stats.pages_read - base_r) * self.page_read_ms
            + (self.stats.pages_written - base_w) * self.page_write_ms
        )
