"""Columnar batches: the struct-of-arrays unit of vectorized execution.

A :class:`Batch` carries up to a few hundred tuples as one Python list per
column (plus a parallel list of arrival stamps), all sharing one
:class:`~repro.storage.schema.Schema`.  Keeping values in column lists lets
operators work on whole batches with C-speed primitives — ``zip`` transposes,
list-comprehension gathers, slice copies — instead of creating one boxed
:class:`~repro.storage.tuples.Row` object per tuple.  Rows are only
materialized lazily at the boundaries that genuinely need them (the
tuple-at-a-time drive, hash-table build sides, tests).

A batch may be *column-backed* or *row-backed*.  Operators with native
columnar paths (scans, select, project, the hash-join probe) produce and
consume column-backed batches; operators that are inherently tuple-driven
(the dynamic collector's per-arrival child picking, the double pipelined
join's output) produce row-backed batches.  Either representation converts
to the other lazily and caches the result, so mixed pipelines compose
without sprinkling conversions through operator code.

Batches are immutable by contract: once a column list is handed to
``from_columns`` (or obtained from ``.columns``) it must not be mutated —
``select_columns`` and schema re-stamping alias column lists rather than
copying them.
"""

# repro: module-role[hot-path] -- per-row work here multiplies by the dataset size

from __future__ import annotations

from typing import Any, Iterator, Sequence

from repro.storage.columns import (
    RunLengthArrivals,
    build_columns,
    empty_like,
    extend_column,
    gather as gather_column,
)
from repro.storage.schema import Schema
from repro.storage.tuples import Row


def transpose_rows(rows: Sequence[Row]) -> list[list[Any]]:
    """Column lists for ``rows`` (empty when ``rows`` is empty)."""
    if not rows:
        return []
    return [list(column) for column in zip(*(row.values for row in rows))]


def typed_transpose(
    schema: Schema,
    rows: Sequence[Row],
    encoded: bool = False,
    dictionaries: Sequence | None = None,
) -> list:
    """Typed columns for ``rows``: numeric attributes land in packed arrays.

    With ``encoded`` true, string attributes dictionary-encode (into the
    supplied per-column ``dictionaries`` when given, so successive blocks
    from one producer share codes).
    """
    if not rows:
        return [[] for _ in range(len(schema))]
    return build_columns(schema, zip(*(row.values for row in rows)), encoded, dictionaries)


def gather_arrivals(arrivals, indices: Sequence[int]):
    """Arrival stamps at ``indices``, preserving run-length encoding."""
    if isinstance(arrivals, RunLengthArrivals):
        return arrivals.gather(indices)
    return [arrivals[i] for i in indices]


class Batch:
    """An ordered collection of tuples sharing one schema (see module docs)."""

    __slots__ = ("schema", "arrivals", "_columns", "_rows")

    def __init__(
        self,
        schema: Schema,
        arrivals: list[float],
        columns: list[list[Any]] | None = None,
        rows: list[Row] | None = None,
    ) -> None:
        if columns is None and rows is None:
            raise ValueError("a Batch needs columns, rows, or both")
        self.schema = schema
        self.arrivals = arrivals
        self._columns = columns
        self._rows = rows

    # -- constructors ----------------------------------------------------------

    @classmethod
    def from_rows(cls, schema: Schema, rows: list[Row]) -> "Batch":
        """Row-backed batch; arrival stamps are taken from the rows."""
        return cls(schema, [row.arrival for row in rows], rows=rows)

    @classmethod
    def from_columns(
        cls, schema: Schema, columns: list[list[Any]], arrivals: list[float]
    ) -> "Batch":
        """Column-backed batch over ``columns`` (one list per attribute)."""
        return cls(schema, arrivals, columns=columns)

    @classmethod
    def empty(cls, schema: Schema) -> "Batch":
        """The end-of-stream sentinel: zero rows (falsy)."""
        return cls(schema, [], columns=[[] for _ in range(len(schema))])

    @classmethod
    def concat(cls, schema: Schema, parts: Sequence["Batch"]) -> "Batch":
        """Concatenation of ``parts`` in order (columnar when all parts are)."""
        if not parts:
            return cls.empty(schema)
        if len(parts) == 1:
            return parts[0]
        if all(part._columns is not None for part in parts):
            # Accumulators clone the first non-empty part's storage classes so
            # typed (array-backed) columns stay typed through concatenation;
            # a value that does not fit degrades that column to a list.
            first = next((p for p in parts if p.arrivals), parts[0])
            columns: list[list[Any]] = [empty_like(c) for c in first._columns]
            # Arrival accumulators keep run-length encoding when the first
            # non-empty part carries it (encoded-mode scan blocks).
            arrivals = (
                RunLengthArrivals()
                if isinstance(first.arrivals, RunLengthArrivals)
                else []
            )
            for part in parts:
                base = len(arrivals)
                for position, column in enumerate(part._columns):
                    extend_column(columns, position, column, base)
                arrivals.extend(part.arrivals)
            return cls.from_columns(schema, columns, arrivals)
        rows: list[Row] = []
        for part in parts:
            # repro: allow[hot-path-row] row-backed concat: inputs are already boxed
            rows.extend(part.rows())
        return cls.from_rows(schema, rows)

    # -- sizing / truthiness ---------------------------------------------------

    def __len__(self) -> int:
        return len(self.arrivals)

    def __bool__(self) -> bool:
        return bool(self.arrivals)

    @property
    def is_columnar(self) -> bool:
        """True when column lists are already materialized (native columnar path)."""
        return self._columns is not None

    def wire_parts(self) -> tuple[list | None, list[Row] | None, list[float]]:
        """``(columns, rows, arrivals)`` exactly as stored — no conversion.

        The wire format must ship the representation the batch actually has:
        operators branch on :attr:`is_columnar`, so a row-backed batch that
        crossed a process boundary as columns would drive different code on
        the other side.  ``columns`` is ``None`` for a row-backed batch (and
        vice versa); a batch holding both cached forms ships as columns."""
        if self._columns is not None:
            return self._columns, None, self.arrivals
        return None, self._rows, self.arrivals

    # -- representation conversion (lazy, cached) ------------------------------

    @property
    def columns(self) -> list[list[Any]]:
        """Column lists, transposing from rows on first access."""
        columns = self._columns
        if columns is None:
            rows = self._rows
            columns = transpose_rows(rows) if rows else [[] for _ in range(len(self.schema))]
            self._columns = columns
        return columns

    def column(self, index: int) -> list[Any]:
        """One column's values, in row order."""
        return self.columns[index]

    def rows(self) -> list[Row]:
        """Row objects, materializing from columns on first access."""
        rows = self._rows
        if rows is None:
            schema = self.schema
            make = Row.make  # repro: allow[hot-path-row] declared tuple-path boundary
            columns = self._columns
            if columns:
                rows = [
                    make(schema, values, arrival)
                    for values, arrival in zip(zip(*columns), self.arrivals)
                ]
            else:
                rows = [make(schema, (), arrival) for arrival in self.arrivals]
            self._rows = rows
        return rows

    def __iter__(self) -> Iterator[Row]:
        return iter(self.rows())  # repro: allow[hot-path-row] tuple-drive compatibility

    def __getitem__(self, index: int) -> Row:
        if self._rows is not None:
            return self._rows[index]
        values = tuple(column[index] for column in self._columns)
        # repro: allow[hot-path-row] single-row accessor is a declared boundary
        return Row.make(self.schema, values, self.arrivals[index])

    # -- vectorized derivation --------------------------------------------------

    def take(self, indices: Sequence[int]) -> "Batch":
        """New batch holding the rows at ``indices`` (one gather per column)."""
        taken_arrivals = gather_arrivals(self.arrivals, indices)
        if self._columns is not None:
            columns = [gather_column(column, indices) for column in self._columns]
            return Batch.from_columns(self.schema, columns, taken_arrivals)
        rows = self._rows
        return Batch.from_rows(self.schema, [rows[i] for i in indices])

    def slice(self, start: int, stop: int) -> "Batch":
        """Contiguous sub-batch ``[start:stop)`` (slice copies per column)."""
        if self._columns is not None:
            columns = [column[start:stop] for column in self._columns]
            return Batch.from_columns(self.schema, columns, self.arrivals[start:stop])
        return Batch.from_rows(self.schema, self._rows[start:stop])

    def select_columns(self, indices: Sequence[int], schema: Schema) -> "Batch":
        """Projection onto ``indices``: pure column-list reuse, no value copies."""
        columns = self.columns
        return Batch.from_columns(
            schema, [columns[i] for i in indices], self.arrivals
        )

    def with_schema(self, schema: Schema) -> "Batch":
        """Re-stamp onto ``schema`` (same arity); columns are aliased, not copied."""
        if self._columns is not None:
            return Batch.from_columns(schema, self._columns, self.arrivals)
        make = Row.make  # repro: allow[hot-path-row] row-backed re-stamp keeps rows rows
        return Batch.from_rows(
            schema, [make(schema, row.values, row.arrival) for row in self._rows]
        )

    def key_tuples(self, indices: Sequence[int]) -> list[tuple[Any, ...]]:
        """Join/grouping keys for every row, extracted from column slices."""
        if self._columns is not None:
            columns = self._columns
            if len(indices) == 1:
                return [(value,) for value in columns[indices[0]]]
            return list(zip(*(columns[i] for i in indices)))
        rows = self._rows
        if len(indices) == 1:
            first = indices[0]
            return [(row.values[first],) for row in rows]
        return [tuple(row.values[i] for i in indices) for row in rows]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "columnar" if self._columns is not None else "rows"
        return f"Batch({len(self)} rows, {kind}, {self.schema.names})"


def gather_join(
    left: Batch,
    take: Sequence[int],
    right_rows: Sequence[Row],
    schema: Schema,
    aligned: bool = False,
) -> Batch:
    """Join-output batch: left rows at ``take`` concatenated with ``right_rows``.

    ``take[i]`` names the left row matched by ``right_rows[i]`` (indices repeat
    when a left row has several matches).  Left values are gathered column by
    column; right values are transposed from the matched rows; each output
    arrival is the later of the two input stamps — exactly what
    :meth:`Row.concat` produces tuple-at-a-time.

    ``aligned=True`` asserts that ``take`` is the identity permutation (every
    left row matched exactly once, the common case for foreign-key joins);
    the left columns are then aliased outright instead of gathered.
    """
    if aligned:
        columns = list(left.columns)
        columns.extend(transpose_rows(right_rows))
        left_arrivals = left.arrivals
        arrivals = [
            a if a >= (b := row.arrival) else b
            for a, row in zip(left_arrivals, right_rows)
        ]
        return Batch.from_columns(schema, columns, arrivals)
    columns = [[column[i] for i in take] for column in left.columns]
    columns.extend(transpose_rows(right_rows))
    left_arrivals = left.arrivals
    arrivals = []
    append = arrivals.append
    for index, row in zip(take, right_rows):
        a = left_arrivals[index]
        b = row.arrival
        append(a if a >= b else b)
    return Batch.from_columns(schema, columns, arrivals)


def gather_join_columns(
    left: Batch,
    take: Sequence[int],
    right_columns: Sequence[Sequence[Any]],
    right_arrivals: Sequence[float],
    schema: Schema,
    aligned: bool = False,
) -> Batch:
    """Join-output batch from already-gathered *columnar* right-side matches.

    The columnar twin of :func:`gather_join`: the matched build/probe values
    arrive as column lists (gathered straight out of hash-bucket partitions
    or spill chunks) instead of as :class:`Row` objects, so assembling the
    output is pure per-column work — no row boxing anywhere.  ``take[i]``
    names the left row matched by right position ``i``; ``aligned=True``
    asserts ``take`` is the identity permutation, letting the left columns
    alias instead of gather.
    """
    if aligned:
        columns = list(left.columns)
        columns.extend(right_columns)
        arrivals = [
            a if a >= b else b for a, b in zip(left.arrivals, right_arrivals)
        ]
        return Batch.from_columns(schema, columns, arrivals)
    columns = [gather_column(column, take) for column in left.columns]
    columns.extend(right_columns)
    left_arrivals = left.arrivals
    arrivals = []
    append = arrivals.append
    for index, b in zip(take, right_arrivals):
        a = left_arrivals[index]
        append(a if a >= b else b)
    return Batch.from_columns(schema, columns, arrivals)


class BatchCursor:
    """Pending-output helper: serves a batch in caller-sized pieces.

    Join operators produce one output batch per probed input batch, which may
    exceed the consumer's requested ``max_rows``; a cursor hands out slices
    (or single rows, for tuple-at-a-time callers) until the batch is drained.
    """

    __slots__ = ("batch", "position")

    def __init__(self, batch: Batch) -> None:
        self.batch = batch
        self.position = 0

    def __bool__(self) -> bool:
        return self.position < len(self.batch)

    def __len__(self) -> int:
        return len(self.batch) - self.position

    def take(self, max_rows: int) -> Batch:
        """Up to ``max_rows`` rows as a batch (empty when drained)."""
        position = self.position
        stop = min(position + max_rows, len(self.batch))
        if stop <= position:
            return Batch.empty(self.batch.schema)
        self.position = stop
        if position == 0 and stop == len(self.batch):
            return self.batch
        return self.batch.slice(position, stop)

    def next_row(self) -> Row | None:
        """One row at a time (for tuple-at-a-time consumers); ``None`` when drained."""
        if self.position >= len(self.batch):
            return None
        row = self.batch[self.position]
        self.position += 1
        return row
