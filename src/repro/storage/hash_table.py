"""Bucketed, spillable hash tables.

Both the hybrid hash join and the double pipelined join build their inputs
into a :class:`BucketedHashTable`: a fixed number of buckets, each holding
rows in memory until its owner decides to flush it to a
:class:`~repro.storage.disk.OverflowFile`.  The table charges every resident
row against a :class:`~repro.storage.memory.MemoryBudget`, so the join
operators discover memory pressure exactly when the paper's engine would.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator, Sequence

from repro.errors import StorageError
from repro.storage.disk import OverflowFile, SimulatedDisk
from repro.storage.memory import MemoryBudget
from repro.storage.tuples import KeyBinder, Row

#: Default bucket count; the paper's engine sized this from optimizer hints.
DEFAULT_BUCKET_COUNT = 64


def bucket_of(key: tuple[Any, ...], bucket_count: int) -> int:
    """Deterministic bucket assignment for a join key."""
    return hash(key) % bucket_count


@dataclass
class Bucket:
    """One hash bucket: resident rows plus an optional overflow file."""

    index: int
    rows: dict[tuple[Any, ...], list[Row]] = field(default_factory=dict)
    resident_count: int = 0
    resident_bytes: int = 0
    overflow: OverflowFile | None = None
    flushed: bool = False

    def add(self, key: tuple[Any, ...], row: Row) -> None:
        self.rows.setdefault(key, []).append(row)
        self.resident_count += 1
        self.resident_bytes += row.size_bytes

    def matches(self, key: tuple[Any, ...]) -> list[Row]:
        return self.rows.get(key, [])

    def drain(self) -> Iterator[tuple[tuple[Any, ...], Row]]:
        """Yield and remove all resident rows."""
        for key, rows in self.rows.items():
            for row in rows:
                yield key, row
        self.rows = {}
        self.resident_count = 0
        self.resident_bytes = 0


class BucketedHashTable:
    """A hash table over join keys with per-bucket spill support.

    Parameters
    ----------
    key_names:
        Attribute names forming the hash key.
    budget:
        Memory budget charged for resident rows.
    disk:
        Destination for flushed buckets.
    bucket_count:
        Number of hash buckets.
    name:
        Used in overflow file names and error messages.
    """

    def __init__(
        self,
        key_names: Sequence[str],
        budget: MemoryBudget,
        disk: SimulatedDisk,
        bucket_count: int = DEFAULT_BUCKET_COUNT,
        name: str = "hash",
    ) -> None:
        if bucket_count <= 0:
            raise StorageError(f"bucket count must be positive, got {bucket_count}")
        self.key_names = tuple(key_names)
        self.budget = budget
        self.disk = disk
        self.bucket_count = bucket_count
        self.name = name
        self.buckets = [Bucket(i) for i in range(bucket_count)]
        self.total_inserted = 0
        self._binder = KeyBinder(self.key_names)

    # -- basic operations --------------------------------------------------------

    def key_for(self, row: Row) -> tuple[Any, ...]:
        return self._binder.key(row)

    def bucket_for_key(self, key: tuple[Any, ...]) -> Bucket:
        return self.buckets[bucket_of(key, self.bucket_count)]

    def insert(self, row: Row, marked: bool = False, key: tuple[Any, ...] | None = None) -> bool:
        """Insert ``row``.

        Returns ``True`` when the row is resident in memory, ``False`` when it
        went straight to the bucket's overflow file (because the bucket was
        already flushed) or when the memory budget refused the reservation.
        A ``False`` return with an un-flushed bucket signals the caller that
        its overflow strategy must run before retrying.  Callers that already
        computed the row's join key may pass it to skip recomputation.
        """
        if key is None:
            key = self.key_for(row)
        bucket = self.bucket_for_key(key)
        self.total_inserted += 1
        if bucket.flushed:
            self._ensure_overflow(bucket).write(row, marked)
            return False
        if not self.budget.try_reserve(row.size_bytes):
            self.total_inserted -= 1
            return False
        bucket.add(key, row)
        return True

    def insert_batch(self, rows: Sequence[Row], marked: bool = False) -> list[Row]:
        """Bulk-insert ``rows``; returns the suffix that could not be inserted.

        Rows whose bucket is already flushed are written straight to that
        bucket's overflow file (they count as handled, exactly as in
        :meth:`insert`).  On the first memory refusal for a resident insert,
        the refused row and every row after it are returned unchanged so the
        caller can run its overflow strategy and retry the remainder.
        """
        key_for = self.key_for
        buckets = self.buckets
        count = self.bucket_count
        budget = self.budget
        for position, row in enumerate(rows):
            key = key_for(row)
            bucket = buckets[hash(key) % count]
            if bucket.flushed:
                self.total_inserted += 1
                self._ensure_overflow(bucket).write(row, marked)
                continue
            if not budget.try_reserve(row.size_bytes):
                return list(rows[position:])
            self.total_inserted += 1
            bucket.add(key, row)
        return []

    def insert_resident(self, row: Row) -> None:
        """Insert assuming memory is available; raises if the budget refuses."""
        if not self.insert(row):
            raise StorageError(
                f"{self.name}: failed to insert resident row (budget exhausted "
                f"or bucket flushed)"
            )

    def probe(self, key: tuple[Any, ...]) -> list[Row]:
        """Resident rows matching ``key`` (flushed rows are not visible here)."""
        return self.bucket_for_key(key).matches(key)

    def probe_row(self, row: Row, key_names: Sequence[str]) -> list[Row]:
        """Probe using ``row``'s values of ``key_names`` as the key."""
        return self.probe(row.key(key_names))

    def probe_batch(self, keys: Sequence[tuple[Any, ...]]) -> list[list[Row]]:
        """Resident matches for each key in ``keys`` (one result list per key)."""
        buckets = self.buckets
        count = self.bucket_count
        return [buckets[hash(key) % count].matches(key) for key in keys]

    def is_bucket_flushed_for(self, key: tuple[Any, ...]) -> bool:
        return self.bucket_for_key(key).flushed

    # -- flushing ----------------------------------------------------------------

    def _ensure_overflow(self, bucket: Bucket) -> OverflowFile:
        if bucket.overflow is None:
            bucket.overflow = self.disk.create_file(f"{self.name}-b{bucket.index}")
        return bucket.overflow

    def flush_bucket(self, index: int, mark_rows: bool = False) -> int:
        """Write bucket ``index`` to disk, releasing its memory.

        Returns the number of rows flushed.  Subsequent inserts into this
        bucket go directly to its overflow file.
        """
        bucket = self.buckets[index]
        overflow = self._ensure_overflow(bucket)
        flushed = 0
        released = bucket.resident_bytes
        for _, row in bucket.drain():
            overflow.write(row, mark_rows)
            flushed += 1
        bucket.flushed = True
        self.budget.release(released)
        return flushed

    def flush_largest_bucket(self, mark_rows: bool = False) -> int | None:
        """Flush the resident bucket holding the most bytes; returns its index."""
        candidates = [b for b in self.buckets if not b.flushed and b.resident_count > 0]
        if not candidates:
            return None
        victim = max(candidates, key=lambda b: b.resident_bytes)
        self.flush_bucket(victim.index, mark_rows)
        return victim.index

    def flush_all(self, mark_rows: bool = False) -> int:
        """Flush every resident bucket; returns total rows flushed."""
        total = 0
        for bucket in self.buckets:
            if bucket.resident_count > 0 or not bucket.flushed:
                total += self.flush_bucket(bucket.index, mark_rows)
        return total

    # -- inspection ---------------------------------------------------------------

    @property
    def resident_rows(self) -> int:
        return sum(b.resident_count for b in self.buckets)

    @property
    def resident_bytes(self) -> int:
        return sum(b.resident_bytes for b in self.buckets)

    @property
    def flushed_buckets(self) -> list[int]:
        return [b.index for b in self.buckets if b.flushed]

    @property
    def has_resident_data(self) -> bool:
        return any(b.resident_count > 0 for b in self.buckets)

    def resident_items(self) -> Iterator[Row]:
        """All resident rows, bucket by bucket."""
        for bucket in self.buckets:
            for rows in bucket.rows.values():
                yield from rows

    def overflow_rows(self, index: int) -> Iterator[tuple[Row, bool]]:
        """Read back bucket ``index``'s overflow file (charging read I/O)."""
        bucket = self.buckets[index]
        if bucket.overflow is None:
            return iter(())
        return bucket.overflow.read()

    def release_all(self) -> None:
        """Drop all resident rows and return their memory to the budget."""
        for bucket in self.buckets:
            self.budget.release(bucket.resident_bytes)
            bucket.rows = {}
            bucket.resident_count = 0
            bucket.resident_bytes = 0
