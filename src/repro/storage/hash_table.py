"""Bucketed, spillable hash tables over columnar partitions.

Both the hybrid hash join and the double pipelined join build their inputs
into a :class:`BucketedHashTable`: a fixed number of buckets, each holding a
columnar partition (:class:`~repro.storage.columns.ColumnarPartition` — one
typed column per attribute, a parallel arrival list, and a ``key -> row
positions`` index) in memory until its owner decides to flush it to a
:class:`~repro.storage.disk.OverflowFile`.  Inserts append column values and
probes return gather positions, so neither direction materializes
:class:`~repro.storage.tuples.Row` objects; flushes move whole column sets to
disk as one spill chunk.  The table charges every resident row's columnar
byte estimate — :meth:`Schema.encoded_row_size` by default (string columns
dictionary-encode; dictionary entries charge once per table as they are
first inserted), :meth:`Schema.columnar_row_size` with ``encoded=False`` —
against a :class:`~repro.storage.memory.MemoryBudget`, so the join operators
discover memory pressure exactly when the paper's engine would — identically
in all three drive modes, because the table's representation never changes
with the drive.
"""

# repro: module-role[hot-path] -- per-row work here multiplies by the dataset size

from __future__ import annotations

from typing import Any, Iterator, Sequence
from zlib import crc32

from repro.errors import StorageError
from repro.storage.batch import Batch
from repro.storage.columns import (
    ColumnarPartition,
    DictColumn,
    extend_column,
    make_dictionaries,
)
from repro.storage.disk import OverflowFile, SimulatedDisk, SpillChunk
from repro.storage.memory import MemoryBudget
from repro.storage.schema import Schema
from repro.storage.tuples import KeyBinder, Row

#: Default bucket count; the paper's engine sized this from optimizer hints.
DEFAULT_BUCKET_COUNT = 64


def bucket_of(key: tuple[Any, ...], bucket_count: int) -> int:
    """Deterministic bucket assignment for a join key.

    Uses the builtin ``hash`` — fastest available, and perfectly fine for
    *intra-process* buckets.  It is NOT stable across processes for strings
    (``PYTHONHASHSEED`` randomization); anything that partitions across
    process boundaries must use :func:`stable_bucket_of` instead.
    """
    return hash(key) % bucket_count


def _stable_key_bytes(key: tuple[Any, ...]) -> bytes:
    """A canonical byte encoding of a join key, equal iff the keys route equal.

    Each value is tagged with its type so ``1`` and ``"1"`` never collide,
    except that floats with integral values encode as their int twin —
    builtin ``hash(1.0) == hash(1)``, and mixed int/float key columns must
    keep routing rows with equal keys to the same lane.
    """
    parts: list[bytes] = []
    for value in key:
        if isinstance(value, bool):
            parts.append(b"b1" if value else b"b0")
        elif isinstance(value, int):
            parts.append(b"i" + str(value).encode("ascii"))
        elif isinstance(value, float):
            if value.is_integer():
                parts.append(b"i" + str(int(value)).encode("ascii"))
            else:
                parts.append(b"f" + repr(value).encode("ascii"))
        elif isinstance(value, str):
            parts.append(b"s" + value.encode("utf-8", "surrogatepass"))
        elif value is None:
            parts.append(b"n")
        else:
            parts.append(b"o" + repr(value).encode("utf-8", "surrogatepass"))
    return b"\x1f".join(parts)


def stable_bucket_of(key: tuple[Any, ...], bucket_count: int) -> int:
    """Process-stable bucket assignment (exchange lane routing).

    ``zlib.crc32`` over a canonical byte encoding: identical across runs,
    interpreters, and processes regardless of ``PYTHONHASHSEED``, so a
    parent routing batches and a lane worker checking its share always
    agree.
    """
    return crc32(_stable_key_bytes(key)) % bucket_count


class Bucket:
    """One hash bucket: a resident columnar partition plus optional overflow."""

    __slots__ = ("index", "partition", "overflow", "flushed")

    def __init__(self, index: int) -> None:
        self.index = index
        self.partition: ColumnarPartition | None = None
        self.overflow: OverflowFile | None = None
        self.flushed = False

    @property
    def resident_count(self) -> int:
        return len(self.partition.arrivals) if self.partition is not None else 0

    def match(self, key: tuple[Any, ...]) -> list[int] | None:
        """Resident row positions holding ``key`` (None for a miss)."""
        if self.partition is None:
            return None
        return self.partition.positions.get(key)


class BucketedHashTable:
    """A hash table over join keys with per-bucket spill support.

    Parameters
    ----------
    key_names:
        Attribute names forming the hash key.
    budget:
        Memory budget charged for resident rows (columnar byte estimates).
    disk:
        Destination for flushed buckets.
    bucket_count:
        Number of hash buckets.
    name:
        Used in overflow file names and error messages.
    schema:
        Schema of the stored rows; fixes the partitions' typed column layout
        and the per-row byte charge.  When omitted it is adopted from the
        first inserted row or batch.
    encoded:
        When true (the default, matching ``EngineConfig.encoded_columns``),
        partitions dictionary-encode string columns over *table-owned*
        dictionaries shared by every bucket — so flushed chunks stay
        code-compatible and each distinct value is stored (and charged)
        once per table — and resident rows charge
        :attr:`Schema.encoded_row_size`.  Dictionary growth is force-charged
        to the budget as it happens (it cannot be refused row by row) and
        counted in :attr:`resident_bytes`, so the budget invariant
        ``budget.used == sum(resident_bytes)`` holds in encoded bytes.
    """

    def __init__(
        self,
        key_names: Sequence[str],
        budget: MemoryBudget,
        disk: SimulatedDisk,
        bucket_count: int = DEFAULT_BUCKET_COUNT,
        name: str = "hash",
        schema: Schema | None = None,
        encoded: bool = True,
    ) -> None:
        if bucket_count <= 0:
            raise StorageError(f"bucket count must be positive, got {bucket_count}")
        self.key_names = tuple(key_names)
        self.budget = budget
        self.disk = disk
        self.bucket_count = bucket_count
        self.name = name
        self.schema = schema
        self.encoded = encoded
        self.row_bytes = schema.row_size_for(encoded) if schema is not None else 0
        self.buckets = [Bucket(i) for i in range(bucket_count)]
        self.total_inserted = 0
        self.flushed_count = 0
        self._binder = KeyBinder(self.key_names)
        self.dictionary_bytes = 0
        self._dictionaries = None
        #: ``[(slot, dictionary, seen_codes)]`` for slots whose dictionary
        #: was adopted from the insert stream (see ``_fix_dictionaries``).
        self._adopted_slots: list | None = None

    def _fix_dictionaries(self, source_columns: Sequence | None) -> None:
        """Fix the table's per-slot dictionaries on first insert.

        Dict-encodable slots *adopt* the insert stream's dictionary when the
        first insert arrives as columns carrying one (all later inserts from
        the same scan then move raw codes — no re-encoding); slots with no
        donor get table-owned dictionaries whose growth hook charges the
        budget at encode time.  Either way, growth is a side effect of value
        encoding and cannot be refused row by row, so it force-charges past
        the limit — the elevated usage simply brings the next row refusal
        (the overflow signal) forward.  Adopted slots charge each entry at
        the first *insert* referencing it (tracked per code), which is the
        same logical point an owned dictionary charges at, so byte totals
        and overflow positions agree across drive modes.
        """
        dictionaries = make_dictionaries(self.schema)
        adopted: list = []
        for j, dictionary in enumerate(dictionaries):
            if dictionary is None:
                continue
            source = source_columns[j] if source_columns is not None else None
            if type(source) is DictColumn:
                dictionaries[j] = source.dictionary
                adopted.append((j, source.dictionary, set()))
            else:
                dictionary.on_grow = self._record_dictionary_growth
        self._dictionaries = dictionaries
        self._adopted_slots = adopted

    def _record_dictionary_growth(self, nbytes: int) -> None:
        self.budget.force_reserve(nbytes)
        self.dictionary_bytes += nbytes

    def _charge_adopted(self, source_columns: Sequence, position: int) -> None:
        """Charge adopted-dictionary entries first referenced by this insert."""
        for j, dictionary, seen in self._adopted_slots:
            source = source_columns[j]
            if type(source) is DictColumn and source.dictionary is dictionary:
                code = source.codes[position]
                if code not in seen:
                    seen.add(code)
                    self._record_dictionary_growth(dictionary.entry_bytes(code))

    # -- schema / partition plumbing ----------------------------------------------

    def _adopt_schema(self, schema: Schema) -> None:
        if self.schema is None:
            self.schema = schema
            self.row_bytes = schema.row_size_for(self.encoded)

    def _partition(self, bucket: Bucket) -> ColumnarPartition:
        partition = bucket.partition
        if partition is None:
            if self.schema is None:
                raise StorageError(f"{self.name}: schema unknown before first insert")
            if self.encoded and self._dictionaries is None:
                self._fix_dictionaries(None)
            partition = bucket.partition = ColumnarPartition(
                self.schema, self.encoded, self._dictionaries
            )
        return partition

    # -- basic operations --------------------------------------------------------

    def key_for(self, row: Row) -> tuple[Any, ...]:
        return self._binder.key(row)

    def key_indices_in(self, schema: Schema) -> tuple[int, ...]:
        """Positions of the key attributes in ``schema`` (for bulk extraction)."""
        return self._binder.indices_in(schema)

    def bucket_for_key(self, key: tuple[Any, ...]) -> Bucket:
        return self.buckets[hash(key) % self.bucket_count]

    def insert(self, row: Row, marked: bool = False, key: tuple[Any, ...] | None = None) -> bool:
        """Insert ``row``.

        Returns ``True`` when the row is resident in memory, ``False`` when it
        went straight to the bucket's overflow file (because the bucket was
        already flushed) or when the memory budget refused the reservation.
        A ``False`` return with an un-flushed bucket signals the caller that
        its overflow strategy must run before retrying.  Callers that already
        computed the row's join key may pass it to skip recomputation.
        """
        self._adopt_schema(row.schema)
        if key is None:
            key = self._binder.key(row)
        bucket = self.buckets[hash(key) % self.bucket_count]
        self.total_inserted += 1
        if bucket.flushed:
            self._ensure_overflow(bucket).write(row, marked)
            return False
        if not self.budget.try_reserve(self.row_bytes):
            self.total_inserted -= 1
            return False
        self._partition(bucket).append_values(key, row.values, row.arrival)
        return True

    def insert_position(
        self,
        bucket_index: int,
        key: tuple[Any, ...],
        source_columns: Sequence[Sequence[Any]],
        position: int,
        arrival: float,
    ) -> bool:
        """Insert one row by position from batch/run columns — no row boxing.

        Returns ``False`` when the memory budget refuses (the caller runs its
        overflow strategy and retries); the bucket must not be flushed.
        """
        if not self.budget.try_reserve(self.row_bytes):
            return False
        bucket = self.buckets[bucket_index]
        if self.encoded and self._dictionaries is None:
            self._fix_dictionaries(source_columns)
        self._partition(bucket).append_position(key, source_columns, position, arrival)
        if self._adopted_slots:
            # Inlined _charge_adopted: this sits on the per-tuple insert path.
            for j, dictionary, seen in self._adopted_slots:
                source = source_columns[j]
                if type(source) is DictColumn and source.dictionary is dictionary:
                    code = source.codes[position]
                    if code not in seen:
                        seen.add(code)
                        self._record_dictionary_growth(dictionary.entry_bytes(code))
        self.total_inserted += 1
        return True

    def insert_batch(
        self,
        batch: Batch,
        marked: bool = False,
        keys: Sequence[tuple[Any, ...]] | None = None,
        start: int = 0,
    ) -> int:
        """Bulk-insert ``batch`` rows from ``start``; returns the stop position.

        A return equal to ``len(batch)`` means every row was handled.  Rows
        whose bucket is already flushed are written straight to that bucket's
        overflow file (they count as handled, exactly as in :meth:`insert`).
        On the first memory refusal for a resident insert, the refused row's
        position is returned so the caller can run its overflow strategy and
        retry from there — the refusal lands on exactly the row where the
        tuple-at-a-time path would have overflowed.

        When no bucket has flushed and the whole remainder fits the budget,
        the rows move as per-bucket column gathers (the bulk fast path).
        """
        self._adopt_schema(batch.schema)
        if keys is None:
            keys = batch.key_tuples(self._binder.indices_in(batch.schema))
        n = len(batch)
        if start >= n:
            return n
        count = self.bucket_count
        buckets = self.buckets
        columns = batch.columns
        arrivals = batch.arrivals
        remaining = n - start
        if self.encoded and self._dictionaries is None:
            self._fix_dictionaries(columns)
        if not self.flushed_count and not self.budget.would_overflow(
            remaining * self.row_bytes
        ):
            self.budget.reserve(remaining * self.row_bytes)
            grouped: dict[int, list[int]] = {}
            for i in range(start, n):
                index = hash(keys[i]) % count
                found = grouped.get(index)
                if found is None:
                    grouped[index] = [i]
                else:
                    found.append(i)
            for index, positions in grouped.items():
                self._partition(buckets[index]).extend_gather(
                    columns, arrivals, keys, positions
                )
            if self._adopted_slots:
                # Bulk form of the per-insert adopted charge: every code in
                # the inserted range not seen before is charged once.
                for j, dictionary, seen in self._adopted_slots:
                    source = columns[j]
                    if type(source) is DictColumn and source.dictionary is dictionary:
                        fresh = set(source.codes[start:n]) - seen
                        if fresh:
                            seen |= fresh
                            entry_bytes = dictionary.entry_bytes
                            self._record_dictionary_growth(
                                sum(entry_bytes(code) for code in fresh)
                            )
            self.total_inserted += remaining
            return n
        row_bytes = self.row_bytes
        budget = self.budget
        adopted = self._adopted_slots
        for i in range(start, n):
            key = keys[i]
            bucket = buckets[hash(key) % count]
            if bucket.flushed:
                self.total_inserted += 1
                self._ensure_overflow(bucket).write_position(
                    columns, i, arrivals[i], marked
                )
                continue
            if not budget.try_reserve(row_bytes):
                return i
            self.total_inserted += 1
            self._partition(bucket).append_position(key, columns, i, arrivals[i])
            if adopted:
                self._charge_adopted(columns, i)
        return n

    def insert_resident(self, row: Row) -> None:
        """Insert assuming memory is available; raises if the budget refuses."""
        if not self.insert(row):
            raise StorageError(
                f"{self.name}: failed to insert resident row (budget exhausted "
                f"or bucket flushed)"
            )

    # -- probing -------------------------------------------------------------------

    def probe(self, key: tuple[Any, ...]) -> list[Row]:
        """Resident rows matching ``key``, boxed (the tuple-at-a-time view)."""
        bucket = self.bucket_for_key(key)
        positions = bucket.match(key)
        if not positions:
            return []
        partition = bucket.partition
        return [partition.row_at(i) for i in positions]

    def probe_row(self, row: Row, key_names: Sequence[str]) -> list[Row]:
        """Probe using ``row``'s values of ``key_names`` as the key."""
        return self.probe(row.key(key_names))

    def match_positions(
        self, key: tuple[Any, ...]
    ) -> tuple[ColumnarPartition, list[int]] | None:
        """Resident matches as ``(partition, positions)`` — no row boxing."""
        bucket = self.buckets[hash(key) % self.bucket_count]
        positions = bucket.match(key)
        if not positions:
            return None
        return bucket.partition, positions

    def gather_matches(
        self,
        keys: Sequence[tuple[Any, ...]],
        positions: Sequence[int] | None = None,
    ) -> tuple[list[int], list[list[Any]], list[float], bool] | None:
        """Bulk probe: gathered match columns for the joins' output assembly.

        Probes ``keys`` (restricted to the probed ``positions`` when given)
        and returns ``(take, match_columns, match_arrivals, aligned)`` —
        ``take[i]`` is the probed position whose key produced match ``i``,
        and the matched build rows arrive as already-gathered column lists.
        ``aligned`` is true when every key matched exactly once (``take`` is
        the identity permutation).  ``None`` when nothing matched.
        """
        if self.schema is None:
            return None
        width = len(self.schema)
        count = self.bucket_count
        buckets = self.buckets
        take: list[int] = []
        match_columns: list[list[Any]] = [[] for _ in range(width)]
        match_arrivals: list[float] = []
        aligned = True
        adopted = not self.encoded
        probe_range = range(len(keys)) if positions is None else positions
        probed = 0
        for position in probe_range:
            probed += 1
            key = keys[position]
            bucket = buckets[hash(key) % count]
            partition = bucket.partition
            found = partition.positions.get(key) if partition is not None else None
            if not found:
                aligned = False
                continue
            if len(found) == 1:
                take.append(position)
            else:
                aligned = False
                take.extend([position] * len(found))
            columns = partition.columns
            arrivals = partition.arrivals
            if not self.encoded:
                # Unencoded tables keep the original branch-free gathers.
                for j in range(width):
                    source = columns[j]
                    acc = match_columns[j]
                    for p in found:
                        acc.append(source[p])
                for p in found:
                    match_arrivals.append(arrivals[p])
                continue
            if not adopted:
                # First match fixes the gathered columns' storage: dict
                # sources get dict accumulators sharing their dictionaries
                # (every partition of this table shares them), so matched
                # string values below move as raw codes.
                adopted = True
                for j in range(width):
                    source = columns[j]
                    if type(source) is DictColumn:
                        match_columns[j] = DictColumn(source.dictionary)
            for j in range(width):
                source = columns[j]
                acc = match_columns[j]
                if type(source) is DictColumn:
                    dcodes = source.codes
                    if type(acc) is DictColumn and acc.dictionary is source.dictionary:
                        acc_codes = acc.codes
                        for p in found:
                            acc_codes.append(dcodes[p])
                        continue
                    # Hoisted decode: C-level subscripts only, values are the
                    # dictionary's canonical strings (no construction).
                    dvalues = source.dictionary.values
                    for p in found:
                        acc.append(dvalues[dcodes[p]])
                else:
                    if type(acc) is DictColumn:
                        # A degraded partition column met a dict accumulator
                        # from an earlier bucket: repair via the standard
                        # degrade path.
                        extend_column(
                            match_columns, j, [source[p] for p in found], len(acc)
                        )
                        continue
                    for p in found:
                        acc.append(source[p])
            for p in found:
                match_arrivals.append(arrivals[p])
        if not take:
            return None
        aligned = aligned and probed == len(keys)
        return take, match_columns, match_arrivals, aligned

    def is_bucket_flushed_for(self, key: tuple[Any, ...]) -> bool:
        return self.bucket_for_key(key).flushed

    # -- flushing ----------------------------------------------------------------

    def _ensure_overflow(self, bucket: Bucket) -> OverflowFile:
        if bucket.overflow is None:
            bucket.overflow = self.disk.create_file(
                f"{self.name}-b{bucket.index}", schema=self.schema
            )
        return bucket.overflow

    def spill_position(
        self,
        bucket_index: int,
        source_columns: Sequence[Sequence[Any]],
        position: int,
        arrival: float,
        marked: bool,
    ) -> None:
        """Write one arriving row straight to a bucket's overflow file."""
        bucket = self.buckets[bucket_index]
        self._ensure_overflow(bucket).write_position(
            source_columns, position, arrival, marked
        )

    def flush_bucket(self, index: int, mark_rows: bool = False) -> int:
        """Write bucket ``index`` to disk, releasing its memory.

        Returns the number of rows flushed.  Subsequent inserts into this
        bucket go directly to its overflow file.  The partition's counters
        and the budget move in one atomic step — the columns are detached
        (and the resident bytes released) *before* the spill write, so no
        observer can see a half-drained bucket or double-release its bytes.
        """
        bucket = self.buckets[index]
        overflow = self._ensure_overflow(bucket)
        flushed = 0
        partition = bucket.partition
        if partition is not None and partition.arrivals:
            flushed = len(partition.arrivals)
            columns, arrivals = partition.take_data()
            self.budget.release(flushed * self.row_bytes)
            overflow.write_columns(columns, arrivals, mark_rows)
        if not bucket.flushed:
            bucket.flushed = True
            self.flushed_count += 1
        return flushed

    def flush_largest_bucket(self, mark_rows: bool = False) -> int | None:
        """Flush the resident bucket holding the most bytes; returns its index."""
        victim: Bucket | None = None
        victim_count = 0
        for bucket in self.buckets:
            if bucket.flushed:
                continue
            count = bucket.resident_count
            if count > victim_count:
                victim, victim_count = bucket, count
        if victim is None:
            return None
        self.flush_bucket(victim.index, mark_rows)
        return victim.index

    def flush_all(self, mark_rows: bool = False) -> int:
        """Flush every resident bucket; returns total rows flushed."""
        total = 0
        for bucket in self.buckets:
            if bucket.resident_count > 0 or not bucket.flushed:
                total += self.flush_bucket(bucket.index, mark_rows)
        return total

    # -- inspection ---------------------------------------------------------------

    @property
    def resident_rows(self) -> int:
        return sum(b.resident_count for b in self.buckets)

    @property
    def resident_bytes(self) -> int:
        """Bytes this table holds against its budget.

        Rows charge the (encoding-dependent) per-row estimate; encoded
        tables additionally hold their dictionaries resident, which stay
        charged across bucket flushes (spilled chunks keep referencing the
        table dictionaries, and any entry may recur in later inserts).
        """
        return self.resident_rows * self.row_bytes + self.dictionary_bytes

    @property
    def flushed_buckets(self) -> list[int]:
        if not self.flushed_count:
            return []
        return [b.index for b in self.buckets if b.flushed]

    @property
    def has_resident_data(self) -> bool:
        return any(b.resident_count > 0 for b in self.buckets)

    def resident_items(self) -> Iterator[Row]:
        """All resident rows, bucket by bucket (boxed; tests and debugging)."""
        for bucket in self.buckets:
            if bucket.partition is not None:
                # repro: allow[hot-path-row] boxed inspection view, tests/debugging only
                yield from bucket.partition.rows()

    def overflow_chunks(self, index: int) -> Iterator[SpillChunk]:
        """Read back bucket ``index``'s overflow file as columnar chunks."""
        bucket = self.buckets[index]
        if bucket.overflow is None:
            return iter(())
        return bucket.overflow.read_chunks()

    def overflow_rows(self, index: int) -> Iterator[tuple[Row, bool]]:
        """Read back bucket ``index``'s overflow file (charging read I/O)."""
        bucket = self.buckets[index]
        if bucket.overflow is None:
            return iter(())
        return bucket.overflow.read()

    def check_accounting(self) -> None:
        """Raise unless the budget's usage covers this table's resident bytes.

        The invariant asserted by the overflow tests: resident bytes are an
        exact multiple of the columnar row estimate, and never exceed what
        the budget believes is reserved (for a budget shared across tables,
        the *sum* of the tables' resident bytes must equal the reservation —
        callers with sole ownership can assert equality).
        """
        resident = self.resident_bytes
        if resident > self.budget.used_bytes:
            raise StorageError(
                f"{self.name}: accounting drift — resident {resident}B exceeds "
                f"budget reservation {self.budget.used_bytes}B"
            )

    def release_all(self) -> None:
        """Drop all resident rows and return their memory to the budget."""
        for bucket in self.buckets:
            partition = bucket.partition
            if partition is not None:
                count = len(partition.arrivals)
                if count:
                    partition.take_data()
                    self.budget.release(count * self.row_bytes)
        if self.dictionary_bytes:
            self.budget.release(self.dictionary_bytes)
            self.dictionary_bytes = 0
