"""Tuples: the unit of data flowing through the execution engine.

A :class:`Row` couples a value vector with its :class:`~repro.storage.schema.Schema`
and carries a virtual-time ``arrival`` stamp assigned by the wrapper or source
that produced it.  Operators propagate and update the stamp so that the engine
can report tuples-vs-time series (the x/y axes of the paper's figures).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator, Sequence

from repro.errors import SchemaError
from repro.storage.schema import Schema


@dataclass(frozen=True, slots=True)
class Row:
    """An immutable tuple of values bound to a schema.

    Parameters
    ----------
    schema:
        The schema describing ``values``.
    values:
        Attribute values, in schema order.
    arrival:
        Virtual time at which this tuple became available to its consumer.
    """

    schema: Schema
    values: tuple[Any, ...]
    arrival: float = 0.0

    def __post_init__(self) -> None:
        if len(self.values) != len(self.schema):
            raise SchemaError(
                f"value arity {len(self.values)} does not match schema arity "
                f"{len(self.schema)} ({self.schema.names})"
            )

    # -- access ---------------------------------------------------------------

    def __getitem__(self, key: str | int) -> Any:
        if isinstance(key, int):
            return self.values[key]
        return self.values[self.schema.index_of(key)]

    def get(self, name: str, default: Any = None) -> Any:
        """Value of attribute ``name``, or ``default`` when absent."""
        try:
            return self[name]
        except SchemaError:
            return default

    def __iter__(self) -> Iterator[Any]:
        return iter(self.values)

    def __len__(self) -> int:
        return len(self.values)

    def as_dict(self) -> dict[str, Any]:
        """Mapping of fully qualified attribute name to value."""
        return dict(zip(self.schema.names, self.values))

    # -- derivation -----------------------------------------------------------

    def with_arrival(self, arrival: float) -> "Row":
        """Copy of this row with a different arrival stamp."""
        return Row(self.schema, self.values, arrival)

    def project(self, names: Sequence[str], schema: Schema | None = None) -> "Row":
        """Project onto ``names``; ``schema`` may be supplied to avoid rebuilds."""
        out_schema = schema if schema is not None else self.schema.project(names)
        values = tuple(self[name] for name in names)
        return Row(out_schema, values, self.arrival)

    def key(self, names: Sequence[str]) -> tuple[Any, ...]:
        """Join/grouping key: the values of ``names`` as a tuple."""
        return tuple(self[name] for name in names)

    def concat(self, other: "Row", schema: Schema | None = None) -> "Row":
        """Concatenate with ``other`` (join output); arrival is the later stamp."""
        out_schema = schema if schema is not None else self.schema.join(other.schema)
        return Row(
            out_schema,
            self.values + other.values,
            max(self.arrival, other.arrival),
        )

    @property
    def size_bytes(self) -> int:
        """Estimated footprint used for memory accounting."""
        return self.schema.tuple_size


def rows_from_dicts(schema: Schema, records: Sequence[dict[str, Any]]) -> list[Row]:
    """Build rows from dictionaries keyed by (base or qualified) attribute name."""
    out = []
    for record in records:
        values = []
        for attr in schema:
            if attr.name in record:
                values.append(record[attr.name])
            elif attr.base_name in record:
                values.append(record[attr.base_name])
            else:
                raise SchemaError(
                    f"record is missing attribute {attr.name!r}: {sorted(record)}"
                )
        out.append(Row(schema, tuple(values)))
    return out
