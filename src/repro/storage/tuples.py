"""Tuples: the unit of data flowing through the execution engine.

A :class:`Row` couples a value vector with its :class:`~repro.storage.schema.Schema`
and carries a virtual-time ``arrival`` stamp assigned by the wrapper or source
that produced it.  Operators propagate and update the stamp so that the engine
can report tuples-vs-time series (the x/y axes of the paper's figures).
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Iterator, Sequence

from repro.errors import SchemaError
from repro.storage.schema import Schema


class RowConstructionCounter:
    """Counts every :class:`Row` constructed while enabled.

    The columnar storage layer promises that hash-table insert/probe and
    spill write/read hot paths never box rows; tests enable this counter
    around those operations to assert the promise holds.  Disabled (the
    default) the per-construction cost is a single predicate check.
    """

    __slots__ = ("enabled", "count")

    def __init__(self) -> None:
        self.enabled = False
        self.count = 0


#: Module-wide counter consulted by both Row constructors.
ROW_CONSTRUCTIONS = RowConstructionCounter()


@contextmanager
def counting_row_constructions():
    """Enable :data:`ROW_CONSTRUCTIONS` for a scope; yields the counter."""
    counter = ROW_CONSTRUCTIONS
    saved_enabled, saved_count = counter.enabled, counter.count
    counter.enabled = True
    counter.count = 0
    try:
        yield counter
    finally:
        counter.enabled = saved_enabled
        counter.count = saved_count


@dataclass(frozen=True, slots=True)
class Row:
    """An immutable tuple of values bound to a schema.

    Parameters
    ----------
    schema:
        The schema describing ``values``.
    values:
        Attribute values, in schema order.
    arrival:
        Virtual time at which this tuple became available to its consumer.
    """

    schema: Schema
    values: tuple[Any, ...]
    arrival: float = 0.0

    def __post_init__(self) -> None:
        if ROW_CONSTRUCTIONS.enabled:
            ROW_CONSTRUCTIONS.count += 1
        if len(self.values) != len(self.schema):
            raise SchemaError(
                f"value arity {len(self.values)} does not match schema arity "
                f"{len(self.schema)} ({self.schema.names})"
            )

    # -- access ---------------------------------------------------------------

    def __getitem__(self, key: str | int) -> Any:
        if isinstance(key, int):
            return self.values[key]
        return self.values[self.schema.index_of(key)]

    def get(self, name: str, default: Any = None) -> Any:
        """Value of attribute ``name``, or ``default`` when absent."""
        try:
            return self[name]
        except SchemaError:
            return default

    def __iter__(self) -> Iterator[Any]:
        return iter(self.values)

    def __len__(self) -> int:
        return len(self.values)

    def as_dict(self) -> dict[str, Any]:
        """Mapping of fully qualified attribute name to value."""
        return dict(zip(self.schema.names, self.values))

    # -- derivation -----------------------------------------------------------

    @classmethod
    def make(cls, schema: Schema, values: tuple[Any, ...], arrival: float = 0.0) -> "Row":
        """Fast constructor for callers that guarantee ``values`` fits ``schema``.

        Skips the dataclass ``__init__``/``__post_init__`` arity validation —
        row construction sits on the engine's per-tuple hot path, and the
        derivation helpers below (plus the batch operator paths) build values
        directly from a schema they also produce.
        """
        if ROW_CONSTRUCTIONS.enabled:
            ROW_CONSTRUCTIONS.count += 1
        row = object.__new__(cls)
        object.__setattr__(row, "schema", schema)
        object.__setattr__(row, "values", values)
        object.__setattr__(row, "arrival", arrival)
        return row

    def with_arrival(self, arrival: float) -> "Row":
        """Copy of this row with a different arrival stamp."""
        return Row.make(self.schema, self.values, arrival)

    def project(self, names: Sequence[str], schema: Schema | None = None) -> "Row":
        """Project onto ``names``; ``schema`` may be supplied to avoid rebuilds."""
        out_schema = schema if schema is not None else self.schema.project(names)
        values = tuple(self[name] for name in names)
        return Row(out_schema, values, self.arrival)

    def key(self, names: Sequence[str]) -> tuple[Any, ...]:
        """Join/grouping key: the values of ``names`` as a tuple."""
        return tuple(self[name] for name in names)

    def concat(self, other: "Row", schema: Schema | None = None) -> "Row":
        """Concatenate with ``other`` (join output); arrival is the later stamp."""
        out_schema = schema if schema is not None else self.schema.join(other.schema)
        if len(out_schema) != len(self.values) + len(other.values):
            raise SchemaError(
                f"concatenated arity {len(self.values) + len(other.values)} does "
                f"not match schema arity {len(out_schema)} ({out_schema.names})"
            )
        return Row.make(
            out_schema,
            self.values + other.values,
            self.arrival if self.arrival >= other.arrival else other.arrival,
        )

    @property
    def size_bytes(self) -> int:
        """Estimated footprint used for memory accounting."""
        return self.schema.tuple_size


class KeyBinder:
    """Extracts a fixed key (a list of attribute names) from rows by position.

    The names are resolved to value indices once per observed schema instance
    (rows of one stream share theirs) and re-bound if the schema changes —
    per-row name resolution is the iterator model's classic hot-path overhead.
    Used by the join operators and the bucketed hash table.
    """

    __slots__ = ("names", "_schema", "_indices")

    def __init__(self, names: Sequence[str]) -> None:
        self.names = tuple(names)
        self._schema: Schema | None = None
        self._indices: tuple[int, ...] = ()

    def indices_in(self, schema: Schema) -> tuple[int, ...]:
        """Value indices of the key attributes in ``schema`` (cached per schema).

        Exposed for the columnar batch paths, which extract whole key columns
        by position instead of calling :meth:`key` per row.
        """
        if schema is not self._schema:
            self._indices = tuple(schema.index_of(name) for name in self.names)
            self._schema = schema
        return self._indices

    def key(self, row: Row) -> tuple[Any, ...]:
        indices = self.indices_in(row.schema)
        values = row.values
        if len(indices) == 1:
            return (values[indices[0]],)
        return tuple(values[i] for i in indices)


def rows_from_dicts(schema: Schema, records: Sequence[dict[str, Any]]) -> list[Row]:
    """Build rows from dictionaries keyed by (base or qualified) attribute name."""
    out = []
    for record in records:
        values = []
        for attr in schema:
            if attr.name in record:
                values.append(record[attr.name])
            elif attr.base_name in record:
                values.append(record[attr.base_name])
            else:
                raise SchemaError(
                    f"record is missing attribute {attr.name!r}: {sorted(record)}"
                )
        out.append(Row(schema, tuple(values)))
    return out
